//! Property: the plan cache is a pure memoization of the autotuner —
//! a warm hit returns the cold winner *bit-identically* (schedule,
//! configuration, and the exact cost bits) while costing zero
//! configurations, and any change to the program structure, the
//! cluster shape, or the tuner's config grid misses and re-runs the
//! search. Proven over randomly generated pointwise+collective
//! programs across group sizes and grid variations.

use coconet::core::{Autotuner, Binding, DType, Layout, PlanCache, Program, ReduceOp, VarId};
use coconet::sim::Simulator;
use coconet::topology::MachineSpec;
use proptest::prelude::*;

/// One random pointwise epilogue op applied after the collective.
#[derive(Clone, Debug)]
enum EpilogueOp {
    AddBias,
    AddResidual,
    Relu,
    Tanh,
    Scale(i8),
}

fn arb_epilogue() -> impl Strategy<Value = Vec<EpilogueOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(EpilogueOp::AddBias),
            Just(EpilogueOp::AddResidual),
            Just(EpilogueOp::Relu),
            Just(EpilogueOp::Tanh),
            (-3i8..4).prop_map(EpilogueOp::Scale),
        ],
        1..4,
    )
}

/// Builds `out = epilogue(AllReduce(g))`.
fn build_program(ops: &[EpilogueOp]) -> Program {
    let mut p = Program::new("generated");
    let g = p.input("g", DType::F16, ["R", "C"], Layout::Local);
    let reduced = p.all_reduce(ReduceOp::Sum, g).unwrap();
    let bias = p.input("bias", DType::F16, ["C"], Layout::Replicated);
    let res = p.input("res", DType::F16, ["R", "C"], Layout::Replicated);
    let mut cur = reduced;
    for op in ops {
        cur = match op {
            EpilogueOp::AddBias => p.add(cur, bias).unwrap(),
            EpilogueOp::AddResidual => p.add(cur, res).unwrap(),
            EpilogueOp::Relu => p.relu(cur).unwrap(),
            EpilogueOp::Tanh => p.tanh(cur).unwrap(),
            EpilogueOp::Scale(s) => {
                let c = p.constant(f64::from(*s) / 2.0);
                p.mul(cur, c).unwrap()
            }
        };
    }
    let inputs: Vec<VarId> = p.inputs().to_vec();
    p.set_io(&inputs, &[cur]).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A warm hit is bit-identical to the cold search and costs
    /// nothing; changing the program, the cluster shape, or the config
    /// grid misses.
    #[test]
    fn warm_hits_are_bit_identical_and_any_change_misses(
        ops in arb_epilogue(),
        ranks_idx in 0usize..3,
        log_r in 6u32..11,
        log_c in 8u32..11,
        shrink_channels in any::<bool>(),
    ) {
        let ranks = [4usize, 8, 16][ranks_idx];
        let program = build_program(&ops);
        let binding = Binding::new(ranks)
            .bind("R", 1u64 << log_r)
            .bind("C", 1u64 << log_c);
        let sim = Simulator::new(MachineSpec::dgx2_cluster(1), ranks, 1);
        let tuner = Autotuner::default().with_workers(2);
        let mut cache = PlanCache::new(16);

        // Cold: the full pruned sweep runs and installs the winner.
        let cold = tuner.tune_cached(&program, &binding, &sim, &mut cache)
            .expect("cold tunes");
        prop_assert!(cold.cache.hit_age.is_none(), "first request must miss");
        prop_assert!(cold.configs_evaluated > 0);
        let cold_best = cold.best().expect("cold winner").clone();

        // Warm: a hit, zero work, bit-identical winner.
        let warm = tuner.tune_cached(&program, &binding, &sim, &mut cache)
            .expect("warm tunes");
        prop_assert!(warm.cache.hit_age.is_some(), "repeat request must hit");
        prop_assert_eq!(warm.configs_evaluated, 0);
        prop_assert_eq!(warm.schedules_explored, 0);
        let warm_best = warm.best().expect("warm winner").clone();
        prop_assert_eq!(&warm_best.schedule, &cold_best.schedule);
        prop_assert_eq!(warm_best.config, cold_best.config);
        prop_assert_eq!(warm_best.time.to_bits(), cold_best.time.to_bits());

        // A structurally different program misses.
        let mut other_ops = ops.clone();
        other_ops.push(EpilogueOp::Relu);
        let other_program = build_program(&other_ops);
        let r3 = tuner.tune_cached(&other_program, &binding, &sim, &mut cache)
            .expect("tunes");
        prop_assert!(r3.cache.hit_age.is_none(), "changed program must miss");

        // A different cluster shape misses: double the symbol binding
        // (same program, same simulator, different key).
        let other_binding = Binding::new(ranks)
            .bind("R", 1u64 << (log_r + 1))
            .bind("C", 1u64 << log_c);
        let r4 = tuner.tune_cached(&program, &other_binding, &sim, &mut cache)
            .expect("tunes");
        prop_assert!(r4.cache.hit_age.is_none(), "changed shape must miss");

        // A different config grid misses: shrink one sweep dimension
        // (the grid fingerprint is part of the key, so a narrower
        // search can never be answered by a wider search's winner).
        let mut narrow = Autotuner::default().with_workers(2);
        if shrink_channels {
            narrow.channels.truncate(narrow.channels.len() - 1);
        } else {
            narrow.protocols.truncate(narrow.protocols.len() - 1);
        }
        let r5 = narrow.tune_cached(&program, &binding, &sim, &mut cache)
            .expect("tunes");
        prop_assert!(r5.cache.hit_age.is_none(), "changed grid must miss");

        // And every variant, once cached, hits bit-identically too.
        let r5_best = r5.best().expect("narrow winner").clone();
        let r6 = narrow.tune_cached(&program, &binding, &sim, &mut cache)
            .expect("tunes");
        prop_assert!(r6.cache.hit_age.is_some());
        let r6_best = r6.best().expect("narrow warm winner");
        prop_assert_eq!(r6_best.time.to_bits(), r5_best.time.to_bits());
        prop_assert_eq!(&r6_best.schedule, &r5_best.schedule);
    }
}
