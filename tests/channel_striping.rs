//! Property: multi-channel striping is a pure framing change. For
//! random payload sizes, rank counts, collective algorithms, wire
//! formats, and channel widths, the striped AllReduce produces
//! bit-identical tensors to the single-channel run on every rank, and
//! moves exactly the same per-rank wire volume — the stripes are
//! zero-copy views of the same bytes, reassembled before every fold
//! and every decode.

use coconet::compress::WireFormat;
use coconet::core::CollAlgo;
use coconet::runtime::{all_reduce_wire_striped, run_ranks, Group};
use coconet::tensor::{DType, ReduceOp, Tensor};
use proptest::prelude::*;

/// One run of the dispatching AllReduce at a given channel width:
/// every rank's output bits plus its (sent, received) wire bytes.
fn run_striped(
    elems: usize,
    ranks: usize,
    op: ReduceOp,
    algo: CollAlgo,
    ranks_per_node: usize,
    format: WireFormat,
    channels: usize,
) -> Vec<(Vec<u32>, u64, u64)> {
    run_ranks(ranks, move |comm| {
        let group = Group {
            start: 0,
            size: ranks,
        };
        let rank = comm.rank();
        let input = Tensor::from_fn([elems], DType::F32, move |i| {
            // Sign-varied, rank-dependent values so reassembly-order
            // bugs cannot cancel out.
            let v = ((rank * 31 + i * 7) % 23) as f32 - 11.0;
            v * 0.5
        });
        comm.reset_ledger();
        let out = all_reduce_wire_striped(
            &comm,
            group,
            &input,
            op,
            algo,
            ranks_per_node,
            format,
            None,
            channels,
        );
        let bits = (0..out.numel()).map(|i| out.get(i).to_bits()).collect();
        let ledger = comm.ledger();
        (bits, ledger.bytes_sent, ledger.bytes_received)
    })
}

fn arb_algo() -> impl Strategy<Value = CollAlgo> {
    prop_oneof![
        Just(CollAlgo::Ring),
        Just(CollAlgo::Tree),
        Just(CollAlgo::Hierarchical),
    ]
}

fn arb_format() -> impl Strategy<Value = WireFormat> {
    prop_oneof![Just(WireFormat::Dense), Just(WireFormat::Fp16)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Striped == single-channel, bit for bit and byte for byte, on
    /// every rank.
    #[test]
    fn striping_is_a_pure_framing_change(
        elems in 1usize..400,
        ranks in 1usize..7,
        algo in arb_algo(),
        ranks_per_node in 1usize..5,
        format in arb_format(),
        channels in 2usize..12,
        max in 0u8..2,
    ) {
        let op = if max == 1 { ReduceOp::Max } else { ReduceOp::Sum };
        let single = run_striped(elems, ranks, op, algo, ranks_per_node, format, 1);
        let striped = run_striped(elems, ranks, op, algo, ranks_per_node, format, channels);
        for (rank, (s, w)) in single.iter().zip(&striped).enumerate() {
            prop_assert_eq!(
                &s.0, &w.0,
                "rank {} diverged bitwise (elems={}, ranks={}, algo={:?}, \
                 rpn={}, format={:?}, channels={})",
                rank, elems, ranks, algo, ranks_per_node, format, channels
            );
            prop_assert_eq!(
                s.1, w.1,
                "rank {} sent a different wire volume under striping", rank
            );
            prop_assert_eq!(
                s.2, w.2,
                "rank {} received a different wire volume under striping", rank
            );
        }
    }

    /// Channel widths beyond [`MAX_CHANNELS`] clamp rather than panic
    /// or change results.
    #[test]
    fn oversized_widths_clamp(
        elems in 1usize..120,
        ranks in 2usize..5,
        channels in 64usize..200,
    ) {
        let single = run_striped(
            elems, ranks, ReduceOp::Sum, CollAlgo::Ring, 1, WireFormat::Dense, 1,
        );
        let striped = run_striped(
            elems, ranks, ReduceOp::Sum, CollAlgo::Ring, 1, WireFormat::Dense, channels,
        );
        for (s, w) in single.iter().zip(&striped) {
            prop_assert_eq!(&s.0, &w.0);
            prop_assert_eq!(s.1, w.1);
        }
    }
}
