//! Property-based integration tests: randomly generated pointwise
//! epilogues stay semantics preserving under the full transformation
//! pipeline, for arbitrary shapes, seeds, and group sizes.

use coconet::core::xform::{fuse_all_reduce, reorder_all_gather, split_all_reduce};
use coconet::core::{Binding, DType, Layout, Program, ReduceOp, VarId};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::tensor::{CounterRng, Tensor};
use proptest::prelude::*;

/// A recipe for one pointwise epilogue op applied after the AllReduce.
#[derive(Clone, Debug)]
enum EpilogueOp {
    AddBias,
    AddResidual,
    MulResidual,
    Dropout(u8),
    Relu,
    Tanh,
    Scale(i8),
}

fn arb_epilogue() -> impl Strategy<Value = Vec<EpilogueOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(EpilogueOp::AddBias),
            Just(EpilogueOp::AddResidual),
            Just(EpilogueOp::MulResidual),
            (1u8..9).prop_map(EpilogueOp::Dropout),
            Just(EpilogueOp::Relu),
            Just(EpilogueOp::Tanh),
            (-3i8..4).prop_map(EpilogueOp::Scale),
        ],
        1..6,
    )
}

/// Builds `out = epilogue(AllReduce(g))` with `g` local `[R, C]`,
/// a bias `[C]`, and a residual `[R, C]`.
fn build_program(ops: &[EpilogueOp]) -> (Program, VarId, Vec<VarId>) {
    let mut p = Program::new("generated");
    let g = p.input("g", DType::F32, ["R", "C"], Layout::Local);
    let bias = p.input("bias", DType::F32, ["C"], Layout::Replicated);
    let res = p.input("res", DType::F32, ["R", "C"], Layout::Replicated);
    let sum = p.all_reduce(ReduceOp::Sum, g).unwrap();
    let mut cur = sum;
    let mut comps = Vec::new();
    for op in ops {
        cur = match op {
            EpilogueOp::AddBias => p.add(cur, bias).unwrap(),
            EpilogueOp::AddResidual => p.add(cur, res).unwrap(),
            EpilogueOp::MulResidual => p.mul(cur, res).unwrap(),
            EpilogueOp::Dropout(tenths) => p.dropout(cur, f64::from(*tenths) / 10.0).unwrap(),
            EpilogueOp::Relu => p.relu(cur).unwrap(),
            EpilogueOp::Tanh => p.tanh(cur).unwrap(),
            EpilogueOp::Scale(s) => {
                let c = p.constant(f64::from(*s) / 2.0);
                p.mul(cur, c).unwrap()
            }
        };
        comps.push(cur);
    }
    p.set_name(cur, "out").unwrap();
    p.set_io(&[g, bias, res], &[cur]).unwrap();
    (p, cur, comps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// split + reorder + fuse on a random epilogue == the baseline.
    #[test]
    fn random_epilogues_are_schedule_invariant(
        ops in arb_epilogue(),
        k in prop_oneof![Just(2usize), Just(4usize)],
        rows in 1usize..4,
        cols_per_rank in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Keep R*C divisible by k: C = k * cols_per_rank.
        let cols = k * cols_per_rank;
        let binding = Binding::new(k)
            .bind("R", rows as u64)
            .bind("C", cols as u64);
        let rng = CounterRng::new(seed);
        let inputs = Inputs::new()
            .per_rank(
                "g",
                (0..k)
                    .map(|r| Tensor::randn([rows, cols], DType::F32, rng, (r * 10_000) as u64))
                    .collect(),
            )
            .global("bias", Tensor::randn([cols], DType::F32, rng, 777_000))
            .global("res", Tensor::randn([rows, cols], DType::F32, rng, 888_000));
        let opts = RunOptions::default().with_seed(seed ^ 0xabcd);

        let (base, _, _) = build_program(&ops);
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();

        // split + reorder (+ fuse when there is anything to fuse).
        let (mut p, _, comps) = build_program(&ops);
        let sum = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), coconet::core::OpKind::AllReduce(..)))
            .unwrap();
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &comps).unwrap();
        let gathered = result.gathers[0].1;
        p.set_name(gathered, "final").unwrap();
        fuse_all_reduce(&mut p, rs, &result.sliced, &[gathered]).unwrap();
        p.validate().unwrap();

        let got = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global("final")
            .unwrap();
        let diff = got.max_abs_diff(&reference);
        prop_assert!(diff < 1e-4, "ops {ops:?}: diff {diff}");
    }

    /// Split alone is always valid and exact (f32 end to end).
    #[test]
    fn split_alone_is_exact(
        ops in arb_epilogue(),
        seed in any::<u64>(),
    ) {
        let k = 4usize;
        let binding = Binding::new(k).bind("R", 2).bind("C", 8);
        let rng = CounterRng::new(seed);
        let inputs = Inputs::new()
            .per_rank(
                "g",
                (0..k)
                    .map(|r| Tensor::randn([2, 8], DType::F32, rng, (r * 64) as u64))
                    .collect(),
            )
            .global("bias", Tensor::randn([8], DType::F32, rng, 1_000))
            .global("res", Tensor::randn([2, 8], DType::F32, rng, 2_000));
        let opts = RunOptions::default().with_seed(seed);

        let (base, _, _) = build_program(&ops);
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();

        let (mut p, _, _) = build_program(&ops);
        let sum = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), coconet::core::OpKind::AllReduce(..)))
            .unwrap();
        split_all_reduce(&mut p, sum).unwrap();
        let got = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();
        // Identical ring schedule => bitwise identical f32 results.
        prop_assert_eq!(got.to_f32_vec(), reference.to_f32_vec());
    }
}
