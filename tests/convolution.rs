//! Integration: the Conv2d layer (Table 1) composes with the
//! data-parallel transformation pipeline — a CNN gradient step with a
//! convolution executes identically before and after split/reorder.

use coconet::core::xform::split_all_reduce;
use coconet::core::{Binding, Conv2dParams, DType, Layout, Program, ReduceOp};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::tensor::{CounterRng, Tensor};

#[test]
fn conv_forward_in_dsl_matches_direct_computation() {
    // y = ReLU(conv2d(x, w)) on batch-sliced data, then a loss-ish
    // AllReduce of the local activations.
    let mut p = Program::new("cnn");
    let x = p.input("x", DType::F32, [4u64, 2, 5, 5], Layout::sliced(0));
    let w = p.input("w", DType::F32, [3u64, 2, 3, 3], Layout::Replicated);
    let params = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let y = p.conv2d(x, w, params).unwrap();
    let a = p.relu(y).unwrap();
    p.set_name(a, "act").unwrap();
    p.set_io(&[x, w], &[a]).unwrap();

    // Batch 4 sliced over 2 ranks.
    let binding = Binding::new(2);
    let rng = CounterRng::new(88);
    let x_full = Tensor::randn([4, 2, 5, 5], DType::F32, rng, 0);
    let w_full = Tensor::randn([3, 2, 3, 3], DType::F32, rng, 10_000);
    let inputs = Inputs::new()
        .global("x", x_full.clone())
        .global("w", w_full.clone());
    let result = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
    let got = result.global("act").unwrap();

    let expect = x_full.conv2d(&w_full, params).unwrap().relu();
    assert_eq!(got.shape(), expect.shape());
    assert!(got.max_abs_diff(&expect) < 1e-4);
}

#[test]
fn conv_gradient_allreduce_supports_split() {
    // Local conv "gradients" averaged across ranks: AllReduce splits
    // like any other (the conv itself is not reorderable — it is not
    // pointwise — and the validity checker enforces that).
    let mut p = Program::new("cnn_grads");
    let x = p.input("x", DType::F32, [2u64, 1, 4, 4], Layout::Local);
    let w = p.input("w", DType::F32, [2u64, 1, 2, 2], Layout::Replicated);
    let y = p.conv2d(x, w, Conv2dParams::identity()).unwrap();
    let g = p.all_reduce(ReduceOp::Sum, y).unwrap();
    p.set_name(g, "gsum").unwrap();
    p.set_io(&[x, w], &[g]).unwrap();

    let binding = Binding::new(3).bind("unused", 0);
    let rng = CounterRng::new(3);
    let inputs = Inputs::new()
        .per_rank(
            "x",
            (0..3)
                .map(|r| Tensor::randn([2, 1, 4, 4], DType::F32, rng, (r * 100) as u64))
                .collect(),
        )
        .global("w", Tensor::randn([2, 1, 2, 2], DType::F32, rng, 5_000));
    let reference = run_program(&p, &binding, &inputs, RunOptions::default())
        .unwrap()
        .global("gsum")
        .unwrap();

    let mut split_p = p.clone();
    split_all_reduce(&mut split_p, g).unwrap();
    // Output count stays 27 elements... the split program's output is
    // the AllGather, renamed automatically.
    let result = run_program(&split_p, &binding, &inputs, RunOptions::default()).unwrap();
    let got = result.global("aggsum").unwrap();
    assert_eq!(got.to_f32_vec(), reference.to_f32_vec());
}

#[test]
fn conv_rejects_reorder_region() {
    // Conv2d is not sliceable along the gather dimension: reorder must
    // refuse a region containing it.
    let mut p = Program::new("bad");
    let g = p.input("g", DType::F32, [2u64, 1, 4, 4], Layout::Local);
    let w = p.input("w", DType::F32, [1u64, 1, 1, 1], Layout::Replicated);
    let sum = p.all_reduce(ReduceOp::Sum, g).unwrap();
    let y = p.conv2d(sum, w, Conv2dParams::identity()).unwrap();
    p.set_io(&[g, w], &[y]).unwrap();
    let (_, ag) = split_all_reduce(&mut p, sum).unwrap();
    assert!(coconet::core::xform::reorder_all_gather(&mut p, ag, &[y]).is_err());
}
