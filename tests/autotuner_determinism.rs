//! Property: the parallel pruned autotuner and the serial exhaustive
//! reference pick the *same* winning schedule and configuration for
//! randomly generated pointwise+collective programs — pruning and
//! parallelism are pure work-savers, never quality trades. The grid
//! includes the wire-format dimension (dense / FP16 / top-k), so the
//! per-format floor profiles behind the pruning bounds are re-proven
//! admissible on every generated program.

use coconet::core::{Autotuner, Binding, DType, Layout, Program, ReduceOp, VarId};
use coconet::sim::Simulator;
use coconet::topology::MachineSpec;
use proptest::prelude::*;

/// One random pointwise epilogue op applied after the collective.
#[derive(Clone, Debug)]
enum EpilogueOp {
    AddBias,
    AddResidual,
    MulResidual,
    Dropout(u8),
    Relu,
    Tanh,
    Scale(i8),
}

fn arb_epilogue() -> impl Strategy<Value = Vec<EpilogueOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(EpilogueOp::AddBias),
            Just(EpilogueOp::AddResidual),
            Just(EpilogueOp::MulResidual),
            (1u8..9).prop_map(EpilogueOp::Dropout),
            Just(EpilogueOp::Relu),
            Just(EpilogueOp::Tanh),
            (-3i8..4).prop_map(EpilogueOp::Scale),
        ],
        1..5,
    )
}

/// Builds `out = epilogue(AllReduce(...))`, optionally with a sliced
/// MatMul producing the reduction input (which opens the `overlap`
/// move space as well).
fn build_program(ops: &[EpilogueOp], with_matmul: bool) -> Program {
    let mut p = Program::new("generated");
    let reduced = if with_matmul {
        let input = p.input("in", DType::F16, ["R", "C"], Layout::sliced(1));
        let w = p.input("w", DType::F16, ["C", "C"], Layout::sliced(0));
        let mm = p.matmul(input, w).unwrap();
        p.all_reduce(ReduceOp::Sum, mm).unwrap()
    } else {
        let g = p.input("g", DType::F16, ["R", "C"], Layout::Local);
        p.all_reduce(ReduceOp::Sum, g).unwrap()
    };
    let bias = p.input("bias", DType::F16, ["C"], Layout::Replicated);
    let res = p.input("res", DType::F16, ["R", "C"], Layout::Replicated);
    let mut cur = reduced;
    for op in ops {
        cur = match op {
            EpilogueOp::AddBias => p.add(cur, bias).unwrap(),
            EpilogueOp::AddResidual => p.add(cur, res).unwrap(),
            EpilogueOp::MulResidual => p.mul(cur, res).unwrap(),
            EpilogueOp::Dropout(tenths) => p.dropout(cur, f64::from(*tenths) / 10.0).unwrap(),
            EpilogueOp::Relu => p.relu(cur).unwrap(),
            EpilogueOp::Tanh => p.tanh(cur).unwrap(),
            EpilogueOp::Scale(s) => {
                let c = p.constant(f64::from(*s) / 2.0);
                p.mul(cur, c).unwrap()
            }
        };
    }
    let inputs: Vec<VarId> = p.inputs().to_vec();
    p.set_io(&inputs, &[cur]).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pruned search on two workers returns the exhaustive serial
    /// winner while provably doing no more work.
    #[test]
    fn pruned_parallel_matches_exhaustive_serial(
        ops in arb_epilogue(),
        with_matmul in any::<bool>(),
        log_r in 6u32..12,
        log_c in 8u32..12,
    ) {
        let program = build_program(&ops, with_matmul);
        let binding = Binding::new(16)
            .bind("R", 1u64 << log_r)
            .bind("C", 1u64 << log_c);
        let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);

        let exhaustive = Autotuner::default()
            .exhaustive()
            .with_workers(1)
            .tune(&program, &binding, &sim)
            .expect("exhaustive tunes");
        let pruned = Autotuner::default()
            .with_workers(2)
            .tune(&program, &binding, &sim)
            .expect("pruned tunes");

        let e = exhaustive.best().expect("exhaustive winner");
        let p = pruned.best().expect("pruned winner");
        prop_assert_eq!(
            &e.schedule, &p.schedule,
            "winning schedule diverged for ops {:?} (matmul: {})", ops, with_matmul
        );
        prop_assert_eq!(e.config, p.config);
        prop_assert!(
            (e.time - p.time).abs() <= 1e-15 * e.time.max(1.0),
            "winning times diverged: {} vs {}", e.time, p.time
        );
        // The sweep covers the enlarged grid: every lowerable schedule
        // is costed under algo × protocol × channels × format × sched
        // × xfer = 4 × 3 × 6 × 3 × 2 × 2 = 864 configurations in the
        // exhaustive reference (the algorithms now include the
        // in-network switch; the wire formats are dense, FP16, and
        // 10 ‰ top-k; the schedules are barriered and
        // priority-streamed; the transfer disciplines are FIFO and
        // contention-aware).
        let grid = Autotuner::default();
        let grid_size = grid.algos.len()
            * grid.protocols.len()
            * grid.channels.len()
            * grid.formats.len()
            * grid.scheds.len()
            * grid.xfers.len();
        prop_assert_eq!(grid_size, 864);
        prop_assert_eq!(grid.algos, coconet::core::CollAlgo::ALL.to_vec());
        prop_assert_eq!(grid.formats, coconet::compress::WireFormat::SWEEP.to_vec());
        prop_assert_eq!(grid.scheds, coconet::core::CommSched::ALL.to_vec());
        prop_assert_eq!(grid.xfers, coconet::core::XferSched::ALL.to_vec());
        prop_assert!(exhaustive.configs_evaluated >= grid_size);
        prop_assert_eq!(exhaustive.configs_evaluated % grid_size, 0);

        // Pruning never does more work, and the exhaustive reference
        // never skips any.
        prop_assert!(pruned.configs_evaluated <= exhaustive.configs_evaluated);
        prop_assert_eq!(exhaustive.configs_pruned, 0);
        prop_assert_eq!(exhaustive.branches_pruned, 0);
        // The pruned search enumerates a subset of the exhaustive
        // schedule space (a proper subset only when a branch was
        // provably hopeless).
        prop_assert!(pruned.schedules_explored <= exhaustive.schedules_explored);
    }
}
