//! Integration: the autotuner, driven by the machine simulator,
//! discovers the paper's winning schedules — and its winners stay
//! semantics preserving when executed on the functional runtime.

use coconet::core::{Autotuner, Binding, ExecPlan, Program};
use coconet::models::model_parallel::block_program;
use coconet::models::optimizers::optimizer_program;
use coconet::models::pipeline::pipeline_program;
use coconet::models::{Hyper, Optimizer};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, DType, Tensor};
use coconet::topology::MachineSpec;

fn tune(program: &Program, binding: &Binding, sim: &Simulator) -> coconet::core::TuneReport {
    let evaluator = |plan: &ExecPlan| sim.time_plan(plan).total;
    Autotuner::default()
        .tune(program, binding, &evaluator)
        .expect("tuning succeeds")
}

/// §6.1.1: at large sizes the tuner picks a fused RS-opt-AG schedule;
/// at small sizes it keeps the AllReduce.
#[test]
fn optimizer_schedule_depends_on_size() {
    let sim = Simulator::new(MachineSpec::paper_testbed(), 256, 1);
    let (program, _) = optimizer_program(Optimizer::Adam, Hyper::default()).unwrap();

    let large = tune(&program, &Binding::new(256).bind("N", 1 << 28), &sim);
    let best_large = large.best().unwrap().label();
    assert!(
        best_large.contains("AllReduceFuse"),
        "large tensors want the fused schedule, got: {best_large}"
    );

    let small = tune(&program, &Binding::new(256).bind("N", 1 << 12), &sim);
    let best_small = small.best().unwrap().label();
    assert!(
        !best_small.contains("reorder"),
        "small tensors keep the AllReduce schedule, got: {best_small}"
    );
    // "There is no schedule that performs best for all sizes, which
    // demonstrates the need for the autotuner."
    assert_ne!(best_large, best_small);
}

/// §6.2.1: on the lossless wire the tuner's model-parallel winner is
/// the overlapped fused-AllReduce schedule — and opening the lossy
/// top-k dimension (the default grid) finds a strictly faster plan
/// that trades the fusion for the sparse exchange's wire volume.
#[test]
fn model_parallel_winner_is_overlap() {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let (program, _) =
        block_program(coconet::models::model_parallel::Block::SelfAttention).unwrap();
    let binding = Binding::new(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072);
    // The paper's claim is about lossless schedules: sweep the formats
    // that preserve the result bit-for-bit (FP16 payloads are already
    // half precision, so the FP16 wire is lossless here too).
    let evaluator = |plan: &coconet::core::ExecPlan| sim.time_plan(plan).total;
    let lossless = Autotuner {
        formats: vec![
            coconet::core::WireFormat::Dense,
            coconet::core::WireFormat::Fp16,
        ],
        ..Autotuner::default()
    }
    .tune(&program, &binding, &evaluator)
    .expect("lossless tuning succeeds");
    let best = lossless.best().unwrap();
    assert!(best.label().contains("overlap"), "got: {}", best.label());
    assert!(
        best.label().contains("AllReduceFuse"),
        "got: {}",
        best.label()
    );

    // The full default grid includes the sparse top-k wire: its winner
    // keeps the overlap but drops the fusion (the gather-based sparse
    // exchange has no RS/AG phase to fuse into) and is faster still.
    let full = tune(&program, &binding, &sim);
    let compressed = full.best().unwrap();
    assert!(
        matches!(
            compressed.config.format,
            coconet::core::WireFormat::TopK { .. }
        ),
        "full-grid winner rides the sparse wire, got {}",
        compressed.config
    );
    assert!(compressed.time < best.time);
}

/// §6.3.1: the pipeline winner overlaps RS, the fused send, and the AG.
#[test]
fn pipeline_winner_is_three_stage_overlap() {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16);
    let (program, _) = pipeline_program().unwrap();
    let binding = Binding::new(16)
        .with_groups(16)
        .bind("B", 2)
        .bind("S", 2048)
        .bind("H", 12288);
    let report = tune(&program, &binding, &sim);
    let best = report.best().unwrap();
    assert!(best.label().contains("SendFuse"), "got: {}", best.label());
    assert!(best.label().contains("overlap"), "got: {}", best.label());
    // And it is several times faster than the baseline.
    let baseline = report
        .candidates
        .iter()
        .find(|c| c.schedule.is_empty())
        .expect("baseline explored");
    assert!(baseline.time / best.time > 5.0);
}

/// The tuned winner still computes the right answer: execute the
/// winning model-parallel schedule against the baseline functionally.
#[test]
fn tuned_winner_is_semantics_preserving() {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 4, 1);
    let (program, _) =
        block_program(coconet::models::model_parallel::Block::SelfAttention).unwrap();
    let binding = Binding::new(4).bind("B", 2).bind("S", 4).bind("H", 16);
    let report = tune(&program, &binding, &sim);
    let best = &report.best().unwrap().program;

    let rng = CounterRng::new(64);
    let inputs = Inputs::new()
        .global("w", Tensor::randn([16, 16], DType::F16, rng, 0))
        .global("b", Tensor::randn([16], DType::F16, rng, 5_000))
        .global("in", Tensor::randn([2, 4, 16], DType::F16, rng, 6_000))
        .global("r", Tensor::randn([2, 4, 16], DType::F16, rng, 7_000));
    let opts = RunOptions::default().with_seed(21);
    let reference = run_program(&program, &binding, &inputs, opts)
        .unwrap()
        .global("out")
        .unwrap();
    // The winner's output is whatever its last (gathered) output is.
    let out_name = {
        let out = best.outputs()[0];
        best.node(out).unwrap().name().to_string()
    };
    let got = run_program(best, &binding, &inputs, opts)
        .unwrap()
        .global(&out_name)
        .unwrap();
    let diff = got.max_abs_diff(&reference);
    assert!(diff < 3e-2, "diff {diff}");
}

/// Table 3 bookkeeping: exploration is fast and enumerates a meaningful
/// schedule space for every workload.
#[test]
fn exploration_statistics() {
    let sim = Simulator::new(MachineSpec::paper_testbed(), 256, 1);
    let (adam, _) = optimizer_program(Optimizer::Adam, Hyper::default()).unwrap();
    let report = tune(&adam, &Binding::new(256).bind("N", 1 << 24), &sim);
    assert!(
        report.schedules_explored >= 8,
        "{}",
        report.schedules_explored
    );
    assert!(report.configs_evaluated >= 100);
    assert!(report.elapsed.as_secs_f64() < 30.0);
    // Candidates are sorted best-first.
    for w in report.candidates.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
}
