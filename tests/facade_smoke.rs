//! Smoke test for the `coconet` facade: the re-exported layers
//! (`coconet::core`, `coconet::runtime`, `coconet::models`, …) must
//! compose through the public paths alone, so a re-export regression
//! fails here before anything subtler does.

use coconet::core::{Binding, DType, Layout, Program, ReduceOp};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::tensor::Tensor;

/// Build a tiny AllReduce program through the facade paths, run it on
/// 2 ranks, and check the outputs — propagating every layer's error
/// through `coconet::Error` with `?`.
#[test]
fn allreduce_on_two_ranks_through_facade() -> coconet::Result<()> {
    let mut p = Program::new("smoke");
    let g = p.input("g", DType::F32, ["N"], Layout::Local);
    let s = p.all_reduce(ReduceOp::Sum, g)?;
    p.set_name(s, "sum")?;
    p.set_io(&[g], &[s])?;
    p.validate()?;

    let binding = Binding::new(2).bind("N", 4);
    let inputs = Inputs::new().per_rank(
        "g",
        vec![
            Tensor::full([4], DType::F32, 1.5),
            Tensor::full([4], DType::F32, 2.5),
        ],
    );
    let result = run_program(&p, &binding, &inputs, RunOptions::default())?;
    let sum = result.global("sum")?;
    assert_eq!(sum.shape().dims(), &[4]);
    for i in 0..4 {
        assert_eq!(sum.get(i), 4.0);
    }
    Ok(())
}

/// The remaining re-exported layers are reachable and consistent with
/// each other through the facade.
#[test]
fn facade_layers_compose() {
    // topology -> sim: cost a collective on the paper's testbed.
    let spec = coconet::topology::MachineSpec::paper_testbed();
    let cluster = coconet::topology::Cluster::new(spec.clone());
    let sim = coconet::sim::Simulator::new(spec, 256, 1);
    let step = coconet::core::Step::Collective(coconet::core::CollectiveStep {
        label: "ar".into(),
        kind: coconet::core::CollKind::AllReduce,
        op: coconet::core::ReduceOp::Sum,
        algo: coconet::core::CollAlgo::Ring,
        elems: 1 << 20,
        dtype: DType::F16,
        scattered: None,
    });
    let t = sim.time_step(&step, coconet::core::CommConfig::default());
    assert!(t.seconds > 0.0);
    assert!(cluster.world_size() > 0);

    // models: a paper workload builds a valid program.
    let (program, _) = coconet::models::optimizers::optimizer_program(
        coconet::models::Optimizer::Adam,
        coconet::models::Hyper::default(),
    )
    .expect("adam program builds");
    program.validate().expect("program validates");
}
