//! Property-based tests for the copy-on-write aliasing semantics of
//! the tensor substrate.
//!
//! The invariant every mutating operation must uphold: after cloning a
//! tensor (or taking a flat view of it), mutating one handle through
//! *any* write path leaves every other handle bit-identical to its
//! pre-mutation contents. The runtime's zero-copy sends and in-place
//! collectives are only sound because aliasing is never observable —
//! this suite machine-checks that across dtypes, shapes, view windows,
//! and every mutating operation the crate exposes.

use coconet::tensor::{DType, ReduceOp, Tensor};
use proptest::prelude::*;

/// Every in-place mutation path of `Tensor`.
#[derive(Clone, Copy, Debug)]
enum Mutation {
    Set,
    Update,
    Assign,
    WriteFlat,
    ReduceAssign,
    ReduceFlat,
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        Just(Mutation::Set),
        Just(Mutation::Update),
        Just(Mutation::Assign),
        Just(Mutation::WriteFlat),
        Just(Mutation::ReduceAssign),
        Just(Mutation::ReduceFlat),
    ]
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    prop_oneof![Just(DType::F32), Just(DType::F16)]
}

/// Applies one mutation to `t`, with `seed` varying the written values.
fn mutate(t: &mut Tensor, m: Mutation, seed: u64) {
    let n = t.numel();
    let dtype = t.dtype();
    match m {
        Mutation::Set => t.set(seed as usize % n, 1.0 + (seed % 13) as f32),
        Mutation::Update => t.update(|x| x * 2.0 + seed as f32),
        Mutation::Assign => {
            let other = Tensor::from_fn(t.shape().clone(), dtype, |i| (i as u64 + seed) as f32);
            t.assign(&other).expect("same shape");
        }
        Mutation::WriteFlat => {
            let len = 1 + seed as usize % n;
            let src = Tensor::full([len], dtype, -3.0 - (seed % 7) as f32);
            let start = (seed as usize / 2) % (n - len + 1);
            t.write_flat(start, &src).expect("in range");
        }
        Mutation::ReduceAssign => {
            let inc = Tensor::from_fn(t.shape().clone(), dtype, |i| (i % 5) as f32 + seed as f32);
            let view = inc.slice_flat(0, n).expect("full view");
            t.reduce_assign(&view, ReduceOp::Sum).expect("same numel");
        }
        Mutation::ReduceFlat => {
            let len = 1 + seed as usize % n;
            let inc = Tensor::full([len], dtype, 10.0 + (seed % 3) as f32);
            let start = (seed as usize / 3) % (n - len + 1);
            t.reduce_flat(start, &inc, ReduceOp::Max).expect("in range");
        }
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    (0..t.numel()).map(|i| t.get(i).to_bits()).collect()
}

proptest! {
    /// Clone a tensor, mutate one copy through every mutating op in a
    /// random order: the other copy stays bit-identical throughout.
    #[test]
    fn clone_is_isolated_from_every_mutation(
        n in 1usize..64,
        dtype in arb_dtype(),
        seed in any::<u64>(),
        order in prop::collection::vec(arb_mutation(), 1..7),
    ) {
        let original = Tensor::from_fn([n], dtype, |i| i as f32 * 0.5 - 3.0);
        let frozen = bits(&original);
        let mut working = original.clone();
        for (step, m) in order.into_iter().enumerate() {
            mutate(&mut working, m, seed.wrapping_add(step as u64));
            prop_assert_eq!(
                bits(&original),
                frozen.clone(),
                "{m:?} leaked through the clone"
            );
        }
    }

    /// The same isolation holds for sliced views, in both directions:
    /// mutating a view never changes the parent, and mutating the
    /// parent never changes a previously taken view.
    #[test]
    fn views_are_isolated_in_both_directions(
        n in 2usize..64,
        dtype in arb_dtype(),
        seed in any::<u64>(),
        m in arb_mutation(),
    ) {
        let parent = Tensor::from_fn([n], dtype, |i| (i * i) as f32);
        let start = seed as usize % (n - 1);
        let len = 1 + seed as usize % (n - start);
        let view = parent.slice_flat(start, len).expect("in range");
        let parent_bits = bits(&parent);
        let view_bits = bits(&view);

        // Mutate a copy of the view: the parent must not move.
        let mut view_copy = view.clone();
        mutate(&mut view_copy, m, seed);
        prop_assert_eq!(bits(&parent), parent_bits.clone());
        prop_assert_eq!(bits(&view), view_bits.clone());

        // Mutate a copy of the parent: the view must not move.
        let mut parent_copy = parent.clone();
        mutate(&mut parent_copy, m, seed ^ 0xABCD);
        prop_assert_eq!(bits(&view), view_bits.clone());
        prop_assert_eq!(bits(&parent), parent_bits.clone());
    }

    /// Mutating through an alias produces exactly the same values as
    /// mutating a deep copy — copy-on-write changes *when* buffers
    /// materialize, never what the mutation computes.
    #[test]
    fn cow_mutation_equals_deep_mutation(
        n in 1usize..64,
        dtype in arb_dtype(),
        seed in any::<u64>(),
        m in arb_mutation(),
    ) {
        let original = Tensor::from_fn([n], dtype, |i| i as f32 + 0.25);
        let mut shared = original.clone(); // COW path
        let mut deep = original.deep_clone(); // private path
        mutate(&mut shared, m, seed);
        mutate(&mut deep, m, seed);
        prop_assert_eq!(bits(&shared), bits(&deep));
    }

    /// Multi-way aliasing: several views over one buffer, one of them
    /// mutated — all others (and the parent) keep their contents.
    #[test]
    fn sibling_views_survive_a_mutation(
        half in 1usize..16,
        dtype in arb_dtype(),
        seed in any::<u64>(),
        m in arb_mutation(),
    ) {
        let n = half * 2;
        let parent = Tensor::from_fn([n], dtype, |i| i as f32);
        let mut left = parent.slice_flat(0, half).expect("in range");
        let right = parent.slice_flat(half, half).expect("in range");
        let right_bits = bits(&right);
        let parent_bits = bits(&parent);
        mutate(&mut left, m, seed);
        prop_assert_eq!(bits(&right), right_bits.clone());
        prop_assert_eq!(bits(&parent), parent_bits.clone());
    }
}
