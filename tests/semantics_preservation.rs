//! Cross-crate integration: every transformation and every workload
//! schedule is semantics preserving (§3) — transformed programs run on
//! the functional runtime and must reproduce the untransformed
//! program's outputs.

use coconet::core::xform::{fuse_all_reduce, overlap, reorder_all_gather, split_all_reduce};
use coconet::core::{Autotuner, Binding, CollAlgo, DType, Layout, Program, ReduceOp};
use coconet::models::model_parallel::{apply_block_schedule, Block, BlockSchedule};
use coconet::models::optimizers::{apply_optimizer_schedule, optimizer_program, reference_step};
use coconet::models::pipeline::{apply_pipeline_schedule, PipelineSchedule};
use coconet::models::{Hyper, Optimizer, OptimizerSchedule};
use coconet::runtime::{
    hierarchical_all_gather, hierarchical_reduce_scatter, ring_all_reduce, run_program, run_ranks,
    Group, Inputs, RunOptions,
};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, Tensor};
use coconet::topology::{Cluster, GpuSpec, InterconnectSpec, MachineSpec};
use proptest::prelude::*;

/// The paper's running example at several group sizes: the fully
/// scheduled program must match the baseline on every geometry.
#[test]
fn running_example_all_group_sizes() {
    for k in [2usize, 4, 8] {
        let build = || -> (Program, Vec<coconet::core::VarId>) {
            let mut p = Program::new("self_attention");
            let w = p.input("w", DType::F16, ["H", "H2"], Layout::sliced(0));
            let b = p.input("b", DType::F16, ["H2"], Layout::Replicated);
            let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
            let r = p.input("r", DType::F16, ["B", "S", "H2"], Layout::Replicated);
            let layer = p.matmul(input, w).unwrap();
            let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
            let biased = p.add(sum, b).unwrap();
            let d = p.dropout(biased, 0.3).unwrap();
            let out = p.add(d, r).unwrap();
            p.set_name(out, "out").unwrap();
            p.set_io(&[w, input, b, r], &[out]).unwrap();
            (p, vec![layer, sum, biased, d, out])
        };
        // H must divide k; use H = 8k, H2 = 16.
        let h = (8 * k) as u64;
        let binding = Binding::new(k)
            .bind("B", 2)
            .bind("S", 4)
            .bind("H", h)
            .bind("H2", 16);
        let rng = CounterRng::new(1234 + k as u64);
        let inputs = Inputs::new()
            .global("w", Tensor::randn([h as usize, 16], DType::F16, rng, 0))
            .global("b", Tensor::randn([16], DType::F16, rng, 40_000))
            .global(
                "in",
                Tensor::randn([2, 4, h as usize], DType::F16, rng, 50_000),
            )
            .global("r", Tensor::randn([2, 4, 16], DType::F16, rng, 60_000));
        let opts = RunOptions::default().with_seed(777);

        let (base, _) = build();
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();

        let (mut p, vars) = build();
        let (rs, ag) = split_all_reduce(&mut p, vars[1]).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[vars[2], vars[3], vars[4]]).unwrap();
        let gathered = result.gathers[0].1;
        p.set_name(gathered, "final").unwrap();
        fuse_all_reduce(&mut p, rs, &result.sliced, &[gathered]).unwrap();
        overlap(&mut p, &[vars[0], rs]).unwrap();
        let got = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global("final")
            .unwrap();
        let diff = got.max_abs_diff(&reference);
        assert!(diff < 3e-2, "k={k}: diff {diff}");
    }
}

/// Optimizer end-to-end: several consecutive steps of the *scheduled*
/// Adam must track the CPU reference (state carried across steps).
#[test]
fn adam_multi_step_training_matches_reference() {
    let hyper = Hyper::default();
    let n = 32usize;
    let k = 4usize;
    let binding = Binding::new(k).bind("N", n as u64);
    let (program, _) =
        apply_optimizer_schedule(Optimizer::Adam, hyper, OptimizerSchedule::FusedRsOptAg).unwrap();
    let rng = CounterRng::new(2024);

    let mut p_state = Tensor::randn([n], DType::F32, rng, 0);
    let mut m_state = Tensor::zeros([n], DType::F32);
    let mut v_state = Tensor::full([n], DType::F32, 1e-3);
    let mut p_ref = p_state.clone();
    let mut m_ref = m_state.clone();
    let mut v_ref = v_state.clone();

    for step in 1..=3u64 {
        let grads: Vec<Tensor> = (0..k)
            .map(|r| Tensor::randn([n], DType::F16, rng, 1000 * step + (r * n) as u64))
            .collect();
        let inputs = Inputs::new()
            .per_rank("g", grads.clone())
            .global("p", p_state.clone())
            .global("m", m_state.clone())
            .global("v", v_state.clone())
            .global("lr", Tensor::scalar(DType::F32, 0.05))
            .global("t", Tensor::scalar(DType::F32, step as f32));
        let result = run_program(&program, &binding, &inputs, RunOptions::default()).unwrap();
        // Carry the updated state forward (m_/v_ live sliced; read the
        // updated values back from the update nodes via outputs).
        let updated_p = result
            .global("p_")
            .or_else(|_| result.global("agp_"))
            .unwrap();
        // Reference.
        let mut grad_sum = Tensor::zeros([n], DType::F32);
        for g in &grads {
            grad_sum = grad_sum.add(&g.cast(DType::F32)).unwrap();
        }
        reference_step(
            Optimizer::Adam,
            hyper,
            &mut p_ref,
            &mut m_ref,
            &mut v_ref,
            &grad_sum,
            0.05,
            step as f32,
        );
        let diff = updated_p.max_abs_diff(&p_ref);
        assert!(diff < 1e-2, "step {step}: diff {diff}");
        // Feed the reference state back so later steps stay comparable
        // (the runtime result is validated against it each step).
        p_state = p_ref.clone();
        m_state = m_ref.clone();
        v_state = v_ref.clone();
    }
}

/// Every optimizer schedule × both optimizers at an uneven-ish size.
#[test]
fn optimizer_schedules_cross_product() {
    let hyper = Hyper::default();
    for opt in [Optimizer::Adam, Optimizer::Lamb] {
        let n = 96usize;
        let k = 8usize;
        let binding = Binding::new(k).bind("N", n as u64);
        let rng = CounterRng::new(7 + n as u64);
        let grads: Vec<Tensor> = (0..k)
            .map(|r| Tensor::randn([n], DType::F16, rng, (r * n) as u64))
            .collect();
        let p0 = Tensor::randn([n], DType::F32, rng, 90_000);
        let inputs = Inputs::new()
            .per_rank("g", grads.clone())
            .global("p", p0.clone())
            .global("m", Tensor::zeros([n], DType::F32))
            .global("v", Tensor::full([n], DType::F32, 0.02))
            .global("lr", Tensor::scalar(DType::F32, 0.02))
            .global("t", Tensor::scalar(DType::F32, 2.0));

        let (base, _) = optimizer_program(opt, hyper).unwrap();
        let reference = run_program(&base, &binding, &inputs, RunOptions::default())
            .unwrap()
            .global("p_")
            .unwrap();

        for schedule in [
            OptimizerSchedule::ArOpt,
            OptimizerSchedule::RsOptAg,
            OptimizerSchedule::FusedRsOptAg,
        ] {
            let (p, _) = apply_optimizer_schedule(opt, hyper, schedule).unwrap();
            let result = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
            let got = result
                .global("p_")
                .or_else(|_| result.global("agp_"))
                .unwrap();
            let diff = got.max_abs_diff(&reference);
            assert!(
                diff < 1e-2,
                "{} {}: diff {diff}",
                opt.name(),
                schedule.label(opt)
            );
        }
    }
}

/// Both model-parallel blocks, all schedules, two group sizes.
#[test]
fn model_parallel_blocks_all_schedules() {
    for k in [2usize, 4] {
        for block in [Block::SelfAttention, Block::Mlp] {
            let h = (8 * k) as u64;
            let binding = Binding::new(k)
                .bind("B", 2)
                .bind("S", 2)
                .bind("H", h)
                .bind("H4", 4 * h);
            let rng = CounterRng::new(99);
            let contract = match block {
                Block::SelfAttention => h,
                Block::Mlp => 4 * h,
            } as usize;
            let inputs = Inputs::new()
                .global(
                    "w",
                    Tensor::randn([contract, h as usize], DType::F16, rng, 0),
                )
                .global("b", Tensor::randn([h as usize], DType::F16, rng, 10_000))
                .global(
                    "in",
                    Tensor::randn([2, 2, contract], DType::F16, rng, 20_000),
                )
                .global(
                    "r",
                    Tensor::randn([2, 2, h as usize], DType::F16, rng, 30_000),
                );
            let opts = RunOptions::default().with_seed(11);
            let (base, _, base_out) = apply_block_schedule(block, BlockSchedule::Megatron).unwrap();
            let reference = run_program(&base, &binding, &inputs, opts)
                .unwrap()
                .global(&base_out)
                .unwrap();
            for schedule in BlockSchedule::ALL {
                let (p, _, out) = apply_block_schedule(block, schedule).unwrap();
                let got = run_program(&p, &binding, &inputs, opts)
                    .unwrap()
                    .global(&out)
                    .unwrap();
                let diff = got.max_abs_diff(&reference);
                assert!(
                    diff < 3e-2,
                    "k={k} {:?} {}: {diff}",
                    block,
                    schedule.label()
                );
            }
        }
    }
}

/// Pipeline schedules with three groups: data flows group 0 -> 1 -> 2
/// consistently under every schedule.
#[test]
fn pipeline_three_groups_all_schedules() {
    let k = 2usize;
    let groups = 3usize;
    let binding = Binding::new(k)
        .with_groups(groups)
        .bind("B", 2)
        .bind("S", 2)
        .bind("H", 8);
    let world = k * groups;
    let rng = CounterRng::new(55);
    let inputs = Inputs::new()
        .per_rank(
            "in",
            (0..world)
                .map(|r| Tensor::randn([2, 2, 8], DType::F16, rng, (r * 64) as u64))
                .collect(),
        )
        .global("b", Tensor::randn([8], DType::F16, rng, 1_000))
        .global("r", Tensor::randn([2, 2, 8], DType::F16, rng, 2_000));
    let opts = RunOptions::default().with_seed(31);
    let (base, _, base_out) = apply_pipeline_schedule(PipelineSchedule::Megatron).unwrap();
    let base_run = run_program(&base, &binding, &inputs, opts).unwrap();
    let reference = base_run.global(&base_out).unwrap();
    // Group 1 and group 2 both received something; group 0 did not.
    assert!(base_run.local(0, &base_out).is_none());
    assert!(base_run.local(k, &base_out).is_some());
    assert!(base_run.local(2 * k, &base_out).is_some());

    for schedule in PipelineSchedule::ALL {
        let (p, _, out) = apply_pipeline_schedule(schedule).unwrap();
        let got = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global(&out)
            .unwrap();
        let diff = got.max_abs_diff(&reference);
        assert!(diff < 3e-2, "{}: {diff}", schedule.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: the hierarchical two-level ReduceScatter composed with
    /// the hierarchical AllGather equals the flat ring AllReduce — for
    /// every `ReduceOp`, uneven tensor sizes (including fewer elements
    /// than ranks), and multi-node group splits (including a short
    /// last node).
    #[test]
    fn hierarchical_rs_ag_equals_flat_ring_allreduce(
        k in 2usize..9,
        node_size in 1usize..5,
        numel in 0usize..40,
        op_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][op_idx];
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            // Small integer values: every partial reduction is exactly
            // representable in f32, so the two algorithms' different
            // reduction orders must agree bit for bit.
            let input = Tensor::from_fn([numel], DType::F32, |i| {
                ((seed as usize + comm.rank() * 31 + i * 7) % 17) as f32 - 8.0
            });
            let reference = ring_all_reduce(&comm, group, &input, op);
            let chunk = hierarchical_reduce_scatter(&comm, group, &input, op, node_size);
            let gathered = hierarchical_all_gather(&comm, group, &chunk, node_size);
            let mut composed = Tensor::zeros([numel], DType::F32);
            let mut off = 0;
            for c in gathered {
                composed.write_flat(off, &c).unwrap();
                off += c.numel();
            }
            (reference, composed)
        });
        for (r, (reference, composed)) in results.iter().enumerate() {
            prop_assert_eq!(
                reference.to_f32_vec(),
                composed.to_f32_vec(),
                "k={} node_size={} numel={} op={:?} rank={}",
                k, node_size, numel, op, r
            );
        }
    }
}

/// A 2-node, 2-GPUs-per-node machine, so that a 4-rank group genuinely
/// spans nodes and the hierarchical algorithm is non-degenerate in both
/// the cost model and the runtime.
fn two_by_two_machine() -> MachineSpec {
    MachineSpec {
        gpu: GpuSpec::v100(),
        interconnect: InterconnectSpec::dgx2(),
        gpus_per_node: 2,
        nodes: 2,
    }
}

/// The executor runs the collective algorithm a *tuned plan* selected —
/// not just the ring. For each algorithm, the autotuner (restricted to
/// that algorithm's slice of the grid) picks a winning configuration;
/// the functional runtime then executes the winning schedule under that
/// configuration and must reproduce the baseline ring output — exactly
/// for the lossless wires, within the one-shot top-k bound (a dropped
/// element is off by at most its own magnitude) when the winner rides
/// the sparse wire, as the switch's does at this tiny tensor: its two
/// fixed dataplane hops dwarf 96 elements of payload, so top-k wins
/// its grid slice on cost, and the runtime faithfully runs what the
/// tuner priced.
#[test]
fn executor_runs_tuned_tree_and_hierarchical_plans() {
    let build = || -> Program {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H2"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H2"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let layer = p.matmul(input, w).unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        let out = p.add(sum, b).unwrap();
        p.set_name(out, "out").unwrap();
        p.set_io(&[w, input, b], &[out]).unwrap();
        p
    };
    let k = 4usize;
    let binding = Binding::new(k)
        .bind("B", 2)
        .bind("S", 4)
        .bind("H", 8)
        .bind("H2", 12);
    let rng = CounterRng::new(2026);
    let inputs = Inputs::new()
        .global("w", Tensor::randn([8, 12], DType::F16, rng, 0))
        .global("b", Tensor::randn([12], DType::F16, rng, 9_000))
        .global("in", Tensor::randn([2, 4, 8], DType::F16, rng, 11_000));
    let sim = Simulator::new(two_by_two_machine(), k, 1);
    let cluster = Cluster::new(two_by_two_machine());
    // The hierarchical algorithm's participants, straight from the
    // cluster: two nodes of two ranks, led by ranks 0 and 2.
    assert_eq!(cluster.node_leaders(), vec![0, 2]);
    assert!(cluster.is_node_leader(2) && !cluster.is_node_leader(3));

    let reference = run_program(&build(), &binding, &inputs, RunOptions::default())
        .unwrap()
        .global("out")
        .unwrap();

    let mut winner_times = Vec::new();
    for algo in CollAlgo::ALL {
        let tuner = Autotuner {
            algos: vec![algo],
            ..Autotuner::default()
        };
        let report = tuner.tune(&build(), &binding, &sim).expect("tunes");
        let best = report.best().expect("winner");
        assert_eq!(best.config.algo, algo, "the tuned plan carries {algo}");
        winner_times.push(best.time);

        // Execute the winning schedule under the tuned configuration:
        // the interpreter dispatches onto the plan's algorithm, with
        // the node geometry taken from the cluster.
        let opts = RunOptions::default().for_cluster(best.config, &cluster);
        let result = run_program(&best.program, &binding, &inputs, opts).unwrap();
        let out_name = {
            let out = best.program.outputs()[0];
            best.program.node(out).unwrap().name().to_string()
        };
        let got = result.global(&out_name).unwrap();
        let diff = got.max_abs_diff(&reference);
        let tol = match best.config.format {
            // One-shot top-k (no error-feedback loop here): the error
            // is bounded by the largest reference magnitude, the same
            // bound the executor's wire-format sweep uses.
            coconet::compress::WireFormat::TopK { .. } => {
                1.5 * reference
                    .to_f32_vec()
                    .iter()
                    .fold(0.0f32, |a, &b| a.max(b.abs()))
            }
            _ => 2e-2,
        };
        assert!(diff <= tol, "{algo}: diff {diff} > tol {tol}");
    }

    // The full-grid tuner picks the best of the per-algorithm winners,
    // and its plan also executes correctly.
    let report = Autotuner::default()
        .tune(&build(), &binding, &sim)
        .expect("tunes");
    let best = report.best().expect("winner");
    let min_single = winner_times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        best.time <= min_single + 1e-15,
        "full grid {} !<= best single-algorithm {min_single}",
        best.time
    );
    let opts = RunOptions::default().for_cluster(best.config, &cluster);
    let result = run_program(&best.program, &binding, &inputs, opts).unwrap();
    let out_name = {
        let out = best.program.outputs()[0];
        best.program.node(out).unwrap().name().to_string()
    };
    let diff = result.global(&out_name).unwrap().max_abs_diff(&reference);
    let tol = match best.config.format {
        coconet::compress::WireFormat::TopK { .. } => {
            1.5 * reference
                .to_f32_vec()
                .iter()
                .fold(0.0f32, |a, &b| a.max(b.abs()))
        }
        _ => 2e-2,
    };
    assert!(
        diff <= tol,
        "full-grid winner ({}): diff {diff} > tol {tol}",
        best.config
    );
}
