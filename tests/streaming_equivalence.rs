//! Property: the barrier-free steady-state executor is a pure
//! reordering of wire traffic. For random training-shaped programs
//! (elementwise chains feeding trailing gradient AllReduces, with an
//! optional *consumed* collective mixed in) and random per-step
//! delays, `run_program_iterations` under the priority schedule
//! produces bit-identical outputs to the same number of sequential
//! barriered runs — semantics preservation under reordering.

use coconet::core::{Binding, CommSched, DType, Layout, Program, ReduceOp, VarId};
use coconet::runtime::{run_program_iterations, Inputs, RunOptions};
use coconet::tensor::{CounterRng, Tensor};
use proptest::prelude::*;

/// One random pointwise op applied to a gradient before its sync.
#[derive(Clone, Debug)]
enum PreOp {
    Relu,
    Tanh,
    Scale(i8),
    Dropout(u8),
}

fn arb_chain() -> impl Strategy<Value = Vec<PreOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(PreOp::Relu),
            Just(PreOp::Tanh),
            (-3i8..4).prop_map(PreOp::Scale),
            (1u8..9).prop_map(PreOp::Dropout),
        ],
        0..3,
    )
}

/// Builds a training-step-shaped program: `layers` local gradients,
/// each run through its pointwise chain and synchronized by an
/// AllReduce that feeds only an output — the trailing shape the
/// priority scheduler streams across iteration boundaries. When
/// `with_consumed` is set, one extra AllReduce is consumed by an add
/// before the output, so the streamed sites coexist with a site the
/// scheduler must leave on the blocking path.
fn build_program(chains: &[Vec<PreOp>], with_consumed: bool) -> Program {
    let mut p = Program::new("streamed_training_step");
    let mut ins: Vec<VarId> = Vec::new();
    let mut outs: Vec<VarId> = Vec::new();
    for (l, chain) in chains.iter().enumerate() {
        let g = p.input(format!("g{l}"), DType::F32, ["N"], Layout::Local);
        ins.push(g);
        let mut cur = g;
        for op in chain {
            cur = match op {
                PreOp::Relu => p.relu(cur).unwrap(),
                PreOp::Tanh => p.tanh(cur).unwrap(),
                PreOp::Scale(s) => {
                    let c = p.constant(f64::from(*s) / 2.0);
                    p.mul(cur, c).unwrap()
                }
                PreOp::Dropout(tenths) => p.dropout(cur, f64::from(*tenths) / 10.0).unwrap(),
            };
        }
        let synced = p.all_reduce(ReduceOp::Sum, cur).unwrap();
        p.set_name(synced, format!("sync{l}")).unwrap();
        outs.push(synced);
    }
    if with_consumed {
        let g = p.input("g_fused", DType::F32, ["N"], Layout::Local);
        let bias = p.input("bias", DType::F32, ["N"], Layout::Replicated);
        ins.push(g);
        ins.push(bias);
        let summed = p.all_reduce(ReduceOp::Sum, g).unwrap();
        let fused = p.add(summed, bias).unwrap();
        p.set_name(fused, "fused").unwrap();
        outs.push(fused);
    }
    p.set_io(&ins, &outs).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Barrier-free `run_iterations(n)` == n sequential barriered
    /// runs, bit for bit, for every generated program, geometry, and
    /// per-step delay bound.
    #[test]
    fn streamed_iterations_are_bit_identical_to_barriered(
        chains in prop::collection::vec(arb_chain(), 1..5),
        with_consumed in any::<bool>(),
        ranks in 2usize..5,
        elems in 3usize..24,
        iters in 1u64..5,
        jitter_ns in 0u64..80_000,
        seed in any::<u64>(),
    ) {
        let program = build_program(&chains, with_consumed);
        let binding = Binding::new(ranks).bind("N", elems as u64);
        let rng = CounterRng::new(seed);
        let mut inputs = Inputs::new();
        for l in 0..chains.len() {
            inputs = inputs.per_rank(
                format!("g{l}"),
                (0..ranks)
                    .map(|r| {
                        Tensor::randn([elems], DType::F32, rng, (l * ranks + r) as u64)
                    })
                    .collect(),
            );
        }
        if with_consumed {
            inputs = inputs
                .per_rank(
                    "g_fused",
                    (0..ranks)
                        .map(|r| {
                            Tensor::randn([elems], DType::F32, rng, 10_000 + r as u64)
                        })
                        .collect(),
                )
                .global("bias", Tensor::randn([elems], DType::F32, rng, 20_000));
        }
        let opts = RunOptions::default().with_seed(seed);

        let barriered =
            run_program_iterations(&program, &binding, &inputs, opts, iters).unwrap();
        let streamed = run_program_iterations(
            &program,
            &binding,
            &inputs,
            opts.with_sched(CommSched::Priority).with_jitter_ns(jitter_ns),
            iters,
        )
        .unwrap();

        let mut names: Vec<String> =
            (0..chains.len()).map(|l| format!("sync{l}")).collect();
        if with_consumed {
            names.push("fused".into());
        }
        for name in &names {
            let want = barriered.global(name).unwrap().to_f32_vec();
            let got = streamed.global(name).unwrap().to_f32_vec();
            prop_assert_eq!(
                got,
                want,
                "{} diverged under streaming (ranks {}, iters {}, jitter {} ns)",
                name,
                ranks,
                iters,
                jitter_ns
            );
        }
    }
}
