//! Pipeline parallelism (§4/§6.3): the Megatron-LM transformer boundary
//! vs CoCoNet's sliced, fused, overlapped P2P at GPT-3 175B scale —
//! plus a functional run showing the data arriving on the next group.
//!
//! Run with: `cargo run --release --example pipeline_inference`

use coconet::core::{lower, Binding, CommConfig};
use coconet::models::pipeline::{apply_pipeline_schedule, PipelineSchedule};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, DType, Tensor};
use coconet::topology::MachineSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Compare all four schedules on the simulated 16-node cluster
    let sim = Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16);
    let gpt3 = Binding::new(16)
        .with_groups(16)
        .bind("B", 2)
        .bind("S", 2048)
        .bind("H", 12288);
    println!("GPT-3 175B pipeline boundary (16 ranks/group, 16 groups):");
    let mut baseline = None;
    for schedule in PipelineSchedule::ALL {
        let (p, log, _) = apply_pipeline_schedule(schedule)?;
        let t = sim
            .time_plan(&lower(&p, &gpt3, CommConfig::default())?)
            .total;
        let base = *baseline.get_or_insert(t);
        println!(
            "  {:>28}: {:>8.3} ms  ({:.2}x)",
            schedule.label(),
            t * 1e3,
            base / t
        );
        for line in log {
            println!("      {line}");
        }
    }

    // ---- 2. Execute the best schedule functionally (2 groups x 4 ranks)
    let (p, _, out_name) = apply_pipeline_schedule(PipelineSchedule::Overlap)?;
    let small = Binding::new(4)
        .with_groups(2)
        .bind("B", 2)
        .bind("S", 4)
        .bind("H", 8);
    let rng = CounterRng::new(5);
    let inputs = Inputs::new()
        .per_rank(
            "in",
            (0..8)
                .map(|r| Tensor::randn([2, 4, 8], DType::F16, rng, (r * 100) as u64))
                .collect(),
        )
        .global("b", Tensor::randn([8], DType::F16, rng, 70_000))
        .global("r", Tensor::randn([2, 4, 8], DType::F16, rng, 80_000));
    let result = run_program(&p, &small, &inputs, RunOptions::default())?;
    let received = result.global(&out_name)?;
    println!(
        "\nfunctional check: group 1 received a replicated [2,4,8] tensor \
         (first element {:.4})",
        received.get(0)
    );
    assert!(
        result.local(0, &out_name).is_none(),
        "group 0 keeps nothing"
    );
    assert!(
        result.local(4, &out_name).is_some(),
        "group 1 holds the output"
    );
    Ok(())
}
