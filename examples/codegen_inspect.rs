//! Inspect the CUDA source CoCoNet generates for each schedule of the
//! model-parallel self-attention block (§5): library glue for the
//! baseline, a protocol-specialized FusedAllReduce for the fused
//! schedule, and the ~1k-line chunk-ordered GEMM + spin-lock pipeline
//! for the overlapped one.
//!
//! Run with: `cargo run --example codegen_inspect [-- --dump]`

use coconet::core::{generate_cuda, Binding};
use coconet::models::model_parallel::{apply_block_schedule, Block, BlockSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dump = std::env::args().any(|a| a == "--dump");
    let binding = Binding::new(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072)
        .bind("H4", 4 * 3072);
    for schedule in BlockSchedule::ALL {
        let (p, log, _) = apply_block_schedule(Block::SelfAttention, schedule)?;
        let code = generate_cuda(&p, &binding)?;
        println!(
            "{:>24}: {:>5} generated CUDA lines in {} file(s), {} DSL lines (+{} schedule)",
            schedule.label(),
            code.total_loc(),
            code.files.len(),
            p.dsl_loc(),
            log.len()
        );
        for (name, src) in &code.files {
            println!("    {name}: {} lines", src.lines().count());
        }
        if dump && schedule == BlockSchedule::Overlap {
            println!("--- overlapped implementation ---\n{}", code.source());
        }
    }
    println!("\n(pass --dump to print the overlapped CUDA source)");
    Ok(())
}
