//! Quickstart: express the paper's running example (Figure 3), apply
//! the transformation pipeline of Figure 4, execute both versions on
//! the functional runtime, and time both on the simulated cluster.
//!
//! Run with: `cargo run --example quickstart`

use coconet::core::xform::{fuse_all_reduce, overlap, reorder_all_gather, split_all_reduce};
use coconet::core::{lower, Binding, CommConfig, DType, Layout, Program, ReduceOp};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, Tensor};
use coconet::topology::MachineSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Write the program (Figure 3) -------------------------------
    let mut p = Program::new("self_attention");
    let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
    let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
    let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
    let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
    let layer = p.matmul(input, w)?;
    p.set_name(layer, "layer")?;
    let sum = p.all_reduce(ReduceOp::Sum, layer)?;
    p.set_name(sum, "sum")?;
    let biased = p.add(sum, b)?;
    let d = p.dropout(biased, 0.1)?;
    let out = p.add(d, r)?;
    p.set_name(out, "out")?;
    p.set_io(&[w, input, b, r], &[out])?;
    println!("--- DSL program ---\n{}", p.to_dsl_string());

    // ---- 2. Apply the schedule (Figure 4, programs 1 -> 4) -------------
    let mut scheduled = p.clone();
    let (rs, ag) = split_all_reduce(&mut scheduled, sum)?;
    let result = reorder_all_gather(&mut scheduled, ag, &[biased, d, out])?;
    let gathered = result.gathers[0].1;
    fuse_all_reduce(&mut scheduled, rs, &result.sliced, &[gathered])?;
    overlap(&mut scheduled, &[layer, rs])?;
    println!("--- scheduled program ---\n{}", scheduled.to_dsl_string());

    // ---- 3. Execute both on the functional runtime (4 ranks) -----------
    let small = Binding::new(4).bind("B", 2).bind("S", 4).bind("H", 8);
    let rng = CounterRng::new(42);
    let inputs = Inputs::new()
        .global("w", Tensor::randn([8, 8], DType::F16, rng, 0))
        .global("b", Tensor::randn([8], DType::F16, rng, 1000))
        .global("in", Tensor::randn([2, 4, 8], DType::F16, rng, 2000))
        .global("r", Tensor::randn([2, 4, 8], DType::F16, rng, 3000));
    let opts = RunOptions::default();
    let reference = run_program(&p, &small, &inputs, opts)?.global("out")?;
    let out_name = scheduled.node(gathered)?.name().to_string();
    let transformed = run_program(&scheduled, &small, &inputs, opts)?.global(&out_name)?;
    println!(
        "semantics preserved: max |diff| = {:.2e}",
        transformed.max_abs_diff(&reference)
    );

    // ---- 4. Time both on the simulated 16-GPU DGX-2 --------------------
    let big = Binding::new(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072);
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let t_base = sim
        .time_plan(&lower(&p, &big, CommConfig::default())?)
        .total;
    let t_sched = sim
        .time_plan(&lower(&scheduled, &big, CommConfig::default())?)
        .total;
    println!(
        "simulated 16x V100: baseline {:.3} ms, overlapped {:.3} ms ({:.2}x)",
        t_base * 1e3,
        t_sched * 1e3,
        t_base / t_sched
    );
    Ok(())
}
