//! Tune a Megatron-LM self-attention epilogue over the *full*
//! communication grid — `algorithm × protocol × channels × wire
//! format` — then run the winning format's AllReduce for real on rank
//! threads and print the ledger-measured bytes next to the analytic
//! volumes.
//!
//! This is the wire-compression subsystem end to end: the autotuner
//! discovers that the sparse top-k wire beats every dense schedule at
//! Megatron sizes, and the bytes ledger proves the compressed
//! collective moves exactly its analytic volume.
//!
//! Run with: `cargo run --release --example compressed_allreduce`

use coconet::compress::WireFormat;
use coconet::core::{Autotuner, Binding, DType, ExecPlan, Layout, Program, ReduceOp};
use coconet::runtime::{
    all_reduce_wire, ring_all_reduce_wire_bytes, run_ranks, top_k_all_reduce_wire_bytes, Group,
};
use coconet::sim::Simulator;
use coconet::tensor::Tensor;
use coconet::topology::MachineSpec;

/// The Figure 3 self-attention epilogue: MatMul + AllReduce +
/// bias/dropout/residual.
fn epilogue() -> Result<Program, coconet::core::CoreError> {
    let mut p = Program::new("attention_epilogue");
    let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
    let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
    let x = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
    let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
    let mm = p.matmul(x, w)?;
    p.set_name(mm, "layer")?;
    let sum = p.all_reduce(ReduceOp::Sum, mm)?;
    p.set_name(sum, "sum")?;
    let biased = p.add(sum, b)?;
    let d = p.dropout(biased, 0.1)?;
    let out = p.add(d, r)?;
    p.set_io(&[w, x, b, r], &[out])?;
    Ok(p)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Tune over the full grid, wire format included -----------
    let program = epilogue()?;
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let binding = Binding::new(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072);
    let evaluator = |plan: &ExecPlan| sim.time_plan(plan).total;
    let tuner = Autotuner::default();
    let grid =
        tuner.algos.len() * tuner.protocols.len() * tuner.channels.len() * tuner.formats.len();
    println!("sweeping {grid} configurations per schedule (formats: Dense, FP16, TopK10)");
    let report = tuner.tune(&program, &binding, &evaluator)?;
    let best = report.best()?;
    let baseline = report
        .candidates
        .iter()
        .find(|c| c.schedule.is_empty())
        .expect("baseline explored");
    println!(
        "explored {} schedules / {} configs in {:.2?}",
        report.schedules_explored, report.configs_evaluated, report.elapsed
    );
    println!(
        "baseline {:.3} ms -> best {:.3} ms ({:.2}x) at [{}] via {}",
        baseline.time * 1e3,
        best.time * 1e3,
        baseline.time / best.time,
        best.config,
        best.label(),
    );

    // ---- 2. Run the formats for real; the ledger proves the bytes ---
    let (n, p) = (1usize << 16, 8usize);
    println!("\nmeasured ring AllReduce of {n} F32 elements over {p} ranks:");
    for format in WireFormat::SWEEP {
        let results = run_ranks(p, move |comm| {
            let group = Group { start: 0, size: p };
            let rank = comm.rank() as f32;
            let input = Tensor::from_fn([n], DType::F32, move |i| rank + (i % 31) as f32);
            comm.reset_ledger();
            let out = all_reduce_wire(
                &comm,
                group,
                &input,
                ReduceOp::Sum,
                coconet::core::CollAlgo::Ring,
                0,
                format,
                None,
            );
            assert_eq!(out.numel(), n);
            comm.ledger()
        });
        let measured = results[0].bytes_sent;
        let analytic = match format {
            WireFormat::Dense => ring_all_reduce_wire_bytes(n, p, DType::F32),
            WireFormat::Fp16 => ring_all_reduce_wire_bytes(n, p, DType::F16),
            WireFormat::TopK { k_permille } => top_k_all_reduce_wire_bytes(n, p, k_permille),
        };
        assert_eq!(measured, analytic, "{format}: ledger must match analytic");
        let dense = ring_all_reduce_wire_bytes(n, p, DType::F32);
        println!(
            "  {format:>7}: {measured:>10} bytes/rank (analytic {analytic}, {:.1} % of dense)",
            100.0 * measured as f64 / dense as f64
        );
    }
    Ok(())
}
