//! A full Megatron-LM transformer layer boundary, composed end to end:
//! the self-attention epilogue, the MLP epilogue, and the pipeline
//! send to the next group — all in one DSL program, handed to the
//! autotuner, and verified functionally across two groups.
//!
//! This is the §6.3 workload the paper's introduction motivates: model
//! parallelism *within* each group, pipeline parallelism *between*
//! groups, and three communication operations whose schedules compose.
//!
//! Run with: `cargo run --release --example megatron_transformer`

use coconet::core::{
    Autotuner, Binding, DType, ExecPlan, Layout, PeerSelector, Program, ReduceOp, VarId,
};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, Tensor};
use coconet::topology::MachineSpec;

/// Builds: attention epilogue (MatMul + AR + bias/dropout/residual),
/// MLP epilogue (MatMul + AR + bias/dropout/residual), then a P2P send
/// of the layer output to the next pipeline group.
fn transformer_layer() -> Result<(Program, Vec<VarId>), coconet::core::CoreError> {
    let mut p = Program::new("transformer_layer");
    // Attention epilogue inputs.
    let w_attn = p.input("wAttn", DType::F16, ["H", "H"], Layout::sliced(0));
    let b_attn = p.input("bAttn", DType::F16, ["H"], Layout::Replicated);
    let x = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
    let r_attn = p.input("rAttn", DType::F16, ["B", "S", "H"], Layout::Replicated);
    // MLP epilogue inputs (the 4H intermediate enters sliced).
    let w_mlp = p.input("wMlp", DType::F16, ["H4", "H"], Layout::sliced(0));
    let b_mlp = p.input("bMlp", DType::F16, ["H"], Layout::Replicated);
    let h_mlp = p.input("hMlp", DType::F16, ["B", "S", "H4"], Layout::sliced(2));

    // --- self-attention epilogue (Figure 3) ---
    let attn_mm = p.matmul(x, w_attn)?;
    p.set_name(attn_mm, "attnLayer")?;
    let attn_sum = p.all_reduce(ReduceOp::Sum, attn_mm)?;
    p.set_name(attn_sum, "attnSum")?;
    let attn_biased = p.add(attn_sum, b_attn)?;
    let attn_drop = p.dropout(attn_biased, 0.1)?;
    let attn_out = p.add(attn_drop, r_attn)?;
    p.set_name(attn_out, "attnOut")?;

    // --- MLP epilogue; the residual is the attention output ---
    let mlp_mm = p.matmul(h_mlp, w_mlp)?;
    p.set_name(mlp_mm, "mlpLayer")?;
    let mlp_sum = p.all_reduce(ReduceOp::Sum, mlp_mm)?;
    p.set_name(mlp_sum, "mlpSum")?;
    let mlp_biased = p.add(mlp_sum, b_mlp)?;
    let mlp_drop = p.dropout(mlp_biased, 0.1)?;
    let layer_out = p.add(mlp_drop, attn_out)?;
    p.set_name(layer_out, "layerOut")?;

    // --- pipeline boundary (Figure 8a) ---
    let sent = p.send(layer_out, PeerSelector::NextGroupSameRank)?;
    p.set_name(sent, "next")?;
    p.set_io(&[w_attn, b_attn, x, r_attn, w_mlp, b_mlp, h_mlp], &[sent])?;
    Ok((p, vec![attn_sum, mlp_sum]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, _) = transformer_layer()?;
    println!(
        "--- composed transformer layer ---\n{}",
        program.to_dsl_string()
    );

    // ---- 1. Autotune the whole layer at GPT-2 8.3B sizes --------------
    let sim = Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16);
    let binding = Binding::new(16)
        .with_groups(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072)
        .bind("H4", 4 * 3072);
    let evaluator = |plan: &ExecPlan| sim.time_plan(plan).total;
    // Two AllReduces + a send need a longer transformation chain.
    let tuner = Autotuner {
        max_depth: 8,
        ..Autotuner::default()
    };
    let report = tuner.tune(&program, &binding, &evaluator)?;
    println!(
        "autotuner: {} schedules, {} configs, {:.2?}",
        report.schedules_explored, report.configs_evaluated, report.elapsed
    );
    let best = report.best()?;
    let baseline = report
        .candidates
        .iter()
        .find(|c| c.schedule.is_empty())
        .expect("baseline explored");
    println!(
        "baseline {:.3} ms -> best {:.3} ms ({:.2}x) via:",
        baseline.time * 1e3,
        best.time * 1e3,
        baseline.time / best.time
    );
    for step in &best.schedule {
        println!("    {step}");
    }

    // ---- 2. Execute the winner across 2 groups x 4 ranks ---------------
    let small = Binding::new(4)
        .with_groups(2)
        .bind("B", 2)
        .bind("S", 4)
        .bind("H", 8)
        .bind("H4", 32);
    let rng = CounterRng::new(2026);
    // Sliced inputs (`in`, `hMlp`) are given as global tensors; the
    // runtime cuts each rank's slice, so both schedules see identical
    // data.
    let inputs = Inputs::new()
        .global("wAttn", Tensor::randn([8, 8], DType::F16, rng, 0))
        .global("bAttn", Tensor::randn([8], DType::F16, rng, 1_000))
        .global("in", Tensor::randn([2, 4, 8], DType::F16, rng, 70_000))
        .global("rAttn", Tensor::randn([2, 4, 8], DType::F16, rng, 3_000))
        .global("wMlp", Tensor::randn([32, 8], DType::F16, rng, 4_000))
        .global("bMlp", Tensor::randn([8], DType::F16, rng, 5_000))
        .global("hMlp", Tensor::randn([2, 4, 32], DType::F16, rng, 80_000));
    let opts = RunOptions::default().with_seed(42);
    let reference = run_program(&program, &small, &inputs, opts)?;
    let ref_out = reference.global("next")?;
    let out_name = {
        let out = best.program.outputs()[0];
        best.program.node(out)?.name().to_string()
    };
    let tuned = run_program(&best.program, &small, &inputs, opts)?;
    let tuned_out = tuned.global(&out_name)?;
    println!(
        "\nfunctional check across 2 pipeline groups: max |diff| = {:.2e}",
        tuned_out.max_abs_diff(&ref_out)
    );
    assert!(tuned_out.max_abs_diff(&ref_out) < 3e-2);
    Ok(())
}
