//! Data-parallel Adam (§4, Figure 6): build the traditional update,
//! let the autotuner discover the `fuse(RS-Adam-AG)` schedule, and
//! verify the winner against a CPU reference on the functional runtime.
//!
//! Run with: `cargo run --release --example data_parallel_adam`

use coconet::core::{Autotuner, Binding, ExecPlan};
use coconet::models::optimizers::{optimizer_program, reference_step};
use coconet::models::{Hyper, Optimizer};
use coconet::runtime::{run_program, Inputs, RunOptions};
use coconet::sim::Simulator;
use coconet::tensor::{CounterRng, DType, Tensor};
use coconet::topology::MachineSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. The traditional parameter update (Figure 6a) ---------------
    let hyper = Hyper::default();
    let (program, _) = optimizer_program(Optimizer::Adam, hyper)?;
    println!("--- Adam in the DSL ---\n{}", program.to_dsl_string());

    // ---- 2. Autotune on the paper's 256-GPU testbed at 2^26 elems ------
    let sim = Simulator::new(MachineSpec::paper_testbed(), 256, 1);
    let binding = Binding::new(256).bind("N", 1 << 26);
    let evaluator = |plan: &ExecPlan| sim.time_plan(plan).total;
    let report = Autotuner::default().tune(&program, &binding, &evaluator)?;
    println!(
        "autotuner explored {} schedules / {} configs in {:.2?}",
        report.schedules_explored, report.configs_evaluated, report.elapsed
    );
    for c in report.candidates.iter().take(4) {
        println!("  {:>9.3} ms  [{}]  {}", c.time * 1e3, c.config, c.label());
    }
    let best = report.best()?;
    println!("winner: {}\n", best.label());

    // ---- 3. Verify the winning schedule on the runtime (4 ranks) -------
    let n = 64usize;
    let k = 4usize;
    let small = Binding::new(k).bind("N", n as u64);
    let rng = CounterRng::new(9);
    let grads: Vec<Tensor> = (0..k)
        .map(|r| Tensor::randn([n], DType::F16, rng, (r * n) as u64))
        .collect();
    let p0 = Tensor::randn([n], DType::F32, rng, 99_000);
    let inputs = Inputs::new()
        .per_rank("g", grads.clone())
        .global("p", p0.clone())
        .global("m", Tensor::zeros([n], DType::F32))
        .global("v", Tensor::full([n], DType::F32, 0.01))
        .global("lr", Tensor::scalar(DType::F32, 0.01))
        .global("t", Tensor::scalar(DType::F32, 1.0));
    let result = run_program(&best.program, &small, &inputs, RunOptions::default())?;
    let got = result.global("p_").or_else(|_| result.global("agp_"))?;

    let mut grad_sum = Tensor::zeros([n], DType::F32);
    for g in &grads {
        grad_sum = grad_sum.add(&g.cast(DType::F32))?;
    }
    let (mut p_ref, mut m_ref, mut v_ref) = (
        p0,
        Tensor::zeros([n], DType::F32),
        Tensor::full([n], DType::F32, 0.01),
    );
    reference_step(
        Optimizer::Adam,
        hyper,
        &mut p_ref,
        &mut m_ref,
        &mut v_ref,
        &grad_sum,
        0.01,
        1.0,
    );
    println!(
        "winning schedule matches the CPU Adam reference: max |diff| = {:.2e}",
        got.max_abs_diff(&p_ref)
    );
    Ok(())
}
