//! Multi-tenant link contention: N tuned programs sharing one fabric.
//!
//! The single-job simulator answers "how fast is this plan alone?".
//! A serving cluster runs several tuned jobs at once, and their
//! collectives contend for the same inter-node links; this module
//! extends the cost model to that regime with a deterministic
//! continuous-time event loop. Each [`TenantJob`] alternates a local
//! compute phase (its own GPUs — never contended) with a communication
//! phase that occupies the shared fabric, for a fixed number of
//! iterations.
//!
//! Two transfer disciplines are modelled, selected by the tuned
//! [`XferSched`] dimension:
//!
//! * [`XferSched::Fifo`] — fair sharing: every active transfer
//!   progresses at `1/n` of link bandwidth (the classic
//!   generalized-processor-sharing fluid model, which is what a FIFO
//!   of interleaved chunks converges to).
//! * [`XferSched::Aware`] — contention-aware: the fabric serves the
//!   job with the least *remaining* communication work exclusively
//!   (shortest-remaining-processing-time), the MLfabric-style policy
//!   that minimizes mean completion time on a single shared resource.
//!
//! Both disciplines are work-conserving, so consolidation itself (K
//! jobs sharing vs running serially) wins whenever compute overlaps
//! someone else's communication; the Aware policy additionally gets
//! short jobs out of the way first. Everything here is pure `f64`
//! arithmetic over the analytic cost model — no randomness, no
//! wall-clock — so outcomes are bit-reproducible and independent of
//! job enumeration order (ties break on job name).

use coconet_core::{ExecPlan, XferSched};

use crate::simulator::{Simulator, StepCategory};

/// Relative tolerance for "this phase has finished" under f64 drift.
const EPS: f64 = 1e-12;

/// One tenant: a tuned program reduced to its per-iteration costs.
#[derive(Clone, Debug)]
pub struct TenantJob {
    /// Display name (also the deterministic tie-break key).
    pub name: String,
    /// Per-iteration local compute seconds (uncontended).
    pub compute_s: f64,
    /// Per-iteration fabric occupancy in seconds at full bandwidth.
    pub comm_s: f64,
    /// Number of compute→comm iterations.
    pub iters: usize,
}

impl TenantJob {
    /// A job from explicit per-iteration costs.
    pub fn new(name: impl Into<String>, compute_s: f64, comm_s: f64, iters: usize) -> TenantJob {
        TenantJob {
            name: name.into(),
            compute_s: compute_s.max(0.0),
            comm_s: comm_s.max(0.0),
            iters,
        }
    }

    /// Derives a job from a costed plan: the simulator times the plan
    /// once, and the step categories split it into the uncontended
    /// compute share and the fabric share. Fused and overlapped steps
    /// occupy the fabric for their full duration (their compute rides
    /// inside the transfer), which is the conservative choice for a
    /// contention model.
    pub fn from_plan(
        name: impl Into<String>,
        sim: &Simulator,
        plan: &ExecPlan,
        iters: usize,
    ) -> TenantJob {
        let time = sim.time_plan(plan);
        let compute =
            time.category_total(StepCategory::Compute) + time.category_total(StepCategory::Fixed);
        let comm = time.category_total(StepCategory::Communication)
            + time.category_total(StepCategory::FusedCommunication)
            + time.category_total(StepCategory::Overlapped);
        TenantJob::new(name, compute, comm, iters)
    }

    /// Seconds to run this job alone on an idle fabric.
    pub fn solo_s(&self) -> f64 {
        self.iters as f64 * (self.compute_s + self.comm_s)
    }

    /// Total fabric seconds the job needs across all iterations.
    pub fn total_comm_s(&self) -> f64 {
        self.iters as f64 * self.comm_s
    }
}

/// Outcome of one shared run under one discipline.
#[derive(Clone, Debug)]
pub struct ShareOutcome {
    /// Time the last job finishes.
    pub makespan_s: f64,
    /// Mean of the per-job completion times — the serving metric the
    /// Aware discipline optimizes.
    pub mean_completion_s: f64,
    /// Per-job completion times, in input order.
    pub finishes: Vec<(String, f64)>,
}

/// Side-by-side contention report for one workload.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Each job's solo (idle-fabric) time, in input order.
    pub solo_s: Vec<f64>,
    /// Running the jobs one after another: the no-consolidation
    /// baseline, `sum(solo_s)`.
    pub serial_s: f64,
    /// Shared fabric under fair FIFO sharing.
    pub fifo: ShareOutcome,
    /// Shared fabric under the contention-aware (SRPT) scheduler.
    pub aware: ShareOutcome,
}

/// Per-job mutable state inside the event loop.
#[derive(Clone, Debug, PartialEq)]
enum Phase {
    Compute,
    Comm,
    Done,
}

struct JobState {
    phase: Phase,
    /// Seconds left in the current phase at rate 1.
    remaining: f64,
    /// Iterations left *after* the current one completes.
    iters_left: usize,
    /// Total fabric seconds still owed (the SRPT key).
    comm_left: f64,
    finish: f64,
}

impl JobState {
    fn start(job: &TenantJob) -> JobState {
        let mut st = JobState {
            phase: Phase::Compute,
            remaining: job.compute_s,
            iters_left: job.iters,
            comm_left: job.total_comm_s(),
            finish: 0.0,
        };
        if job.iters == 0 {
            st.phase = Phase::Done;
            st.remaining = 0.0;
            st.comm_left = 0.0;
        } else {
            st.iters_left -= 1;
        }
        st
    }

    /// Advances through zero-length phases until the job either has
    /// work in the current phase or is done.
    fn settle(&mut self, job: &TenantJob, now: f64, scale: f64) {
        loop {
            if self.phase == Phase::Done || self.remaining > EPS * scale {
                return;
            }
            match self.phase {
                Phase::Compute => {
                    self.phase = Phase::Comm;
                    self.remaining = job.comm_s;
                }
                Phase::Comm => {
                    self.comm_left = (self.comm_left - job.comm_s).max(0.0);
                    if self.iters_left == 0 {
                        self.phase = Phase::Done;
                        self.remaining = 0.0;
                        self.finish = now;
                    } else {
                        self.iters_left -= 1;
                        self.phase = Phase::Compute;
                        self.remaining = job.compute_s;
                    }
                }
                Phase::Done => unreachable!(),
            }
        }
    }
}

/// Simulates `jobs` starting together on one shared fabric under the
/// given transfer discipline. Deterministic: identical inputs produce
/// bit-identical outcomes, and each job's finish time is independent
/// of the order jobs are listed in (SRPT ties break on job name).
pub fn simulate_shared(jobs: &[TenantJob], xfer: XferSched) -> ShareOutcome {
    let scale = jobs.iter().map(TenantJob::solo_s).fold(1e-9, f64::max);
    let mut states: Vec<JobState> = jobs.iter().map(JobState::start).collect();
    let mut now = 0.0;
    for (st, job) in states.iter_mut().zip(jobs) {
        st.settle(job, now, scale);
    }

    // Each loop turn retires at least one phase boundary, so the event
    // count is bounded by the total number of phases.
    let max_events = 2 * jobs.iter().map(|j| j.iters + 1).sum::<usize>() + 4;
    for _ in 0..max_events {
        let active_comm: Vec<usize> = (0..states.len())
            .filter(|&j| states[j].phase == Phase::Comm)
            .collect();
        // The SRPT pick: least remaining fabric work, name tie-break.
        let chosen = active_comm.iter().copied().min_by(|&a, &b| {
            states[a]
                .comm_left
                .partial_cmp(&states[b].comm_left)
                .expect("finite comm work")
                .then_with(|| jobs[a].name.cmp(&jobs[b].name))
        });
        let rates: Vec<f64> = (0..states.len())
            .map(|j| match states[j].phase {
                Phase::Compute => 1.0,
                Phase::Comm => match xfer {
                    XferSched::Fifo => 1.0 / active_comm.len() as f64,
                    XferSched::Aware => {
                        if Some(j) == chosen {
                            1.0
                        } else {
                            0.0
                        }
                    }
                },
                Phase::Done => 0.0,
            })
            .collect();
        let dt = (0..states.len())
            .filter(|&j| states[j].phase != Phase::Done && rates[j] > 0.0)
            .map(|j| states[j].remaining / rates[j])
            .fold(f64::INFINITY, f64::min);
        if !dt.is_finite() {
            break; // everyone done
        }
        now += dt;
        for j in 0..states.len() {
            let r = rates[j];
            if states[j].phase == Phase::Done || r == 0.0 {
                continue;
            }
            let burned = dt * r;
            states[j].remaining -= burned;
            if states[j].phase == Phase::Comm {
                states[j].comm_left = (states[j].comm_left - burned).max(0.0);
            }
        }
        for (st, job) in states.iter_mut().zip(jobs) {
            st.settle(job, now, scale);
        }
    }
    debug_assert!(states.iter().all(|s| s.phase == Phase::Done));

    let finishes: Vec<(String, f64)> = jobs
        .iter()
        .zip(&states)
        .map(|(j, s)| (j.name.clone(), s.finish))
        .collect();
    let makespan_s = finishes.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    let mean_completion_s = if finishes.is_empty() {
        0.0
    } else {
        finishes.iter().map(|(_, f)| *f).sum::<f64>() / finishes.len() as f64
    };
    ShareOutcome {
        makespan_s,
        mean_completion_s,
        finishes,
    }
}

/// Runs the workload solo, serially, and shared under both transfer
/// disciplines. This is the source for the `multitenant_throughput`
/// trajectory row.
pub fn contention_report(jobs: &[TenantJob]) -> MultiTenantReport {
    let solo_s: Vec<f64> = jobs.iter().map(TenantJob::solo_s).collect();
    let serial_s = solo_s.iter().sum();
    MultiTenantReport {
        solo_s,
        serial_s,
        fifo: simulate_shared(jobs, XferSched::Fifo),
        aware: simulate_shared(jobs, XferSched::Aware),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Vec<TenantJob> {
        vec![
            TenantJob::new("large", 4.0e-3, 8.0e-3, 3),
            TenantJob::new("medium", 2.0e-3, 4.0e-3, 3),
            TenantJob::new("small", 1.0e-3, 2.0e-3, 3),
            TenantJob::new("tiny", 0.5e-3, 1.0e-3, 3),
        ]
    }

    #[test]
    fn solo_and_serial_accounting() {
        let jobs = workload();
        let report = contention_report(&jobs);
        assert!((report.solo_s[0] - 3.0 * 12.0e-3).abs() < 1e-12);
        let serial: f64 = report.solo_s.iter().sum();
        assert!((report.serial_s - serial).abs() < 1e-12);
    }

    #[test]
    fn single_job_is_contention_free() {
        let job = TenantJob::new("solo", 3.0e-3, 5.0e-3, 4);
        for xfer in XferSched::ALL {
            let out = simulate_shared(std::slice::from_ref(&job), xfer);
            assert!((out.makespan_s - job.solo_s()).abs() < 1e-12 * job.solo_s());
            assert_eq!(out.finishes.len(), 1);
        }
    }

    #[test]
    fn aware_beats_fifo_for_four_jobs() {
        let report = contention_report(&workload());
        // Consolidation wins under either discipline: compute overlaps
        // someone else's communication.
        assert!(report.fifo.makespan_s < report.serial_s);
        assert!(report.aware.makespan_s < report.serial_s);
        // SRPT strictly improves the serving metric over fair sharing.
        assert!(report.aware.mean_completion_s < report.fifo.mean_completion_s);
    }

    #[test]
    fn aware_matches_fifo_makespan_when_comm_dominates() {
        // Comm-dominated jobs arriving together (the data-parallel
        // regime: big allreduces, cheap elementwise compute): the
        // fabric never idles once the first transfer starts, so both
        // work-conserving disciplines finish the last job at the same
        // instant — Aware's mean-completion win is free.
        let jobs: Vec<TenantJob> = [
            ("large", 8.0),
            ("medium", 4.0),
            ("small", 2.0),
            ("tiny", 1.0),
        ]
        .iter()
        .map(|&(name, m)| TenantJob::new(name, 0.5e-3, m * 1.0e-3, 1))
        .collect();
        let report = contention_report(&jobs);
        assert!(report.aware.mean_completion_s < report.fifo.mean_completion_s);
        assert!(
            (report.aware.makespan_s - report.fifo.makespan_s).abs()
                <= 1e-9 * report.fifo.makespan_s
        );
        assert!(report.aware.makespan_s < report.serial_s);
    }

    #[test]
    fn finish_times_are_independent_of_job_order() {
        let jobs = workload();
        let mut reversed = jobs.clone();
        reversed.reverse();
        for xfer in XferSched::ALL {
            let a = simulate_shared(&jobs, xfer);
            let b = simulate_shared(&reversed, xfer);
            for (name, finish) in &a.finishes {
                let (_, other) = b
                    .finishes
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("same job set");
                assert_eq!(finish.to_bits(), other.to_bits(), "job {name} under {xfer}");
            }
        }
    }

    #[test]
    fn zero_compute_and_zero_comm_jobs_terminate() {
        let jobs = vec![
            TenantJob::new("all-comm", 0.0, 2.0e-3, 2),
            TenantJob::new("all-compute", 3.0e-3, 0.0, 2),
            TenantJob::new("empty", 1.0e-3, 1.0e-3, 0),
        ];
        for xfer in XferSched::ALL {
            let out = simulate_shared(&jobs, xfer);
            assert!(
                (out.finishes[2].1 - 0.0).abs() < 1e-12,
                "0-iter job done at t=0"
            );
            assert!(
                (out.finishes[1].1 - 6.0e-3).abs() < 1e-9,
                "pure compute uncontended"
            );
            assert!(out.finishes[0].1 >= 4.0e-3 - 1e-12);
        }
    }
}
