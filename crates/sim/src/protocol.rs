//! NCCL protocol parameters (§5.1).
//!
//! "NCCL sends data using one of the three protocols: LL, LL128, and
//! Simple. These protocols make different tradeoffs between latency and
//! bandwidth based on the type of inter-node synchronization used: LL
//! has the lowest latency and Simple provides the highest bandwidth."
//!
//! The numbers below follow the public NCCL implementation's tuning
//! model: LL moves 4 bytes of data per 8-byte pack (50 % line rate)
//! with flag-based synchronization; LL128 moves 120 of every 128 bytes
//! (~95 %); Simple runs at line rate but synchronizes with memory
//! fences at chunk granularity, costing the highest per-hop latency.

use coconet_core::Protocol;

/// Latency/bandwidth characteristics of one protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtocolParams {
    /// Fraction of the line rate the protocol sustains.
    pub bw_factor: f64,
    /// Per-ring-step latency over NVLink/NVSwitch, seconds.
    pub hop_latency_intra: f64,
    /// Per-ring-step latency over InfiniBand, seconds.
    pub hop_latency_inter: f64,
    /// Fixed kernel-side setup latency per collective call, seconds.
    pub base_latency: f64,
}

/// The tuning parameters for a protocol.
pub fn params(p: Protocol) -> ProtocolParams {
    match p {
        Protocol::LL => ProtocolParams {
            bw_factor: 0.50,
            hop_latency_intra: 0.6e-6,
            hop_latency_inter: 1.6e-6,
            base_latency: 2.0e-6,
        },
        Protocol::LL128 => ProtocolParams {
            bw_factor: 0.95,
            hop_latency_intra: 0.9e-6,
            hop_latency_inter: 2.4e-6,
            base_latency: 3.0e-6,
        },
        Protocol::Simple => ProtocolParams {
            bw_factor: 1.00,
            hop_latency_intra: 2.8e-6,
            hop_latency_inter: 6.0e-6,
            base_latency: 6.0e-6,
        },
    }
}

/// The NCCL-style size heuristic: which protocol the library would pick
/// for a message of `bytes` (the autotuner sweeps all of them instead;
/// §6.1.1 shows the heuristic is not always right).
pub fn default_protocol(bytes: u64) -> Protocol {
    // NCCL's real thresholds grow with rank count (latency terms scale
    // with ring steps); these values approximate its choices at the
    // paper's 256-rank scale.
    if bytes < 1024 * 1024 {
        Protocol::LL
    } else if bytes < 64 * 1024 * 1024 {
        Protocol::LL128
    } else {
        Protocol::Simple
    }
}

/// The channel counts the paper's autotuner sweeps (§6.1.1: "all
/// channels from 2 to 64").
pub fn channel_sweep() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_bandwidth_tradeoff_ordering() {
        let ll = params(Protocol::LL);
        let ll128 = params(Protocol::LL128);
        let simple = params(Protocol::Simple);
        // Bandwidth: LL < LL128 < Simple.
        assert!(ll.bw_factor < ll128.bw_factor);
        assert!(ll128.bw_factor < simple.bw_factor);
        // Latency: LL < LL128 < Simple.
        assert!(ll.hop_latency_intra < ll128.hop_latency_intra);
        assert!(ll128.hop_latency_intra < simple.hop_latency_intra);
        // Inter-node hops are always slower than intra-node hops.
        for p in [ll, ll128, simple] {
            assert!(p.hop_latency_inter > p.hop_latency_intra);
        }
    }

    #[test]
    fn default_protocol_by_size() {
        assert_eq!(default_protocol(1024), Protocol::LL);
        assert_eq!(default_protocol(4 * 1024 * 1024), Protocol::LL128);
        assert_eq!(default_protocol(128 * 1024 * 1024), Protocol::Simple);
    }

    #[test]
    fn channel_sweep_covers_paper_range() {
        let ch = channel_sweep();
        assert_eq!(*ch.first().unwrap(), 2);
        assert_eq!(*ch.last().unwrap(), 64);
    }
}
