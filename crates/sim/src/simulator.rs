//! End-to-end plan timing: the machine-level evaluator the autotuner
//! and benchmarks use.

use coconet_core::{
    CollAlgo, CollKind, CommConfig, CommSched, ExecPlan, OverlapStage, PlanEvaluator, Step,
    WireFormat,
};
use coconet_topology::{Cluster, MachineSpec};

use crate::cost::WireBytes;
use crate::overlap::simulate_overlap;
use crate::{CostModel, GroupGeom, TaskGraph};

/// Number of collective algorithms ([`CollAlgo::ALL`]).
const N_ALGOS: usize = CollAlgo::ALL.len();

/// Category of a timed step, for the stacked-bar breakdowns of
/// Figures 11 and 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepCategory {
    /// Local computation (kernels, GEMMs).
    Compute,
    /// Cross-rank communication.
    Communication,
    /// Fused communication + computation.
    FusedCommunication,
    /// An overlapped pipeline.
    Overlapped,
    /// Fixed documented cost.
    Fixed,
}

/// Timing of one plan step.
#[derive(Clone, Debug)]
pub struct StepTime {
    /// The step label.
    pub label: String,
    /// Seconds.
    pub seconds: f64,
    /// Category for breakdown reporting.
    pub category: StepCategory,
}

/// Timing of a whole plan.
#[derive(Clone, Debug)]
pub struct PlanTime {
    /// Total time in seconds (steps run back-to-back; overlap happens
    /// *inside* `Overlapped` steps, which is the paper's model — one
    /// kernel launch per stage, §5.3).
    pub total: f64,
    /// Per-step timings.
    pub steps: Vec<StepTime>,
}

impl PlanTime {
    /// Sum of the steps in a category.
    pub fn category_total(&self, category: StepCategory) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.category == category)
            .map(|s| s.seconds)
            .sum()
    }
}

/// A machine simulator bound to an execution geometry: programs run
/// SPMD over `num_groups` groups of `group_size` ranks each.
#[derive(Clone, Debug)]
pub struct Simulator {
    cost: CostModel,
    cluster: Cluster,
    group_size: usize,
    num_groups: usize,
}

impl Simulator {
    /// Creates a simulator for `num_groups` groups of `group_size`
    /// consecutive ranks on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has fewer GPUs than `group_size *
    /// num_groups`.
    pub fn new(machine: MachineSpec, group_size: usize, num_groups: usize) -> Simulator {
        assert!(
            machine.world_size() >= group_size * num_groups,
            "machine has {} GPUs but the program needs {}",
            machine.world_size(),
            group_size * num_groups
        );
        let cluster = Cluster::new(machine.clone());
        Simulator {
            cost: CostModel::new(machine),
            cluster,
            group_size,
            num_groups,
        }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (for knob overrides).
    pub fn with_cost_model(mut self, cost: CostModel) -> Simulator {
        self.cost = cost;
        self
    }

    /// Geometry of one process group.
    pub fn group_geom(&self) -> GroupGeom {
        let gpn = self.cluster.spec().gpus_per_node;
        let nodes_spanned = self.group_size.div_ceil(gpn);
        GroupGeom {
            size: self.group_size,
            nodes_spanned,
            ranks_per_node: self.group_size.min(gpn),
        }
    }

    /// Whether the P2P from group `g` to `g+1` crosses node boundaries.
    pub fn p2p_crosses_nodes(&self) -> bool {
        if self.num_groups < 2 {
            return false;
        }
        // Rank 0 of group 0 vs rank 0 of group 1.
        let peer = self.group_size;
        !self
            .cluster
            .same_node(0, peer.min(self.cluster.world_size() - 1))
    }

    /// Times a single step.
    pub fn time_step(&self, step: &Step, config: CommConfig) -> StepTime {
        let geom = self.group_geom();
        match step {
            Step::Kernel(k) => StepTime {
                label: k.label.clone(),
                seconds: self.cost.kernel_time(k),
                category: StepCategory::Compute,
            },
            Step::MatMul(mm) => StepTime {
                label: mm.label.clone(),
                seconds: self.cost.matmul_time(mm),
                category: StepCategory::Compute,
            },
            Step::Collective(c) => {
                // The step's stamped algorithm wins over the plan-level
                // configuration (lowering keeps them consistent; the
                // stamp is authoritative for hand-built plans), and a
                // non-sum reduction strips the sparse wire the runtime
                // would refuse to run.
                let mut t = self.cost.collective_time(
                    c.kind,
                    c.elems,
                    c.dtype,
                    geom,
                    config
                        .with_algo(c.algo)
                        .with_format(CostModel::step_wire_format(config.format, c.op)),
                );
                if let Some(s) = c.scattered {
                    t += self.cost.scattered_overhead(s.n_tensors, s.n_buckets);
                }
                StepTime {
                    label: c.label.clone(),
                    seconds: t,
                    category: StepCategory::Communication,
                }
            }
            Step::FusedCollective(f) => StepTime {
                label: f.label.clone(),
                seconds: self
                    .cost
                    .fused_collective_time(f, geom, config.with_algo(f.algo)),
                category: StepCategory::FusedCommunication,
            },
            Step::SendRecv(sr) => StepTime {
                label: sr.label.clone(),
                seconds: self
                    .cost
                    .send_recv_time(sr, geom, self.p2p_crosses_nodes(), config),
                category: StepCategory::Communication,
            },
            Step::Overlapped(ol) => {
                let sim = simulate_overlap(&self.cost, ol, geom, self.p2p_crosses_nodes(), config);
                StepTime {
                    label: ol.label.clone(),
                    seconds: sim.total,
                    category: StepCategory::Overlapped,
                }
            }
            Step::Fixed(f) => StepTime {
                label: f.label.clone(),
                seconds: f.seconds,
                category: StepCategory::Fixed,
            },
        }
    }

    /// Times a whole plan.
    ///
    /// Under the default barriered discipline the total is the serial
    /// sum of the steps (overlap happens only *inside* `Overlapped`
    /// steps). Under [`CommSched::Priority`] the total is the
    /// *steady-state per-iteration time* of running the plan as a
    /// stream of iterations without a global barrier: iteration *i*'s
    /// communication drains on the fabric while iteration *i+1*'s
    /// computation proceeds, blocked only on the specific tensors it
    /// consumes (`steady_state_total`, the compute/comm pipeline
    /// makespan).
    pub fn time_plan(&self, plan: &ExecPlan) -> PlanTime {
        let steps: Vec<StepTime> = plan
            .steps
            .iter()
            .map(|s| self.time_step(s, plan.config))
            .collect();
        let total = match plan.config.sched {
            CommSched::Barriered => steps.iter().map(|s| s.seconds).sum(),
            CommSched::Priority => self.steady_state_total(&steps),
        };
        PlanTime { total, steps }
    }

    /// Steady-state per-iteration time of the priority-streamed
    /// discipline: the marginal cost of one more iteration in an
    /// infinite pipeline where the compute pipe and the comm fabric
    /// are distinct resources, iteration *i+1*'s *j*-th compute step
    /// blocks only on iteration *i*'s *j*-th communication step (the
    /// per-tensor readiness model: first-consumed tensors are
    /// synchronized first), and each communication step waits for the
    /// compute step that produced its payload.
    ///
    /// The marginal cost is measured as `makespan(3 iterations) −
    /// makespan(2 iterations)` of that pipeline, then clamped from
    /// below by both resources' per-iteration busy times — the fabric
    /// still moves every byte and the compute pipe still runs every
    /// kernel, which is exactly what keeps the pruning bounds
    /// admissible on the enlarged grid (a wire-only floor never
    /// exceeds the fabric busy time).
    fn steady_state_total(&self, steps: &[StepTime]) -> f64 {
        let is_comm = |c: StepCategory| {
            matches!(
                c,
                StepCategory::Communication
                    | StepCategory::FusedCommunication
                    | StepCategory::Overlapped
            )
        };
        let compute: f64 = steps
            .iter()
            .filter(|s| !is_comm(s.category))
            .map(|s| s.seconds)
            .sum();
        let comm: f64 = steps
            .iter()
            .filter(|s| is_comm(s.category))
            .map(|s| s.seconds)
            .sum();
        // With one resource idle there is nothing to overlap: the
        // stream degenerates to the barriered loop.
        if compute == 0.0 || comm == 0.0 {
            return compute + comm;
        }
        let marginal =
            self.pipeline_makespan(steps, &is_comm, 3) - self.pipeline_makespan(steps, &is_comm, 2);
        marginal.max(compute).max(comm)
    }

    /// Makespan of `iters` back-to-back plan iterations under the
    /// barrier-free dependency structure (see
    /// [`steady_state_total`](Self::steady_state_total)).
    fn pipeline_makespan(
        &self,
        steps: &[StepTime],
        is_comm: &impl Fn(StepCategory) -> bool,
        iters: usize,
    ) -> f64 {
        let mut g = TaskGraph::new();
        let compute_res = g.add_resource("compute");
        let fabric_res = g.add_resource("fabric");
        // Only the *trailing* communication block — collectives no
        // compute step follows in program order — has its consumers in
        // the next iteration (the gradient-sync pattern the readiness
        // model relaxes). A collective a later compute step consumes
        // stays on the iteration's serial data-dependence chain, so
        // e.g. a split RS→opt→AG epilogue cannot pretend its AllGather
        // overlaps the very MatMul that reads its output.
        let last_compute_pos = steps
            .iter()
            .rposition(|s| !is_comm(s.category))
            .expect("caller guarantees a compute step");
        let mut prev_trailing_comm: Vec<crate::TaskId> = Vec::new();
        let mut prev_iter_last_compute: Option<crate::TaskId> = None;
        let mut prev_iter_last_task: Option<crate::TaskId> = None;
        for i in 0..iters {
            let mut trailing_comm = Vec::new();
            let mut last_compute: Option<crate::TaskId> = None;
            let mut last_comm: Option<crate::TaskId> = None;
            let mut last_task: Option<crate::TaskId> = None;
            let mut compute_idx = 0usize;
            for (j, s) in steps.iter().enumerate() {
                if is_comm(s.category) {
                    // Communication launches as soon as its producer
                    // finishes: the preceding compute step of its own
                    // iteration, or — for a plan that *starts* with a
                    // collective — the previous iteration's final
                    // compute step (the payload a leading gradient
                    // exchange ships was produced by the last
                    // iteration; the stream may not leapfrog it). The
                    // fabric resource serializes it against other
                    // in-flight collectives in priority order
                    // (insertion order = consumption order).
                    let deps: Vec<crate::TaskId> = last_compute
                        .or(prev_iter_last_compute)
                        .into_iter()
                        .collect();
                    let t = g.add_task(format!("comm[{i}.{j}]"), fabric_res, s.seconds, &deps);
                    if j > last_compute_pos {
                        trailing_comm.push(t);
                    }
                    last_comm = Some(t);
                    last_task = Some(t);
                } else {
                    // Compute blocks on (i) the previous compute step
                    // of its own iteration, (ii) any collective that
                    // precedes it *in the same iteration's program
                    // order* (it consumes that collective's output —
                    // the stream never reorders a data dependence),
                    // and (iii) the matching tensor of the *previous*
                    // iteration's trailing block being synchronized
                    // (clamped: trailing compute waits on the last
                    // collective) — never on a global barrier. A plan
                    // with no trailing collectives has nothing to
                    // stream past: its next iteration starts after the
                    // previous one ends.
                    let mut deps: Vec<crate::TaskId> =
                        last_compute.into_iter().chain(last_comm).collect();
                    if !prev_trailing_comm.is_empty() {
                        let k = compute_idx.min(prev_trailing_comm.len() - 1);
                        deps.push(prev_trailing_comm[k]);
                    } else if deps.is_empty() {
                        deps.extend(prev_iter_last_task);
                    }
                    let t = g.add_task(format!("comp[{i}.{j}]"), compute_res, s.seconds, &deps);
                    last_compute = Some(t);
                    last_task = Some(t);
                    compute_idx += 1;
                }
            }
            prev_trailing_comm = trailing_comm;
            prev_iter_last_compute = last_compute.or(prev_iter_last_compute);
            prev_iter_last_task = last_task.or(prev_iter_last_task);
        }
        g.schedule().makespan()
    }

    /// The configuration-independent coefficients of both autotuner
    /// lower bounds for *all three collective algorithms* under one
    /// wire format, from one pass over the plan's steps. Under a
    /// configuration `c` with `c.format == format`:
    ///
    /// - tight per-plan floor = `fixed_s + wire_time(wire[c.algo], c)`
    ///   plus each overlapped step's largest-stage floor
    /// - descendant floor = the largest per-step irreducible transfer
    ///   of `durable` at `c`'s effective rates
    ///
    /// The format is a profile-level coefficient (compressed payloads
    /// change every step's bytes), so the sweep computes one profile
    /// per distinct format in its configuration list.
    pub fn floor_profile(&self, plan: &ExecPlan, format: WireFormat) -> FloorProfile {
        let geom = self.group_geom();
        let launch = self.cost_model().machine().gpu.launch_overhead;
        // Fused collectives cannot run the sparse exchange; their wire
        // resolves top-k to dense (`CostModel::fused_wire_format`).
        let fused_fmt = CostModel::fused_wire_format(format);
        let wire = |algo: CollAlgo, kind: CollKind, elems: u64, dtype, f: WireFormat| {
            self.cost.collective_wire(algo, kind, elems, dtype, geom, f)
        };
        // What of a step's volume survives every further
        // transformation: an AllReduce may split (and an overlapped
        // pipeline is bounded only by its largest stage), so it keeps
        // only its ReduceScatter half — on the dense wire when the
        // configuration is top-k (there is no sparse ReduceScatter) —
        // or, staying a plain AllReduce, the sparse exchange volume;
        // an AllGather can be eliminated entirely (`asSlice` + `dead`)
        // and a send can shrink by the group size once slicing
        // applies, so both keep nothing.
        let durable_entry =
            |kind: CollKind, elems: u64, dtype, f: WireFormat| -> Option<DurableFloor> {
                match kind {
                    CollKind::AllGather => None,
                    CollKind::AllReduce => {
                        let rs_format = CostModel::fused_wire_format(f);
                        let mut dense = [WireBytes::default(); N_ALGOS];
                        for algo in CollAlgo::ALL {
                            dense[algo.index()] =
                                wire(algo, CollKind::ReduceScatter, elems, dtype, rs_format);
                        }
                        // The sparse alternative, when the switchover
                        // keeps it active for this size.
                        let resolved = CostModel::effective_wire_format(
                            f,
                            CollKind::AllReduce,
                            elems,
                            dtype,
                            geom,
                        );
                        let sparse_bytes = match resolved {
                            WireFormat::TopK { .. } => {
                                Some(coconet_compress::sparse_all_reduce_wire_bytes(
                                    elems,
                                    geom.size as u64,
                                    resolved.k_for(elems),
                                ) as f64)
                            }
                            _ => None,
                        };
                        Some(DurableFloor {
                            dense,
                            sparse_bytes,
                        })
                    }
                    k => {
                        let mut dense = [WireBytes::default(); N_ALGOS];
                        for algo in CollAlgo::ALL {
                            dense[algo.index()] = wire(algo, k, elems, dtype, f);
                        }
                        Some(DurableFloor {
                            dense,
                            sparse_bytes: None,
                        })
                    }
                }
            };
        let mut profile = FloorProfile {
            format,
            fixed_s: 0.0,
            wire: [WireBytes::default(); N_ALGOS],
            overlap_wire: Vec::new(),
            durable: Vec::new(),
        };
        for step in &plan.steps {
            match step {
                Step::Collective(c) => {
                    profile.fixed_s += launch;
                    let f = CostModel::step_wire_format(format, c.op);
                    for algo in CollAlgo::ALL {
                        let i = algo.index();
                        profile.wire[i].accumulate(wire(algo, c.kind, c.elems, c.dtype, f));
                    }
                    profile
                        .durable
                        .extend(durable_entry(c.kind, c.elems, c.dtype, f));
                }
                Step::FusedCollective(f) => {
                    profile.fixed_s += launch;
                    for algo in CollAlgo::ALL {
                        let i = algo.index();
                        profile.wire[i].accumulate(wire(
                            algo,
                            CollKind::AllReduce,
                            f.elems,
                            f.dtype,
                            fused_fmt,
                        ));
                    }
                    profile.durable.extend(durable_entry(
                        CollKind::AllReduce,
                        f.elems,
                        f.dtype,
                        fused_fmt,
                    ));
                }
                // The pipeline can hide everything but its largest
                // communication stage (launch amortization inside the
                // pipeline is the overlap engine's business, so no
                // launch term here). Stage maxima are kept field-wise
                // per algorithm; the per-config bound takes the largest
                // single segment, which under-approximates the true
                // largest stage and stays admissible.
                Step::Overlapped(ol) => {
                    let mut stage_max = [WireBytes::default(); N_ALGOS];
                    for st in &ol.stages {
                        let (kind, elems, dtype, f) = match st {
                            OverlapStage::Collective(c) => (
                                c.kind,
                                c.elems,
                                c.dtype,
                                CostModel::step_wire_format(format, c.op),
                            ),
                            OverlapStage::FusedCollective(f) => {
                                (CollKind::AllReduce, f.elems, f.dtype, fused_fmt)
                            }
                            OverlapStage::MatMul(_) | OverlapStage::SendRecv(_) => continue,
                        };
                        for algo in CollAlgo::ALL {
                            let i = algo.index();
                            stage_max[i] = stage_max[i].max(wire(algo, kind, elems, dtype, f));
                        }
                        profile.durable.extend(durable_entry(kind, elems, dtype, f));
                    }
                    profile.overlap_wire.push(stage_max);
                }
                // Every kernel/GEMM/P2P cost path starts at the launch
                // overhead; fixed steps cost exactly what they say.
                Step::Kernel(_) | Step::MatMul(_) | Step::SendRecv(_) => profile.fixed_s += launch,
                Step::Fixed(f) => profile.fixed_s += f.seconds,
            }
        }
        profile
    }

    /// Both bounds of one profile under one configuration — the single
    /// code path behind [`plan_time_floor`], [`plan_lower_bound`], and
    /// the sweep, so they agree bit-for-bit (the contract
    /// [`PlanEvaluator::lower_bound_sweep`] requires).
    ///
    /// [`plan_time_floor`]: Simulator::plan_time_floor
    /// [`plan_lower_bound`]: Simulator::plan_lower_bound
    fn bounds_for_config(&self, profile: &FloorProfile, config: CommConfig) -> (f64, f64) {
        debug_assert_eq!(
            profile.format, config.format,
            "a floor profile answers only its own wire format"
        );
        let geom = self.group_geom();
        let i = config.algo.index();
        // Largest single-segment floor of a field-wise maximum: each
        // term is one real stage's partial wire time, so the max never
        // exceeds the true slowest stage (admissible).
        let largest_segment = |w: WireBytes| {
            let e = if w.edge > 0.0 {
                w.edge / self.cost.ring_bandwidth(geom, config)
            } else {
                0.0
            };
            let intra = if w.intra > 0.0 {
                w.intra / self.cost.intra_bandwidth(config)
            } else {
                0.0
            };
            let inter = if w.inter > 0.0 {
                w.inter / self.cost.inter_bandwidth(config)
            } else {
                0.0
            };
            e.max(intra).max(inter)
        };
        // Under the barriered discipline every configuration pays the
        // launch/fixed seconds serially. The priority stream hides
        // compute (and launches) under in-flight communication, so its
        // floor keeps only the communication terms — which never
        // exceed the fabric busy time that clamps
        // [`steady_state_total`](Simulator::steady_state_total) from
        // below, keeping the bound admissible.
        let mut tight = match config.sched {
            CommSched::Barriered => profile.fixed_s,
            CommSched::Priority => 0.0,
        } + self.cost.wire_time(profile.wire[i], geom, config);
        for stage_max in &profile.overlap_wire {
            tight += largest_segment(stage_max[i]);
        }
        // Per step, the cheaper of its two irreducible futures (dense
        // ReduceScatter half vs staying a sparse AllReduce) under this
        // configuration's rates; the plan keeps at least its most
        // expensive step's floor.
        let descendant = profile
            .durable
            .iter()
            .map(|d| {
                let dense = largest_segment(d.dense[i]);
                match d.sparse_bytes {
                    Some(bytes) => dense.min(bytes / self.cost.ring_bandwidth(geom, config)),
                    None => dense,
                }
            })
            .fold(0.0f64, f64::max);
        (tight, descendant)
    }

    /// A tight optimistic lower bound on
    /// [`time_plan`](Simulator::time_plan) for *this* plan under its
    /// configuration (including its collective algorithm): per step,
    /// the launch overhead plus the step's own bandwidth-only wire
    /// time, summed — every term [`time_plan`](Simulator::time_plan)
    /// also pays, with all
    /// latency, sync, efficiency-curve, and register-pressure terms
    /// dropped. The autotuner uses it to skip configurations (e.g. the
    /// LL protocol on a bandwidth-bound AllReduce, or the tree
    /// algorithm on a large payload) that provably cannot beat the
    /// incumbent.
    pub fn plan_time_floor(&self, plan: &ExecPlan) -> f64 {
        debug_assert!(
            plan.algo_stamps_consistent(),
            "bounds assume the steps carry the plan config's algorithm; \
             use ExecPlan::set_config to retag"
        );
        self.bounds_for_config(&self.floor_profile(plan, plan.config.format), plan.config)
            .0
    }

    /// An optimistic lower bound on [`time_plan`](Simulator::time_plan)
    /// that also under-estimates every schedule derivable from the
    /// plan's program by further transformations under the same
    /// configuration — the admissibility the autotuner's branch
    /// pruning relies on. Like
    /// [`plan_time_floor`](Simulator::plan_time_floor), the bound is
    /// taken under `plan.config.algo` and assumes the steps are
    /// stamped consistently (guaranteed by [`ExecPlan::set_config`]). The bound is the largest irreducible wire
    /// transfer in the plan under the configuration's algorithm (see
    /// [`floor_profile`](Simulator::floor_profile) for what counts as
    /// irreducible).
    pub fn plan_lower_bound(&self, plan: &ExecPlan) -> f64 {
        debug_assert!(
            plan.algo_stamps_consistent(),
            "bounds assume the steps carry the plan config's algorithm; \
             use ExecPlan::set_config to retag"
        );
        self.bounds_for_config(&self.floor_profile(plan, plan.config.format), plan.config)
            .1
    }
}

/// Configuration-independent lower-bound coefficients of one plan
/// under one wire format, per collective algorithm — see
/// [`Simulator::floor_profile`].
#[derive(Clone, Debug, PartialEq)]
pub struct FloorProfile {
    /// The wire format the coefficients were computed under.
    pub format: WireFormat,
    /// Launch/fixed seconds every configuration pays.
    pub fixed_s: f64,
    /// Summed wire bytes of the plan's non-overlapped communication,
    /// indexed by [`CollAlgo::index`].
    pub wire: [WireBytes; N_ALGOS],
    /// Field-wise stage maxima of each overlapped step's communication,
    /// indexed by [`CollAlgo::index`].
    pub overlap_wire: Vec<[WireBytes; N_ALGOS]>,
    /// One irreducible transfer per communication step — the wire bytes
    /// that survive every further transformation.
    pub durable: Vec<DurableFloor>,
}

/// The irreducible remainder of one communication step under every
/// descendant schedule: the dense wire its ReduceScatter half keeps
/// (indexed by [`CollAlgo::index`]), and — for a top-k AllReduce that
/// stays sparse — the sparse exchange's byte alternative, whichever is
/// cheaper under the configuration being bounded.
#[derive(Clone, Debug, PartialEq)]
pub struct DurableFloor {
    /// Dense-wire remainders per algorithm.
    pub dense: [WireBytes; N_ALGOS],
    /// Sparse-exchange alternative (bytes over the ring fabric), when
    /// the step may stay a sparse AllReduce.
    pub sparse_bytes: Option<f64>,
}

/// The machine simulator *is* the autotuner's evaluator: estimated
/// plan time as the cost, the per-plan time floor for configuration
/// pruning, and the irreducible-communication floor for branch
/// pruning.
impl PlanEvaluator for Simulator {
    fn evaluate(&self, plan: &ExecPlan) -> f64 {
        self.time_plan(plan).total
    }

    fn lower_bound(&self, plan: &ExecPlan) -> f64 {
        self.plan_time_floor(plan)
    }

    fn descendant_lower_bound(&self, plan: &ExecPlan) -> f64 {
        self.plan_lower_bound(plan)
    }

    fn lower_bound_sweep(&self, plan: &ExecPlan, configs: &[CommConfig]) -> (Vec<f64>, Vec<f64>) {
        // One pass over the steps per *distinct wire format* in the
        // sweep (each pass covers all three algorithms), then a few
        // divisions per configuration — this is what keeps pruning
        // cheaper than the evaluations it saves across the enlarged
        // `algo × protocol × channels × format` grid.
        let mut profiles: Vec<FloorProfile> = Vec::new();
        let mut tights = Vec::with_capacity(configs.len());
        let mut descendants = Vec::with_capacity(configs.len());
        for &config in configs {
            if !profiles.iter().any(|p| p.format == config.format) {
                profiles.push(self.floor_profile(plan, config.format));
            }
            let profile = profiles
                .iter()
                .find(|p| p.format == config.format)
                .expect("pushed above");
            let (tight, descendant) = self.bounds_for_config(profile, config);
            tights.push(tight);
            descendants.push(descendant);
        }
        (tights, descendants)
    }

    /// The cluster-shape fingerprint for plan-cache keying: the whole
    /// cost model (machine specification and every cost knob — all the
    /// floats that can move a plan's estimated time) plus the
    /// execution geometry. The spec holds `f64` bandwidths and
    /// latencies, so the stable `Debug` rendering is hashed rather
    /// than the (un-`Hash`able) fields directly.
    fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        format!("{:?}", self.cost).hash(&mut h);
        self.group_size.hash(&mut h);
        self.num_groups.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::ReduceOp;
    use coconet_core::{CollectiveStep, DType, FixedStep, KernelStep, Protocol, ScatterInfo};

    fn simulator() -> Simulator {
        Simulator::new(MachineSpec::dgx2_cluster(16), 256, 1)
    }

    #[test]
    fn geometry() {
        let s = simulator();
        let g = s.group_geom();
        assert_eq!(g.size, 256);
        assert_eq!(g.nodes_spanned, 16);
        assert_eq!(g.ranks_per_node, 16);
        assert!(!s.p2p_crosses_nodes(), "single group has no P2P");

        let pipe = Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16);
        assert_eq!(pipe.group_geom().nodes_spanned, 1);
        assert!(pipe.p2p_crosses_nodes());

        let half = Simulator::new(MachineSpec::dgx2_cluster(1), 8, 2);
        assert!(!half.p2p_crosses_nodes(), "both groups on one node");
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn oversubscription_panics() {
        Simulator::new(MachineSpec::dgx2_cluster(1), 16, 2);
    }

    #[test]
    fn plan_time_sums_steps() {
        let s = simulator();
        let plan = ExecPlan {
            name: "t".into(),
            steps: vec![
                Step::Kernel(KernelStep {
                    label: "k".into(),
                    bytes_read: 1 << 20,
                    bytes_written: 1 << 20,
                    flops: 1 << 18,
                    n_ops: 2,
                }),
                Step::Collective(CollectiveStep {
                    label: "ar".into(),
                    kind: CollKind::AllReduce,
                    op: ReduceOp::Sum,
                    algo: CollAlgo::Ring,
                    elems: 1 << 20,
                    dtype: DType::F16,
                    scattered: None,
                }),
                Step::Fixed(FixedStep {
                    label: "preproc".into(),
                    seconds: 25e-6,
                }),
            ],
            config: CommConfig {
                algo: CollAlgo::Ring,
                protocol: Protocol::Simple,
                channels: 16,
                format: WireFormat::Dense,
                ..CommConfig::default()
            },
        };
        let t = s.time_plan(&plan);
        assert_eq!(t.steps.len(), 3);
        let sum: f64 = t.steps.iter().map(|x| x.seconds).sum();
        assert!((t.total - sum).abs() < 1e-12);
        assert_eq!(t.category_total(StepCategory::Fixed), 25e-6);
        assert!(t.category_total(StepCategory::Compute) > 0.0);
        assert!(t.category_total(StepCategory::Communication) > 0.0);
    }

    #[test]
    fn lower_bound_is_admissible_and_positive_for_comm() {
        let s = simulator();
        for algo in CollAlgo::ALL {
            for protocol in coconet_core::Protocol::ALL {
                for (channels, sched) in [
                    (2usize, CommSched::Barriered),
                    (2, CommSched::Priority),
                    (16, CommSched::Barriered),
                    (16, CommSched::Priority),
                    (64, CommSched::Barriered),
                    (64, CommSched::Priority),
                ] {
                    let config = CommConfig {
                        algo,
                        protocol,
                        channels,
                        format: WireFormat::Dense,
                        sched,
                        ..CommConfig::default()
                    };
                    let mut plan = ExecPlan {
                        name: "lb".into(),
                        steps: vec![
                            Step::MatMul(coconet_core::MatMulStep {
                                label: "mm".into(),
                                m: 4096,
                                k: 1024,
                                n: 4096,
                                dtype: DType::F16,
                            }),
                            Step::Collective(CollectiveStep {
                                label: "ar".into(),
                                kind: CollKind::AllReduce,
                                op: ReduceOp::Sum,
                                algo: CollAlgo::Ring,
                                elems: 1 << 26,
                                dtype: DType::F16,
                                scattered: None,
                            }),
                        ],
                        config,
                    };
                    plan.set_config(config);
                    let descendant = s.plan_lower_bound(&plan);
                    let tight = s.plan_time_floor(&plan);
                    let t = s.time_plan(&plan).total;
                    assert!(descendant > 0.0, "comm plans have a positive floor");
                    assert!(
                        descendant <= tight,
                        "descendant bound {descendant} must be looser than {tight}"
                    );
                    assert!(tight <= t, "floor {tight} must not exceed actual {t}");
                    // And the evaluator trait agrees with the inherent
                    // API, including the one-pass sweep.
                    use coconet_core::PlanEvaluator as _;
                    assert_eq!(s.evaluate(&plan), t);
                    assert_eq!(s.lower_bound(&plan), tight);
                    assert_eq!(s.descendant_lower_bound(&plan), descendant);
                    let (tights, descendants) = s.lower_bound_sweep(&plan, &[config]);
                    assert_eq!(tights[0], tight);
                    assert_eq!(descendants[0], descendant);
                }
            }
        }
    }

    /// The tuner prices what runs: a Min/Max AllReduce has no sparse
    /// form (the runtime dispatch requires a sum), so under a top-k
    /// configuration it must cost exactly as the dense wire — both in
    /// the step time and in the pruning floors.
    #[test]
    fn non_sum_allreduce_never_priced_sparse() {
        let s = simulator();
        let step = |op| {
            Step::Collective(CollectiveStep {
                label: "maxreduce".into(),
                kind: CollKind::AllReduce,
                op,
                algo: CollAlgo::Ring,
                elems: 1 << 24,
                dtype: DType::F32,
                scattered: None,
            })
        };
        let topk =
            CommConfig::default().with_format(coconet_core::WireFormat::TopK { k_permille: 10 });
        let dense = CommConfig::default();
        for op in [coconet_core::ReduceOp::Max, coconet_core::ReduceOp::Min] {
            assert_eq!(
                s.time_step(&step(op), topk).seconds,
                s.time_step(&step(op), dense).seconds,
                "{op:?} must run (and be priced) dense"
            );
            let plan = |config| ExecPlan {
                name: "t".into(),
                steps: vec![step(op)],
                config,
            };
            assert_eq!(
                s.plan_time_floor(&plan(topk)),
                s.plan_time_floor(&plan(dense)),
            );
            assert_eq!(
                s.plan_lower_bound(&plan(topk)),
                s.plan_lower_bound(&plan(dense)),
            );
        }
        // A sum AllReduce under the same configuration IS sparse.
        let sum = step(coconet_core::ReduceOp::Sum);
        assert!(s.time_step(&sum, topk).seconds < s.time_step(&sum, dense).seconds);
    }

    /// The steady-state (priority-streamed) discipline: a plan with
    /// both compute and communication pipelines them across iteration
    /// boundaries, so its per-iteration time drops below the barriered
    /// serial sum but never below either resource's busy time. Plans
    /// with only one kind of work gain nothing.
    #[test]
    fn priority_stream_overlaps_iterations() {
        let s = simulator();
        let kernel = Step::Kernel(KernelStep {
            label: "k".into(),
            bytes_read: 1 << 28,
            bytes_written: 1 << 28,
            flops: 1 << 24,
            n_ops: 2,
        });
        let ar = Step::Collective(CollectiveStep {
            label: "ar".into(),
            kind: CollKind::AllReduce,
            op: ReduceOp::Sum,
            algo: CollAlgo::Ring,
            elems: 1 << 26,
            dtype: DType::F16,
            scattered: None,
        });
        let plan = |steps: Vec<Step>, sched| ExecPlan {
            name: "ss".into(),
            steps,
            config: CommConfig::default().with_sched(sched),
        };
        // Two layers in the training shape — the backward computes,
        // then the trailing gradient syncs: layer 1's sync drains on
        // the fabric while the next iteration's compute (blocked only
        // on layer 0's earlier sync) proceeds. A single layer has
        // nothing to overlap with — its sync is consumed immediately.
        let both = vec![kernel.clone(), kernel.clone(), ar.clone(), ar.clone()];
        let barriered = s.time_plan(&plan(both.clone(), CommSched::Barriered));
        let streamed = s.time_plan(&plan(both, CommSched::Priority));
        // Per-step timings are discipline-independent; only the
        // iteration-level composition changes.
        for (b, p) in barriered.steps.iter().zip(&streamed.steps) {
            assert_eq!(b.seconds, p.seconds);
        }
        let compute = barriered.category_total(StepCategory::Compute);
        let comm = barriered.category_total(StepCategory::Communication);
        assert!(
            streamed.total < barriered.total,
            "stream {} !< barrier {}",
            streamed.total,
            barriered.total
        );
        assert!(streamed.total >= compute.max(comm) - 1e-12);
        // The floors stay admissible under the streamed discipline.
        let mut p = plan(
            vec![
                Step::Kernel(KernelStep {
                    label: "k".into(),
                    bytes_read: 1 << 28,
                    bytes_written: 1 << 28,
                    flops: 1 << 24,
                    n_ops: 2,
                }),
                Step::Collective(CollectiveStep {
                    label: "ar".into(),
                    kind: CollKind::AllReduce,
                    op: ReduceOp::Sum,
                    algo: CollAlgo::Ring,
                    elems: 1 << 26,
                    dtype: DType::F16,
                    scattered: None,
                }),
            ],
            CommSched::Priority,
        );
        p.set_config(p.config);
        assert!(s.plan_time_floor(&p) <= s.time_plan(&p).total);
        assert!(s.plan_lower_bound(&p) <= s.plan_time_floor(&p));
        // Comm-only and compute-only plans degenerate to the serial sum.
        let comm_only = vec![ar];
        assert_eq!(
            s.time_plan(&plan(comm_only.clone(), CommSched::Priority))
                .total,
            s.time_plan(&plan(comm_only, CommSched::Barriered)).total,
        );
        let compute_only = vec![kernel];
        assert_eq!(
            s.time_plan(&plan(compute_only.clone(), CommSched::Priority))
                .total,
            s.time_plan(&plan(compute_only, CommSched::Barriered)).total,
        );
    }

    #[test]
    fn scattered_collective_adds_overhead() {
        let s = simulator();
        let cfg = CommConfig::default();
        let base = CollectiveStep {
            label: "ar".into(),
            kind: CollKind::AllReduce,
            op: ReduceOp::Sum,
            algo: CollAlgo::Ring,
            elems: 334_000_000,
            dtype: DType::F16,
            scattered: None,
        };
        let t_dense = s.time_step(&Step::Collective(base.clone()), cfg).seconds;
        let mut scat = base;
        scat.scattered = Some(ScatterInfo {
            n_tensors: 360,
            n_buckets: 334_000_000 / 1024,
        });
        let t_scat = s.time_step(&Step::Collective(scat), cfg).seconds;
        assert!(t_scat > t_dense);
        // Table 2: the overhead is ~2 %.
        assert!((t_scat - t_dense) / t_dense < 0.05);
    }
}
