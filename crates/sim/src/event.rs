//! A deterministic discrete-event engine for task graphs with
//! exclusive resources.
//!
//! The fine-grained overlap of §5.3 is a pipeline: MatMul produces
//! chunks on the GPU's compute units while the AllReduce streams
//! earlier chunks over the network, synchronized by spin-locks. This
//! engine computes the makespan of such pipelines: tasks with
//! dependencies, each bound to one resource (compute pipe, NVLink
//! fabric, InfiniBand fabric), resources executing one task at a time.

use std::collections::HashMap;

/// Identifies a task in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

/// Identifies a resource in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

#[derive(Clone, Debug)]
struct Task {
    label: String,
    resource: ResourceId,
    duration: f64,
    deps: Vec<TaskId>,
}

/// A dependency graph of fixed-duration tasks over exclusive resources.
///
/// # Examples
///
/// ```
/// use coconet_sim::TaskGraph;
///
/// let mut g = TaskGraph::new();
/// let net = g.add_resource("net");
/// let gpu = g.add_resource("gpu");
/// let produce = g.add_task("matmul-chunk0", gpu, 2.0, &[]);
/// let send = g.add_task("allreduce-chunk0", net, 3.0, &[produce]);
/// let timeline = g.schedule();
/// assert_eq!(timeline.finish_time(send), 5.0);
/// assert_eq!(timeline.makespan(), 5.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    resources: Vec<String>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Registers a resource (a compute pipe or a network fabric).
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId(self.resources.len() - 1)
    }

    /// Adds a task bound to `resource` with the given dependencies.
    ///
    /// # Panics
    ///
    /// Panics if `resource` or any dependency id is unknown, or if
    /// `duration` is negative/NaN.
    pub fn add_task(
        &mut self,
        label: impl Into<String>,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(resource.0 < self.resources.len(), "unknown resource");
        assert!(
            duration >= 0.0 && duration.is_finite(),
            "duration must be a non-negative finite number"
        );
        for d in deps {
            assert!(d.0 < self.tasks.len(), "unknown dependency {:?}", d);
        }
        self.tasks.push(Task {
            label: label.into(),
            resource,
            duration,
            deps: deps.to_vec(),
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Computes the schedule: tasks start as soon as their dependencies
    /// finish and their resource is free; among simultaneously ready
    /// tasks on one resource, insertion order wins (deterministic).
    pub fn schedule(&self) -> Timeline {
        let n = self.tasks.len();
        let mut start = vec![f64::NAN; n];
        let mut finish = vec![f64::NAN; n];
        let mut scheduled = vec![false; n];
        let mut resource_free: HashMap<usize, f64> = HashMap::new();
        let mut remaining = n;

        while remaining > 0 {
            // Among tasks whose deps are all scheduled, pick the one
            // that can start earliest (ties: lowest id — insertion
            // order, which is the spin-lock chunk order of §5.3).
            let mut best: Option<(f64, usize)> = None;
            for (i, t) in self.tasks.iter().enumerate() {
                if scheduled[i] {
                    continue;
                }
                if t.deps.iter().any(|d| !scheduled[d.0]) {
                    continue;
                }
                let ready = t.deps.iter().map(|d| finish[d.0]).fold(0.0f64, f64::max);
                let free = resource_free.get(&t.resource.0).copied().unwrap_or(0.0);
                let s = ready.max(free);
                let better = match best {
                    None => true,
                    Some((bs, bi)) => s < bs || (s == bs && i < bi),
                };
                if better {
                    best = Some((s, i));
                }
            }
            let (s, i) = best.expect("dependency cycle in task graph");
            let t = &self.tasks[i];
            start[i] = s;
            finish[i] = s + t.duration;
            resource_free.insert(t.resource.0, finish[i]);
            scheduled[i] = true;
            remaining -= 1;
        }

        let makespan = finish.iter().copied().fold(0.0f64, f64::max);
        Timeline {
            start,
            finish,
            makespan,
            labels: self.tasks.iter().map(|t| t.label.clone()).collect(),
            resources: self.tasks.iter().map(|t| t.resource).collect(),
        }
    }

    /// The length of the longest dependency chain (ignoring resource
    /// contention) — a lower bound on any schedule's makespan.
    pub fn critical_path(&self) -> f64 {
        let mut longest = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let dep_max = t.deps.iter().map(|d| longest[d.0]).fold(0.0f64, f64::max);
            longest[i] = dep_max + t.duration;
        }
        longest.iter().copied().fold(0.0f64, f64::max)
    }
}

/// The computed schedule of a [`TaskGraph`].
#[derive(Clone, Debug)]
pub struct Timeline {
    start: Vec<f64>,
    finish: Vec<f64>,
    makespan: f64,
    labels: Vec<String>,
    resources: Vec<ResourceId>,
}

impl Timeline {
    /// When `task` starts.
    pub fn start_time(&self, task: TaskId) -> f64 {
        self.start[task.0]
    }

    /// When `task` finishes.
    pub fn finish_time(&self, task: TaskId) -> f64 {
        self.finish[task.0]
    }

    /// Completion time of the whole graph.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Busy time (sum of task durations) on a resource.
    pub fn busy_time(&self, resource: ResourceId) -> f64 {
        (0..self.start.len())
            .filter(|&i| self.resources[i] == resource)
            .map(|i| self.finish[i] - self.start[i])
            .sum()
    }

    /// `(label, start, finish)` rows, ordered by start time — the Gantt
    /// chart of the pipeline.
    pub fn rows(&self) -> Vec<(String, f64, f64)> {
        let mut rows: Vec<(String, f64, f64)> = (0..self.start.len())
            .map(|i| (self.labels[i].clone(), self.start[i], self.finish[i]))
            .collect();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_chain() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task("a", r, 1.0, &[]);
        let b = g.add_task("b", r, 2.0, &[a]);
        let c = g.add_task("c", r, 3.0, &[b]);
        let t = g.schedule();
        assert_eq!(t.start_time(a), 0.0);
        assert_eq!(t.finish_time(c), 6.0);
        assert_eq!(t.makespan(), 6.0);
        assert_eq!(g.critical_path(), 6.0);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_run_in_parallel() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1");
        let r2 = g.add_resource("r2");
        let a = g.add_task("a", r1, 5.0, &[]);
        let b = g.add_task("b", r2, 3.0, &[]);
        let t = g.schedule();
        assert_eq!(t.start_time(a), 0.0);
        assert_eq!(t.start_time(b), 0.0);
        assert_eq!(t.makespan(), 5.0);
        assert!(g.critical_path() <= t.makespan());
    }

    #[test]
    fn resource_contention_serializes() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let _a = g.add_task("a", r, 5.0, &[]);
        let b = g.add_task("b", r, 3.0, &[]);
        let t = g.schedule();
        assert_eq!(t.start_time(b), 5.0, "FIFO on the shared resource");
        assert_eq!(t.makespan(), 8.0);
        assert_eq!(t.busy_time(r), 8.0);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // 4 chunks through produce (1.0 each) -> consume (1.5 each):
        // classic pipeline: makespan = 1.0 + 4 * 1.5 = 7.0.
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let net = g.add_resource("net");
        let mut prev_consume: Option<TaskId> = None;
        let mut last = None;
        for c in 0..4 {
            let prod = g.add_task(format!("mm{c}"), gpu, 1.0, &[]);
            let deps: Vec<TaskId> = match prev_consume {
                Some(pc) => vec![prod, pc],
                None => vec![prod],
            };
            let cons = g.add_task(format!("ar{c}"), net, 1.5, &deps);
            prev_consume = Some(cons);
            last = Some(cons);
        }
        let t = g.schedule();
        assert_eq!(t.finish_time(last.unwrap()), 7.0);
    }

    #[test]
    fn rows_are_sorted_by_start() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        g.add_task("slow", r, 2.0, &[]);
        g.add_task("later", r, 1.0, &[]);
        let rows = g.schedule().rows();
        assert_eq!(rows[0].0, "slow");
        assert_eq!(rows[1].1, 2.0);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut g = TaskGraph::new();
        g.add_task("x", ResourceId(3), 1.0, &[]);
    }

    fn arb_graph() -> impl Strategy<Value = TaskGraph> {
        // Random DAG: each task depends on a subset of earlier tasks.
        (
            1usize..4,
            prop::collection::vec((0.0f64..5.0, any::<u64>()), 1..20),
        )
            .prop_map(|(n_res, specs)| {
                let mut g = TaskGraph::new();
                let rs: Vec<ResourceId> = (0..n_res)
                    .map(|i| g.add_resource(format!("r{i}")))
                    .collect();
                let mut ids: Vec<TaskId> = Vec::new();
                for (i, (dur, bits)) in specs.into_iter().enumerate() {
                    let deps: Vec<TaskId> = ids
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| bits & (1 << (j % 60)) != 0)
                        .map(|(_, &id)| id)
                        .collect();
                    let r = rs[i % rs.len()];
                    ids.push(g.add_task(format!("t{i}"), r, dur, &deps));
                }
                g
            })
    }

    proptest! {
        /// The makespan is never below the critical path and never
        /// above the serial sum.
        #[test]
        fn makespan_bounds(g in arb_graph()) {
            let t = g.schedule();
            let serial: f64 = (0..g.len())
                .map(|i| g.tasks[i].duration)
                .sum();
            prop_assert!(t.makespan() >= g.critical_path() - 1e-9);
            prop_assert!(t.makespan() <= serial + 1e-9);
        }

        /// No two tasks overlap on the same resource, and tasks start
        /// only after their dependencies finish.
        #[test]
        fn schedule_is_feasible(g in arb_graph()) {
            let t = g.schedule();
            for i in 0..g.len() {
                for d in &g.tasks[i].deps {
                    prop_assert!(t.start[i] >= t.finish[d.0] - 1e-9);
                }
                for j in 0..i {
                    if g.tasks[i].resource == g.tasks[j].resource {
                        let disjoint = t.finish[i] <= t.start[j] + 1e-9
                            || t.finish[j] <= t.start[i] + 1e-9;
                        prop_assert!(disjoint, "tasks {i} and {j} overlap");
                    }
                }
            }
        }

        /// Scheduling is deterministic.
        #[test]
        fn deterministic(g in arb_graph()) {
            let t1 = g.schedule();
            let t2 = g.schedule();
            prop_assert_eq!(t1.makespan(), t2.makespan());
        }
    }
}
