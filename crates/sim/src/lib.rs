//! # coconet-sim
//!
//! Performance simulator for the CoCoNet reproduction: a calibrated
//! analytic cost model of the paper's testbed (16 DGX-2 nodes) plus a
//! discrete-event engine for the chunk-level pipelines the `overlap`
//! transformation creates.
//!
//! The paper measures wall-clock on real V100 clusters; this crate
//! substitutes a machine model that reproduces the first-order effects
//! separating the schedules (launch counts, fusion's memory-traffic
//! savings, ring volumes/latencies per NCCL protocol, shared
//! InfiniBand, fine-grained overlap). See `DESIGN.md` for the
//! calibration constants.
//!
//! # Examples
//!
//! ```
//! use coconet_core::{CollAlgo, CollKind, CollectiveStep, CommConfig, DType, ReduceOp, Step};
//! use coconet_sim::Simulator;
//! use coconet_topology::MachineSpec;
//!
//! let sim = Simulator::new(MachineSpec::paper_testbed(), 256, 1);
//! let ar = Step::Collective(CollectiveStep {
//!     label: "allreduce".into(),
//!     kind: CollKind::AllReduce,
//!     op: ReduceOp::Sum,
//!     algo: CollAlgo::Ring,
//!     elems: 1 << 26,
//!     dtype: DType::F16,
//!     scattered: None,
//! });
//! let t = sim.time_step(&ar, CommConfig::default());
//! assert!(t.seconds > 0.0);
//! ```

#![warn(missing_docs)]

mod cost;
mod event;
mod multitenant;
mod overlap;
mod protocol;
mod simulator;

pub use cost::{CostKnobs, CostModel, GroupGeom, WireBytes};
pub use event::{ResourceId, TaskGraph, TaskId, Timeline};
pub use multitenant::{
    contention_report, simulate_shared, MultiTenantReport, ShareOutcome, TenantJob,
};
pub use overlap::{
    simulate_overlap, simulate_overlap_with_tiles, tile_count, OverlapSim, StageClass,
};
pub use protocol::{channel_sweep, default_protocol, params as protocol_params, ProtocolParams};
pub use simulator::{DurableFloor, FloorProfile, PlanTime, Simulator, StepCategory, StepTime};
