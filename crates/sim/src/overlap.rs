//! Chunk-level simulation of overlapped pipelines (§5.3, Figures 7/9).
//!
//! An overlapped step launches every stage's kernel once; buffer tiles
//! stream through the stages, synchronized by spin-locks. The MatMul is
//! scheduled to produce chunks in ring order, so the collective starts
//! as soon as the first tile is ready; intra-node collectives, P2P over
//! InfiniBand, and the destination group's AllGather occupy *different
//! fabrics* and therefore genuinely run concurrently (Figure 7b).

use coconet_core::{CollKind, CommConfig, OverlapStage, OverlappedStep};

use crate::{CostModel, GroupGeom, TaskGraph};

/// Number of buffer tiles an overlapped pipeline streams.
///
/// NCCL's buffer is ~16 MB per channel aggregate; the paper's Figure 9
/// uses 16 MB tiles. We clamp to keep at least 2 tiles (no overlap is
/// possible with 1) and at most 64 (spin-lock overhead dominates past
/// that).
pub fn tile_count(payload_bytes: u64) -> usize {
    const TILE_BYTES: u64 = 16 * 1024 * 1024;
    ((payload_bytes / TILE_BYTES).max(2) as usize).min(64)
}

/// Per-tile spin-lock wake/wait cost (§5.3's "efficient fine-grained
/// spin-lock on a memory buffer").
const SPINLOCK_COST: f64 = 1.0e-6;

/// Fabric-class attribution of one pipeline stage — the simulator-side
/// counterpart of the trace profiler's per-kind accounting, used by the
/// overlap report to split busy time into compute vs. communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageClass {
    /// A compute (MatMul) stage.
    Compute,
    /// An intra-node collective, tagged with its kind.
    Collective(CollKind),
    /// P2P traffic over the inter-node fabric.
    InterNode,
}

/// The outcome of simulating an overlapped pipeline.
#[derive(Clone, Debug)]
pub struct OverlapSim {
    /// Pipeline makespan in seconds (including stage launches).
    pub total: f64,
    /// Per-stage busy time, `(label, seconds)`.
    pub stage_busy: Vec<(String, f64)>,
    /// Per-stage fabric class, aligned with
    /// [`stage_busy`](OverlapSim::stage_busy).
    pub stage_classes: Vec<StageClass>,
    /// The total time the same stages would take executed back-to-back
    /// (the unoverlapped sequential cost).
    pub sequential: f64,
}

impl OverlapSim {
    /// Busy seconds summed over the communication stages (collectives
    /// and inter-node P2P).
    #[must_use]
    pub fn comm_busy(&self) -> f64 {
        self.class_busy(|c| *c != StageClass::Compute)
    }

    /// Busy seconds summed over the compute stages.
    #[must_use]
    pub fn compute_busy(&self) -> f64 {
        self.class_busy(|c| *c == StageClass::Compute)
    }

    /// Busy seconds summed over stages whose class satisfies `pred`.
    fn class_busy(&self, pred: impl Fn(&StageClass) -> bool) -> f64 {
        self.stage_busy
            .iter()
            .zip(&self.stage_classes)
            .filter(|(_, c)| pred(c))
            .map(|((_, t), _)| *t)
            .sum()
    }
}

/// Simulates an [`OverlappedStep`] on the machine: builds the tile-level
/// task graph and schedules it.
///
/// `stage_geom`/`stage_crosses` give the group geometry per stage (the
/// pipeline-parallel case has the AllGather running on the *next*
/// group).
pub fn simulate_overlap(
    cost: &CostModel,
    step: &OverlappedStep,
    geom: GroupGeom,
    crosses_nodes: bool,
    config: CommConfig,
) -> OverlapSim {
    simulate_overlap_with_tiles(cost, step, geom, crosses_nodes, config, None)
}

/// [`simulate_overlap`] with an explicit tile count (the §5.3 buffer
/// tile size is a tunable; this is the chunk-granularity ablation's
/// entry point).
pub fn simulate_overlap_with_tiles(
    cost: &CostModel,
    step: &OverlappedStep,
    geom: GroupGeom,
    crosses_nodes: bool,
    config: CommConfig,
    tiles_override: Option<usize>,
) -> OverlapSim {
    // Total per-stage durations (excluding their single launch).
    let launch = cost.machine().gpu.launch_overhead;
    let stage_times: Vec<(String, f64)> = step
        .stages
        .iter()
        .map(|s| {
            let t = match s {
                OverlapStage::MatMul(mm) => cost.matmul_time(mm),
                OverlapStage::Collective(c) => cost.collective_time(
                    c.kind,
                    c.elems,
                    c.dtype,
                    geom,
                    config
                        .with_algo(c.algo)
                        .with_format(CostModel::step_wire_format(config.format, c.op)),
                ),
                OverlapStage::FusedCollective(f) => {
                    cost.fused_collective_time(f, geom, config.with_algo(f.algo))
                }
                OverlapStage::SendRecv(sr) => cost.send_recv_time(sr, geom, crosses_nodes, config),
            };
            (s.label().to_string(), (t - launch).max(0.0))
        })
        .collect();

    // Tiles: sized from the first stage's payload.
    let payload = match &step.stages[0] {
        OverlapStage::MatMul(mm) => mm.m * mm.n * mm.dtype.size_bytes() as u64,
        OverlapStage::Collective(c) => c.elems * c.dtype.size_bytes() as u64,
        OverlapStage::FusedCollective(f) => f.elems * f.dtype.size_bytes() as u64,
        OverlapStage::SendRecv(sr) => sr.elems_per_rank * sr.dtype.size_bytes() as u64,
    };
    let tiles = tiles_override.unwrap_or_else(|| tile_count(payload)).max(1);

    // Build the tile pipeline: stage s tile t depends on stage s-1
    // tile t (data) and stage s tile t-1 (the stage's kernel processes
    // tiles in order).
    let mut g = TaskGraph::new();
    let resources: Vec<_> = step
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let name = match s {
                OverlapStage::MatMul(_) => format!("compute{i}"),
                OverlapStage::SendRecv(_) => format!("inter{i}"),
                _ => format!("fabric{i}"),
            };
            g.add_resource(name)
        })
        .collect();

    let mut prev_stage_tiles: Vec<Vec<crate::TaskId>> = Vec::new();
    for (s, (label, total)) in stage_times.iter().enumerate() {
        let per_tile = total / tiles as f64 + SPINLOCK_COST;
        let mut tile_tasks = Vec::with_capacity(tiles);
        #[allow(clippy::needless_range_loop)] // t indexes the previous stage's tiles too
        for t in 0..tiles {
            let mut deps = Vec::new();
            if let Some(prev) = tile_tasks.last() {
                deps.push(*prev);
            }
            if s > 0 {
                deps.push(prev_stage_tiles[s - 1][t]);
            }
            // The stage's launch is charged to its first tile.
            let dur = if t == 0 { per_tile + launch } else { per_tile };
            tile_tasks.push(g.add_task(format!("{label}[{t}]"), resources[s], dur, &deps));
        }
        prev_stage_tiles.push(tile_tasks);
    }

    let timeline = g.schedule();
    let stage_busy = stage_times
        .iter()
        .enumerate()
        .map(|(i, (label, _))| (label.clone(), timeline.busy_time(resources[i])))
        .collect();
    let stage_classes = step.stages.iter().map(classify).collect();
    let sequential = stage_times.iter().map(|(_, t)| t + launch).sum();
    OverlapSim {
        total: timeline.makespan(),
        stage_busy,
        stage_classes,
        sequential,
    }
}

/// The fabric class of a stage, via the three stage predicates below.
fn classify(stage: &OverlapStage) -> StageClass {
    if is_inter_node(stage) {
        StageClass::InterNode
    } else if is_collective(stage) {
        StageClass::Collective(stage_kind(stage).expect("collective stages carry a kind"))
    } else {
        StageClass::Compute
    }
}

/// Convenience: is this stage communication over the inter-node fabric?
pub(crate) fn is_inter_node(stage: &OverlapStage) -> bool {
    matches!(stage, OverlapStage::SendRecv(_))
}

/// Is this a collective stage (for breakdown reporting)?
pub(crate) fn is_collective(stage: &OverlapStage) -> bool {
    matches!(
        stage,
        OverlapStage::Collective(_) | OverlapStage::FusedCollective(_)
    )
}

/// Categorize a collective stage kind for reporting.
pub(crate) fn stage_kind(stage: &OverlapStage) -> Option<CollKind> {
    match stage {
        OverlapStage::Collective(c) => Some(c.kind),
        OverlapStage::FusedCollective(_) => Some(CollKind::AllReduce),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::ReduceOp;
    use coconet_core::{
        CollAlgo, CollectiveStep, CommConfig, DType, FusedCollectiveStep, MatMulStep, Protocol,
        SendRecvStep,
    };
    use coconet_topology::MachineSpec;

    fn cost() -> CostModel {
        CostModel::new(MachineSpec::dgx2_cluster(16))
    }

    fn geom() -> GroupGeom {
        GroupGeom {
            size: 16,
            nodes_spanned: 1,
            ranks_per_node: 16,
        }
    }

    fn cfg() -> CommConfig {
        CommConfig {
            format: coconet_core::WireFormat::Dense,
            algo: CollAlgo::Ring,
            protocol: Protocol::Simple,
            channels: 16,
            ..CommConfig::default()
        }
    }

    /// The Figure 1 scenario: MatMul overlapped with AllReduce.
    fn matmul_ar_step(b: u64) -> OverlappedStep {
        OverlappedStep {
            label: "ol(MM,AR)".into(),
            stages: vec![
                OverlapStage::MatMul(MatMulStep {
                    label: "mm".into(),
                    m: b * 1024,
                    k: 768,
                    n: 3072,
                    dtype: DType::F16,
                }),
                OverlapStage::FusedCollective(FusedCollectiveStep {
                    label: "fusedAR".into(),
                    algo: CollAlgo::Ring,
                    elems: b * 1024 * 3072,
                    dtype: DType::F16,
                    extra_bytes_read: 0,
                    extra_bytes_written: 0,
                    flops: 0,
                    embedded_scalar_allreduces: 0,
                    n_fused_ops: 3,
                    scattered: None,
                }),
            ],
        }
    }

    #[test]
    fn overlap_beats_sequential() {
        let c = cost();
        let sim = simulate_overlap(&c, &matmul_ar_step(64), geom(), false, cfg());
        assert!(
            sim.total < sim.sequential,
            "overlap {} !< sequential {}",
            sim.total,
            sim.sequential
        );
        // Overlap cannot beat the slower stage alone.
        let slowest = sim
            .stage_busy
            .iter()
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        assert!(sim.total >= slowest);
        // Figure 1's claim: most of the MatMul hides under the AllReduce;
        // the pipeline is within ~35 % of the slower stage.
        assert!(
            sim.total < 1.35 * slowest,
            "total={}, slowest={slowest}",
            sim.total
        );
    }

    #[test]
    fn three_stage_pipeline_uses_disjoint_fabrics() {
        // Figure 7b: RS -> sliced P2P -> AG across fabrics.
        let c = cost();
        let elems = 8u64 * 2048 * 12288;
        let step = OverlappedStep {
            label: "ol(RS,P2P,AG)".into(),
            stages: vec![
                OverlapStage::Collective(CollectiveStep {
                    label: "rs".into(),
                    kind: CollKind::ReduceScatter,
                    op: ReduceOp::Sum,
                    algo: CollAlgo::Ring,
                    elems,
                    dtype: DType::F16,
                    scattered: None,
                }),
                OverlapStage::SendRecv(SendRecvStep {
                    label: "p2p".into(),
                    elems_per_rank: elems / 16,
                    dtype: DType::F16,
                    extra_bytes_read: 0,
                    flops: 0,
                    n_fused_ops: 2,
                }),
                OverlapStage::Collective(CollectiveStep {
                    label: "ag".into(),
                    kind: CollKind::AllGather,
                    op: ReduceOp::Sum,
                    algo: CollAlgo::Ring,
                    elems,
                    dtype: DType::F16,
                    scattered: None,
                }),
            ],
        };
        let sim = simulate_overlap(&c, &step, geom(), true, cfg());
        assert!(sim.total < sim.sequential);
        // With three fabrics, the pipeline approaches the slowest stage.
        let slowest = sim
            .stage_busy
            .iter()
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        assert!(sim.total < 1.5 * slowest);
    }

    /// The class breakdown attributes each stage to its fabric: the
    /// Figure 7b pipeline is one ReduceScatter, one inter-node P2P leg,
    /// and one AllGather — all communication, no compute — while the
    /// Figure 1 step splits into one compute and one collective stage.
    #[test]
    fn stage_classes_split_compute_from_communication() {
        let c = cost();
        let mm_ar = simulate_overlap(&c, &matmul_ar_step(64), geom(), false, cfg());
        assert_eq!(
            mm_ar.stage_classes,
            vec![
                StageClass::Compute,
                StageClass::Collective(CollKind::AllReduce)
            ]
        );
        assert!(mm_ar.compute_busy() > 0.0);
        assert!(mm_ar.comm_busy() > 0.0);
        let total: f64 = mm_ar.stage_busy.iter().map(|(_, t)| t).sum();
        assert!((mm_ar.compute_busy() + mm_ar.comm_busy() - total).abs() < 1e-12);

        let p2p = OverlappedStep {
            label: "ol(RS,P2P,AG)".into(),
            stages: vec![
                OverlapStage::Collective(CollectiveStep {
                    label: "rs".into(),
                    kind: CollKind::ReduceScatter,
                    op: ReduceOp::Sum,
                    algo: CollAlgo::Ring,
                    elems: 1 << 24,
                    dtype: DType::F16,
                    scattered: None,
                }),
                OverlapStage::SendRecv(SendRecvStep {
                    label: "p2p".into(),
                    elems_per_rank: 1 << 20,
                    dtype: DType::F16,
                    extra_bytes_read: 0,
                    flops: 0,
                    n_fused_ops: 2,
                }),
            ],
        };
        let sim = simulate_overlap(&c, &p2p, geom(), true, cfg());
        assert_eq!(
            sim.stage_classes,
            vec![
                StageClass::Collective(CollKind::ReduceScatter),
                StageClass::InterNode
            ]
        );
        assert!((sim.compute_busy()).abs() < 1e-12);
    }

    #[test]
    fn tile_count_clamped() {
        assert_eq!(tile_count(1024), 2);
        assert_eq!(tile_count(64 * 1024 * 1024), 4);
        assert_eq!(tile_count(u64::MAX / 2), 64);
    }

    #[test]
    fn small_payloads_overlap_less() {
        let c = cost();
        let small = simulate_overlap(&c, &matmul_ar_step(1), geom(), false, cfg());
        let large = simulate_overlap(&c, &matmul_ar_step(64), geom(), false, cfg());
        let saving_small = small.sequential / small.total;
        let saving_large = large.sequential / large.total;
        assert!(saving_large > saving_small);
    }
}
