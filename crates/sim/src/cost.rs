//! Analytic cost models for kernels and collectives.
//!
//! Every figure in the paper is a *relative* comparison of schedules on
//! the same machine; the model reproduces the first-order terms that
//! separate them: kernel launch counts, memory traffic (what fusion
//! saves), the ring collective's `2(k-1)/k` volume and per-step
//! latencies (what protocol/channel choice trades), the shared
//! inter-node fabric (what sliced P2P saves), and register-pressure
//! penalties of fused kernels (why fusion loses at small sizes,
//! §6.1.1).

use coconet_compress::{
    sparse_all_reduce_rounds, sparse_all_reduce_wire_bytes, sparse_beats_dense,
    switch_all_reduce_wire_bytes, QUANT_WORD_BYTES,
};
use coconet_core::{
    CollAlgo, CollKind, CommConfig, DType, FusedCollectiveStep, KernelStep, MatMulStep,
    SendRecvStep, WireFormat,
};
use coconet_topology::MachineSpec;

use crate::protocol;

/// Per-rank wire bytes of one collective under one algorithm, split
/// by fabric segment. Ring and tree algorithms are bottlenecked by
/// their slowest logical edge (`edge`); the hierarchical algorithm's
/// phases occupy the intra-node NVLink fabric (`intra`) and the node
/// leader's InfiniBand NICs (`inter`) separately. Dividing each field
/// by the matching effective bandwidth and summing gives the
/// bandwidth-only transfer time — the admissible floor the autotuner
/// prunes with.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireBytes {
    /// Bytes crossing the flat ring/tree bottleneck edge.
    pub edge: f64,
    /// Bytes moved over intra-node NVLink (hierarchical phases).
    pub intra: f64,
    /// Bytes a node leader moves over InfiniBand (hierarchical).
    pub inter: f64,
}

impl WireBytes {
    /// Field-wise sum.
    pub fn accumulate(&mut self, other: WireBytes) {
        self.edge += other.edge;
        self.intra += other.intra;
        self.inter += other.inter;
    }

    /// Field-wise maximum.
    pub fn max(self, other: WireBytes) -> WireBytes {
        WireBytes {
            edge: self.edge.max(other.edge),
            intra: self.intra.max(other.intra),
            inter: self.inter.max(other.inter),
        }
    }
}

/// Geometry of the process group a collective runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupGeom {
    /// Ranks in the group.
    pub size: usize,
    /// Distinct nodes the group spans.
    pub nodes_spanned: usize,
    /// Ranks of the group residing on each node (= senders sharing one
    /// node's NICs during a cross-node P2P).
    pub ranks_per_node: usize,
}

/// Tunable second-order knobs, with defaults calibrated in DESIGN.md.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostKnobs {
    /// Achievable fraction of link bandwidth (protocol overheads,
    /// congestion).
    pub fabric_efficiency: f64,
    /// Achievable fraction of HBM bandwidth for streaming kernels.
    pub memory_efficiency: f64,
    /// Peak fraction a well-shaped large GEMM reaches on tensor cores.
    pub matmul_efficiency: f64,
    /// Per-collective-call bootstrap/synchronization cost, multiplied
    /// by log2(group size).
    pub call_sync_per_log_rank: f64,
    /// Launch-equivalents of latency added per operation fused into a
    /// collective kernel (register pressure limits thread-level
    /// parallelism, §6.1.1). Multiplied by the kernel launch overhead
    /// and the fused op count.
    pub fused_reg_pressure: f64,
    /// Seconds per scattered-tensor bucket (warp-level index lookup,
    /// §5.4).
    pub scattered_bucket_cost: f64,
    /// Seconds per distinct scattered tensor (offset precalculation).
    pub scattered_tensor_cost: f64,
    /// Per-extra-channel setup cost of a striped collective: each lane
    /// beyond the first adds its own send/receive descriptor posting
    /// and completion tracking per call. Calibrated against the
    /// runtime's measured multi-channel AllReduce sweep (the
    /// `ablation_channels` trajectory row): wider striping overlaps
    /// better but never for free, so the tuner's channel sweep has a
    /// genuine optimum instead of saturating at the grid edge. Added
    /// on top of the bandwidth floor, which stays channel-count-free —
    /// the beam-pruning lower bound remains admissible.
    pub channel_setup: f64,
    /// Per-direction processing cost of the in-network aggregation
    /// switch (`CollAlgo::Switch`): packet parse, the integer fold in
    /// the dataplane pipeline, and the multicast fan-out setup. Paid
    /// once on the way up and once on the way down — constant in the
    /// worker count, which is the whole point, but large enough that
    /// the ring/tree win until their per-hop latency chains outgrow it.
    pub switch_process: f64,
}

impl Default for CostKnobs {
    fn default() -> CostKnobs {
        CostKnobs {
            fabric_efficiency: 0.85,
            memory_efficiency: 0.80,
            matmul_efficiency: 0.70,
            call_sync_per_log_rank: 8.0e-6,
            fused_reg_pressure: 0.4,
            scattered_bucket_cost: 1.0e-9,
            scattered_tensor_cost: 1.0e-7,
            channel_setup: 2.0e-6,
            switch_process: 20.0e-6,
        }
    }
}

/// The analytic cost model over a [`MachineSpec`].
#[derive(Clone, Debug)]
pub struct CostModel {
    machine: MachineSpec,
    knobs: CostKnobs,
}

impl CostModel {
    /// A cost model with default knobs.
    pub fn new(machine: MachineSpec) -> CostModel {
        CostModel {
            machine,
            knobs: CostKnobs::default(),
        }
    }

    /// Overrides the tuning knobs.
    pub fn with_knobs(mut self, knobs: CostKnobs) -> CostModel {
        self.knobs = knobs;
        self
    }

    /// The machine being modeled.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    fn launch(&self) -> f64 {
        self.machine.gpu.launch_overhead
    }

    fn mem_bw(&self) -> f64 {
        self.machine.gpu.mem_bw * self.knobs.memory_efficiency
    }

    /// Time for a (possibly fused) pointwise kernel.
    pub fn kernel_time(&self, step: &KernelStep) -> f64 {
        let bytes = (step.bytes_read + step.bytes_written) as f64;
        let t_mem = bytes / self.mem_bw();
        let t_fp = step.flops as f64 / self.machine.gpu.fp32_flops;
        self.launch() + t_mem.max(t_fp)
    }

    /// Time for a GEMM, with an efficiency curve that degrades for
    /// small or skinny shapes (tile-level parallelism and short
    /// contraction dimensions underutilize tensor cores).
    pub fn matmul_time(&self, step: &MatMulStep) -> f64 {
        let flops = step.flops() as f64;
        let peak = match step.dtype {
            DType::F16 => self.machine.gpu.fp16_flops,
            DType::F32 => self.machine.gpu.fp32_flops,
        };
        // Tile parallelism: a V100 wants >= 2 waves of 128x128 tiles.
        let tiles = (step.m as f64 / 128.0).ceil() * (step.n as f64 / 128.0).ceil();
        let waves_needed = 2.0 * self.machine.gpu.sm_count as f64;
        let util_tiles = (tiles / waves_needed).min(1.0);
        // Contraction depth: short K cannot hide the MMA pipeline.
        let util_k = step.k as f64 / (step.k as f64 + 64.0);
        let eff = self.knobs.matmul_efficiency * util_tiles.max(0.05) * util_k;
        let t_compute = flops / (peak * eff);
        let t_mem = step.bytes() as f64 / self.mem_bw();
        self.launch() + t_compute.max(t_mem)
    }

    /// Ring steps a collective performs over a `k`-rank group.
    fn ring_steps(kind: CollKind, k: f64) -> f64 {
        match kind {
            CollKind::AllReduce => 2.0 * (k - 1.0),
            CollKind::ReduceScatter
            | CollKind::AllGather
            | CollKind::Broadcast
            | CollKind::Reduce => k - 1.0,
        }
    }

    /// Binomial-tree rounds of a collective over a `k`-rank group.
    /// Each round ships the whole payload over one link pair, which is
    /// what makes trees bandwidth-poor but latency-rich. Only the
    /// AllReduce has a tree form the runtime executes; every other
    /// kind resolves to the ring via
    /// [`effective_algo`](Self::effective_algo) before reaching here.
    fn tree_rounds(kind: CollKind, k: f64) -> f64 {
        match kind {
            CollKind::AllReduce => 2.0 * k.log2().ceil(),
            CollKind::ReduceScatter
            | CollKind::AllGather
            | CollKind::Broadcast
            | CollKind::Reduce => {
                unreachable!("non-AllReduce tree collectives are costed as the ring")
            }
        }
    }

    /// The algorithm a collective kind actually runs under. The cost
    /// model only prices algorithms the runtime executes, so a tuned
    /// configuration's predicted time is the time of what runs:
    /// Broadcast/Reduce have a single root-based implementation (the
    /// algorithm dimension does not apply to them), there is no tree
    /// ReduceScatter/AllGather (NCCL builds none either), and on a
    /// single-node group the two-level hierarchical algorithm *is* the
    /// flat intra-node ring — all of those resolve to the ring. The
    /// aggregation switch serves only whole AllReduces (there is no
    /// switch ReduceScatter/AllGather — the dataplane folds and
    /// multicasts, it cannot scatter), so those resolve to the ring
    /// under `Switch` exactly as under `Tree`.
    fn effective_algo(algo: CollAlgo, kind: CollKind, group: GroupGeom) -> CollAlgo {
        match (algo, kind) {
            (_, CollKind::Broadcast | CollKind::Reduce) => CollAlgo::Ring,
            (CollAlgo::Tree | CollAlgo::Switch, CollKind::ReduceScatter | CollKind::AllGather) => {
                CollAlgo::Ring
            }
            (CollAlgo::Hierarchical, _) if group.nodes_spanned <= 1 => CollAlgo::Ring,
            _ => algo,
        }
    }

    /// The wire format a collective kind actually runs under — the
    /// cost-model twin of the runtime dispatch, so the tuner always
    /// prices exactly what runs:
    ///
    /// - Broadcast/Reduce ship dense (they are root-based fan-outs off
    ///   the gradient path; the runtime does not compress them);
    /// - the sparse top-k exchange exists only for the AllReduce, and
    ///   only while it is strictly smaller than the dense ring volume
    ///   (the automatic dense switchover) — everything else resolves
    ///   to dense;
    /// - FP16 applies to AllReduce/ReduceScatter/AllGather.
    pub fn effective_wire_format(
        format: WireFormat,
        kind: CollKind,
        elems: u64,
        dtype: DType,
        group: GroupGeom,
    ) -> WireFormat {
        match (format, kind) {
            (_, CollKind::Broadcast | CollKind::Reduce) => WireFormat::Dense,
            (WireFormat::TopK { .. }, CollKind::AllReduce)
                if sparse_beats_dense(elems, group.size as u64, format.k_for(elems), dtype) =>
            {
                format
            }
            (WireFormat::TopK { .. }, _) => WireFormat::Dense,
            (f, _) => f,
        }
    }

    /// Whether a (resolved) format runs the sparse exchange for `kind`.
    fn sparse_active(format: WireFormat, kind: CollKind) -> bool {
        matches!(format, WireFormat::TopK { .. }) && kind == CollKind::AllReduce
    }

    /// The wire format a *fused* collective runs under: top-k cannot
    /// fuse (no RS/AG phase to compute between), FP16 and dense pass
    /// through.
    pub fn fused_wire_format(format: WireFormat) -> WireFormat {
        match format {
            WireFormat::TopK { .. } => WireFormat::Dense,
            f => f,
        }
    }

    /// The wire format a plain collective step runs under given its
    /// reduction operator: the sparse exchange only *sums* (a dropped
    /// entry is additively neutral, not min/max-neutral), so non-sum
    /// steps resolve top-k to dense — the cost-model twin of the
    /// runtime dispatch's `op == Sum` requirement, keeping "the tuner
    /// prices what runs" true for Min/Max AllReduces.
    pub fn step_wire_format(format: WireFormat, op: coconet_core::ReduceOp) -> WireFormat {
        if op == coconet_core::ReduceOp::Sum {
            format
        } else {
            Self::fused_wire_format(format)
        }
    }

    /// The encode/decode compute cost of a (resolved) wire format: two
    /// codec kernel launches (the conversions are separate kernels, not
    /// free — the term that makes dense win latency-bound small
    /// messages) plus a constant number of streaming passes over the
    /// payload at memory bandwidth. Never part of the bandwidth floor —
    /// codecs only add time above the irreducible wire transfer, which
    /// keeps the pruning bounds admissible.
    fn codec_time(&self, format: WireFormat, elems: u64, dtype: DType, group: GroupGeom) -> f64 {
        let n = elems as f64;
        let ds = dtype.size_bytes() as f64;
        match format {
            WireFormat::Dense => 0.0,
            // Already-FP16 payloads need no conversion; F32 pays an
            // encode and a decode kernel (read + write each).
            WireFormat::Fp16 => {
                if dtype == DType::F16 {
                    0.0
                } else {
                    2.0 * self.launch() + 2.0 * n * (ds + 2.0) / self.mem_bw()
                }
            }
            // A selection kernel, a densification kernel, and one
            // merge/re-sparsify kernel per exchange round (the rounds
            // cannot fuse across communication); selection and the
            // residual update stream the gradient a few times, each
            // round's merge touches two k-entry chunks.
            WireFormat::TopK { .. } => {
                let k = format.k_for(elems) as f64;
                let rounds = sparse_all_reduce_rounds(group.size as u64) as f64;
                (2.0 + rounds) * self.launch()
                    + (4.0 * n * ds + rounds * 3.0 * k * 8.0) / self.mem_bw()
            }
        }
    }

    /// The worker-side codec of the switch path: one quantize kernel
    /// (read the payload, write `i32` words) before the send and one
    /// dequantize kernel after the multicast lands. Like every codec
    /// term it lives *above* the bandwidth floor, keeping the pruning
    /// bounds admissible.
    fn switch_codec_time(&self, elems: u64, dtype: DType) -> f64 {
        let n = elems as f64;
        let ds = dtype.size_bytes() as f64;
        let w = QUANT_WORD_BYTES as f64;
        2.0 * self.launch() + 2.0 * n * (ds + w) / self.mem_bw()
    }

    /// Effective intra-node bandwidth under a configuration: NVLink at
    /// the protocol's line-rate fraction (channels split and re-merge
    /// on the same links, so they cancel intra-node).
    pub fn intra_bandwidth(&self, config: CommConfig) -> f64 {
        let proto = protocol::params(config.protocol);
        self.machine.interconnect.nvlink_bw_per_gpu * proto.bw_factor * self.knobs.fabric_efficiency
    }

    /// Effective inter-node bandwidth available to one node's sender(s)
    /// under a configuration: each channel binds to one NIC, so the
    /// leader drives `min(channels × NIC, node aggregate)`.
    pub fn inter_bandwidth(&self, config: CommConfig) -> f64 {
        let proto = protocol::params(config.protocol);
        let ic = &self.machine.interconnect;
        let ch = config.channels.max(1) as f64;
        (ch * ic.ib_bw_per_nic()).min(ic.ib_bw_per_node)
            * proto.bw_factor
            * self.knobs.fabric_efficiency
    }

    /// The per-rank wire bytes one collective moves under `algo` and
    /// `format`, split by fabric segment (see [`WireBytes`]). This is
    /// the configuration-independent numerator of the bandwidth floor;
    /// one walk over a plan's steps computes it for all three
    /// algorithms at once, which is what lets [`lower_bound_sweep`]
    /// answer the whole `algo × protocol × channels` slice of one
    /// format's grid from a single pass.
    ///
    /// The format resolves through
    /// [`effective_wire_format`](Self::effective_wire_format) first:
    /// FP16 scales every payload to two bytes per element, and an
    /// active top-k AllReduce replaces the topology's pattern entirely
    /// with the sparse exchange volume (identical for every algorithm —
    /// the `(index, value)` rounds run over whatever fabric the ring
    /// would).
    ///
    /// [`lower_bound_sweep`]: coconet_core::PlanEvaluator::lower_bound_sweep
    pub fn collective_wire(
        &self,
        algo: CollAlgo,
        kind: CollKind,
        elems: u64,
        dtype: DType,
        group: GroupGeom,
        format: WireFormat,
    ) -> WireBytes {
        let algo = Self::effective_algo(algo, kind, group);
        let format = Self::effective_wire_format(format, kind, elems, dtype, group);
        let k = group.size as f64;
        if group.size <= 1 {
            return WireBytes::default();
        }
        if Self::sparse_active(format, kind) {
            return WireBytes {
                edge: sparse_all_reduce_wire_bytes(elems, group.size as u64, format.k_for(elems))
                    as f64,
                ..WireBytes::default()
            };
        }
        let bytes = format.payload_bytes(elems, dtype) as f64;
        match algo {
            CollAlgo::Ring => WireBytes {
                edge: Self::ring_steps(kind, k) * bytes / k,
                ..WireBytes::default()
            },
            CollAlgo::Tree => WireBytes {
                edge: Self::tree_rounds(kind, k) * bytes,
                ..WireBytes::default()
            },
            // The switch wire is fixed-point `i32` words both ways —
            // `2·n·4` bytes per worker whatever the payload dtype or
            // wire format (the quantizer replaces the format codec),
            // and *constant in the group size*: every worker talks to
            // the switch, never to `k−1` peers.
            CollAlgo::Switch => WireBytes {
                edge: switch_all_reduce_wire_bytes(elems) as f64,
                ..WireBytes::default()
            },
            // `effective_algo` resolved single-node groups to Ring,
            // so this arm always has a genuine two-level split.
            CollAlgo::Hierarchical => {
                let m = group.ranks_per_node.max(1) as f64;
                let n = group.nodes_spanned as f64;
                // AllReduce runs both phases twice (reduce + gather
                // directions); ReduceScatter/AllGather once. Other
                // kinds resolved to the ring in `effective_algo`.
                let phases = match kind {
                    CollKind::AllReduce => 2.0,
                    _ => 1.0,
                };
                WireBytes {
                    edge: 0.0,
                    intra: phases * (m - 1.0) / m * bytes,
                    inter: phases * (n - 1.0) / n * bytes,
                }
            }
        }
    }

    /// The bandwidth-only transfer time of `wire` under a
    /// configuration: each fabric segment at its effective rate.
    pub fn wire_time(&self, wire: WireBytes, group: GroupGeom, config: CommConfig) -> f64 {
        let mut t = 0.0;
        if wire.edge > 0.0 {
            t += wire.edge / self.ring_bandwidth(group, config);
        }
        if wire.intra > 0.0 {
            t += wire.intra / self.intra_bandwidth(config);
        }
        if wire.inter > 0.0 {
            t += wire.inter / self.inter_bandwidth(config);
        }
        t
    }

    /// Effective aggregate ring bandwidth under a configuration: each
    /// channel gets a slice of the GPU's NVLink bandwidth; rings that
    /// span nodes are bottlenecked by their channel's NIC share.
    pub fn ring_bandwidth(&self, group: GroupGeom, config: CommConfig) -> f64 {
        let proto = protocol::params(config.protocol);
        let ch = config.channels.max(1) as f64;
        let ic = &self.machine.interconnect;
        let intra = ic.nvlink_bw_per_gpu / ch;
        let edge_bw = if group.nodes_spanned > 1 {
            let inter = ic.ib_bw_per_nic().min(ic.ib_bw_per_node / ch);
            intra.min(inter)
        } else {
            intra
        };
        ch * edge_bw * proto.bw_factor * self.knobs.fabric_efficiency
    }

    /// The wire-transfer term of [`collective_time`] alone — no
    /// launch, base-latency, per-hop latency, or sync terms — under the
    /// configuration's algorithm. This is the irreducible cost a
    /// schedule transformation cannot remove, which makes it the
    /// building block of the autotuner's beam-pruning lower bound.
    ///
    /// [`collective_time`]: CostModel::collective_time
    pub fn collective_bandwidth_floor(
        &self,
        kind: CollKind,
        elems: u64,
        dtype: DType,
        group: GroupGeom,
        config: CommConfig,
    ) -> f64 {
        let wire = self.collective_wire(config.algo, kind, elems, dtype, group, config.format);
        self.wire_time(wire, group, config)
    }

    /// Time for a collective over `group` under the configuration's
    /// algorithm (ring / tree / hierarchical — §5.1's logical
    /// topologies, promoted to a tuned dimension).
    pub fn collective_time(
        &self,
        kind: CollKind,
        elems: u64,
        dtype: DType,
        group: GroupGeom,
        config: CommConfig,
    ) -> f64 {
        let config = config
            .with_algo(Self::effective_algo(config.algo, kind, group))
            .with_format(Self::effective_wire_format(
                config.format,
                kind,
                elems,
                dtype,
                group,
            ));
        let k = group.size as f64;
        if group.size <= 1 {
            return self.launch();
        }
        let proto = protocol::params(config.protocol);
        let t_bw = self.collective_bandwidth_floor(kind, elems, dtype, group, config);
        // The switch path replaces the wire-format codec with its own
        // fixed-point quantize/dequantize kernels (an active sparse
        // exchange replaces the topology entirely, switch included, so
        // it keeps the top-k codec).
        let t_codec =
            if config.algo == CollAlgo::Switch && !Self::sparse_active(config.format, kind) {
                self.switch_codec_time(elems, dtype)
            } else {
                self.codec_time(config.format, elems, dtype, group)
            };

        let t_lat = if Self::sparse_active(config.format, kind) {
            // The sparse exchange's pairwise/ring rounds; later rounds
            // cross nodes on multi-node groups, like the tree's.
            let alpha = if group.nodes_spanned > 1 {
                (proto.hop_latency_intra + proto.hop_latency_inter) / 2.0
            } else {
                proto.hop_latency_intra
            };
            sparse_all_reduce_rounds(group.size as u64) as f64 * alpha
        } else {
            match config.algo {
                // Ring: per-step hop latency, averaged over the ring's
                // intra- and inter-node edges.
                CollAlgo::Ring => {
                    let inter_edges = if group.nodes_spanned > 1 {
                        group.nodes_spanned as f64
                    } else {
                        0.0
                    };
                    let alpha = (proto.hop_latency_intra * (k - inter_edges)
                        + proto.hop_latency_inter * inter_edges)
                        / k;
                    Self::ring_steps(kind, k) * alpha
                }
                // Tree: half the rounds cross nodes in the worst case.
                CollAlgo::Tree => {
                    let alpha = if group.nodes_spanned > 1 {
                        (proto.hop_latency_intra + proto.hop_latency_inter) / 2.0
                    } else {
                        proto.hop_latency_intra
                    };
                    Self::tree_rounds(kind, k) * alpha
                }
                // Switch: one hop up, one multicast hop down — the
                // latency chain is *constant in the group size* — plus
                // the dataplane's per-direction processing cost. This
                // is the term whose constancy produces the worker-count
                // crossover against the ring's 2(k−1) hops.
                CollAlgo::Switch => {
                    let alpha = if group.nodes_spanned > 1 {
                        proto.hop_latency_inter
                    } else {
                        proto.hop_latency_intra
                    };
                    2.0 * (alpha + self.knobs.switch_process)
                }
                // Hierarchical: intra-node ring hops plus the leader
                // exchange's inter-node hops, per phase (single-node
                // groups were resolved to Ring by `effective_algo`).
                CollAlgo::Hierarchical => {
                    let m = group.ranks_per_node.max(1) as f64;
                    let n = group.nodes_spanned as f64;
                    let phases = match kind {
                        CollKind::AllReduce => 2.0,
                        _ => 1.0,
                    };
                    phases
                        * ((m - 1.0) * proto.hop_latency_intra
                            + (n - 1.0) * proto.hop_latency_inter)
                }
            }
        };

        let sync = self.knobs.call_sync_per_log_rank * k.log2();
        // Lane setup: each stripe beyond the first posts its own
        // descriptors. Kept out of the bandwidth floor so pruning
        // stays admissible.
        let t_channels = self.knobs.channel_setup * (config.channels.max(1) - 1) as f64;
        self.launch() + proto.base_latency + sync + t_lat + t_bw + t_codec + t_channels
    }

    /// Tree-algorithm AllReduce time (§5.1's second logical topology):
    /// a binomial reduce + broadcast in `2·log2(k)` rounds. Each round
    /// moves the *whole* payload, so trees lose to rings on bandwidth
    /// but win on latency at small sizes and large rank counts.
    /// Convenience wrapper over [`collective_time`] with the
    /// configuration forced to [`CollAlgo::Tree`].
    ///
    /// [`collective_time`]: CostModel::collective_time
    pub fn tree_all_reduce_time(
        &self,
        elems: u64,
        dtype: DType,
        group: GroupGeom,
        config: CommConfig,
    ) -> f64 {
        self.collective_time(
            CollKind::AllReduce,
            elems,
            dtype,
            group,
            config.with_algo(CollAlgo::Tree),
        )
    }

    /// Extra cost of walking scattered tensors through bucket tables
    /// (§5.4). Near zero relative to the collective itself (Table 2).
    pub fn scattered_overhead(&self, n_tensors: u64, n_buckets: u64) -> f64 {
        n_buckets as f64 * self.knobs.scattered_bucket_cost
            + n_tensors as f64 * self.knobs.scattered_tensor_cost
    }

    /// Time for a fused collective (§5.2): AllReduce-volume
    /// communication with computation inlined between the
    /// ReduceScatter and AllGather phases.
    ///
    /// The fused computation's state traffic runs concurrently with the
    /// wire transfer (registers carry the payload), so the data term is
    /// the max of network and memory time. Register pressure inflates
    /// the latency term — the effect that makes fusion lose at small
    /// sizes (§6.1.1).
    pub fn fused_collective_time(
        &self,
        step: &FusedCollectiveStep,
        group: GroupGeom,
        config: CommConfig,
    ) -> f64 {
        // The fused kernel computes *between* the ReduceScatter and
        // AllGather phases, which the gather-based sparse exchange does
        // not have — a top-k configuration runs fused collectives on
        // the dense wire (FP16 still applies).
        let config = config.with_format(Self::fused_wire_format(config.format));
        let base = self.collective_time(CollKind::AllReduce, step.elems, step.dtype, group, config);
        let launch = self.launch();
        let comm = base - launch;
        // Register pressure caps thread-level parallelism: a fixed
        // per-fused-op latency tax, independent of message size — which
        // is what makes fusion lose at small sizes (§6.1.1) while
        // costing nothing measurable at large ones.
        let reg_penalty = launch * self.knobs.fused_reg_pressure * step.n_fused_ops as f64;

        // State traffic: per-rank bytes at memory bandwidth, overlapped
        // with the wire time.
        let slice_payload =
            2.0 * (step.elems * step.dtype.size_bytes() as u64) as f64 / group.size as f64;
        let t_mem = ((step.extra_bytes_read + step.extra_bytes_written) as f64 + slice_payload)
            / self.mem_bw();
        let t_fp = step.flops as f64 / self.machine.gpu.fp32_flops;
        let t_data = comm.max(t_mem).max(t_fp);

        // Embedded scalar reductions reuse established connections: a
        // tree-depth latency each (§5.2 "Tensor Reduction").
        let proto = protocol::params(config.protocol);
        let t_norms = step.embedded_scalar_allreduces as f64
            * (group.size as f64).log2().max(1.0)
            * proto.hop_latency_intra
            * 2.0;

        let scattered = step
            .scattered
            .map(|s| self.scattered_overhead(s.n_tensors, s.n_buckets))
            .unwrap_or(0.0);

        launch + t_data + reg_penalty + t_norms + scattered
    }

    /// Time for a P2P transfer from every rank of a group to its peer
    /// in the next group (§4). When the transfer crosses nodes, all
    /// `ranks_per_node` senders share the node's aggregate IB
    /// bandwidth — which is why Megatron-LM's replicated P2P costs
    /// `group_size ×` the sliced P2P's traffic (Figure 7).
    pub fn send_recv_time(
        &self,
        step: &SendRecvStep,
        group: GroupGeom,
        crosses_nodes: bool,
        config: CommConfig,
    ) -> f64 {
        let proto = protocol::params(config.protocol);
        let bytes = (step.elems_per_rank * step.dtype.size_bytes() as u64) as f64;
        let ic = &self.machine.interconnect;
        let t_wire = if crosses_nodes {
            let senders = group.ranks_per_node.max(1) as f64;
            let node_bw = ic.ib_bw_per_node * self.knobs.fabric_efficiency * proto.bw_factor;
            bytes * senders / node_bw + ic.ib_latency
        } else {
            let bw = ic.nvlink_bw_per_gpu * self.knobs.fabric_efficiency * proto.bw_factor;
            bytes / bw + ic.nvlink_latency
        };
        let t_mem = step.extra_bytes_read as f64 / self.mem_bw();
        let t_fp = step.flops as f64 / self.machine.gpu.fp32_flops;
        self.launch() + t_wire.max(t_mem).max(t_fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::Protocol;

    fn model() -> CostModel {
        CostModel::new(MachineSpec::dgx2_cluster(16))
    }

    fn intra_group() -> GroupGeom {
        GroupGeom {
            size: 16,
            nodes_spanned: 1,
            ranks_per_node: 16,
        }
    }

    fn world_group() -> GroupGeom {
        GroupGeom {
            size: 256,
            nodes_spanned: 16,
            ranks_per_node: 16,
        }
    }

    fn cfg(p: Protocol, ch: usize) -> CommConfig {
        CommConfig {
            algo: CollAlgo::Ring,
            protocol: p,
            channels: ch,
            format: WireFormat::Dense,
            ..CommConfig::default()
        }
    }

    #[test]
    fn kernel_time_scales_with_bytes() {
        let m = model();
        let small = m.kernel_time(&KernelStep {
            label: "s".into(),
            bytes_read: 1024,
            bytes_written: 1024,
            flops: 256,
            n_ops: 1,
        });
        let large = m.kernel_time(&KernelStep {
            label: "l".into(),
            bytes_read: 1 << 30,
            bytes_written: 1 << 30,
            flops: 1 << 28,
            n_ops: 1,
        });
        assert!(large > small);
        // Small kernels are launch-bound.
        assert!(small < 2.0 * m.machine().gpu.launch_overhead);
        // A 2 GiB streaming kernel takes ~3 ms at 720 GB/s.
        assert!((0.002..0.006).contains(&large), "large = {large}");
    }

    #[test]
    fn matmul_efficiency_curve() {
        let m = model();
        // Large square GEMM: time should approach flops/(peak*eff).
        let big = MatMulStep {
            label: "big".into(),
            m: 8192,
            k: 8192,
            n: 8192,
            dtype: DType::F16,
        };
        let t_big = m.matmul_time(&big);
        let ideal = big.flops() as f64 / (125e12 * 0.70);
        assert!(
            t_big >= ideal && t_big < ideal * 1.4,
            "t={t_big}, ideal={ideal}"
        );
        // Skinny-K GEMM (model-parallel slice) is less efficient per flop.
        let skinny = MatMulStep {
            label: "skinny".into(),
            m: 8192,
            k: 64,
            n: 3072,
            dtype: DType::F16,
        };
        let t_skinny = m.matmul_time(&skinny);
        let flops_rate_big = big.flops() as f64 / t_big;
        let flops_rate_skinny = skinny.flops() as f64 / t_skinny;
        assert!(flops_rate_skinny < flops_rate_big);
    }

    #[test]
    fn allreduce_volume_and_protocols() {
        let m = model();
        let elems = 1u64 << 28; // 512 MB FP16
        let t_simple = m.collective_time(
            CollKind::AllReduce,
            elems,
            DType::F16,
            intra_group(),
            cfg(Protocol::Simple, 16),
        );
        // Expected: 2*(15/16)*512MB / (150e9*0.85) ~ 7.9 ms.
        assert!((0.005..0.012).contains(&t_simple), "t = {t_simple}");
        // LL halves bandwidth: roughly double at large sizes.
        let t_ll = m.collective_time(
            CollKind::AllReduce,
            elems,
            DType::F16,
            intra_group(),
            cfg(Protocol::LL, 16),
        );
        assert!(t_ll > 1.7 * t_simple);
        // At tiny sizes LL wins.
        let small = 1u64 << 10;
        let s_ll = m.collective_time(
            CollKind::AllReduce,
            small,
            DType::F16,
            intra_group(),
            cfg(Protocol::LL, 2),
        );
        let s_simple = m.collective_time(
            CollKind::AllReduce,
            small,
            DType::F16,
            intra_group(),
            cfg(Protocol::Simple, 2),
        );
        assert!(s_ll < s_simple);
    }

    #[test]
    fn rs_plus_ag_equals_ar_bandwidth() {
        let m = model();
        let elems = 1u64 << 28;
        let c = cfg(Protocol::Simple, 16);
        let ar = m.collective_time(CollKind::AllReduce, elems, DType::F16, world_group(), c);
        let rs = m.collective_time(CollKind::ReduceScatter, elems, DType::F16, world_group(), c);
        let ag = m.collective_time(CollKind::AllGather, elems, DType::F16, world_group(), c);
        // RS + AG volume equals AR volume; the split only pays an extra
        // call's fixed costs.
        assert!(rs + ag > ar);
        assert!((rs + ag - ar) / ar < 0.05);
    }

    #[test]
    fn multinode_is_nic_bound() {
        let m = model();
        let elems = 1u64 << 28;
        let c = cfg(Protocol::Simple, 8);
        let t1 = m.collective_time(CollKind::AllReduce, elems, DType::F16, intra_group(), c);
        let t16 = m.collective_time(CollKind::AllReduce, elems, DType::F16, world_group(), c);
        // Cross-node rings run at ~100 GB/s per node instead of 150.
        assert!(t16 > 1.2 * t1, "t16={t16}, t1={t1}");
    }

    #[test]
    fn fused_collective_register_pressure_hurts_small_sizes() {
        let m = model();
        let g = world_group();
        let c = cfg(Protocol::LL, 2);
        let small_fused = FusedCollectiveStep {
            label: "f".into(),
            algo: CollAlgo::Ring,
            elems: 1 << 12,
            dtype: DType::F16,
            extra_bytes_read: 1 << 12,
            extra_bytes_written: 1 << 12,
            flops: 1 << 12,
            embedded_scalar_allreduces: 0,
            n_fused_ops: 10,
            scattered: None,
        };
        let t_fused = m.fused_collective_time(&small_fused, g, c);
        let t_ar = m.collective_time(CollKind::AllReduce, 1 << 12, DType::F16, g, c);
        // At tiny sizes the fused kernel is slower than AR + a cheap
        // separate kernel (the §6.1.1 observation).
        let t_separate = t_ar
            + m.kernel_time(&KernelStep {
                label: "opt".into(),
                bytes_read: 1 << 12,
                bytes_written: 1 << 12,
                flops: 1 << 12,
                n_ops: 10,
            });
        assert!(t_fused > t_separate);
    }

    #[test]
    fn fused_collective_wins_at_large_sizes() {
        let m = model();
        let g = world_group();
        let c = cfg(Protocol::Simple, 16);
        let elems = 1u64 << 30;
        let slice = elems / 256;
        // Adam-like state traffic: ~28 bytes per slice element.
        let fused = FusedCollectiveStep {
            label: "f".into(),
            algo: CollAlgo::Ring,
            elems,
            dtype: DType::F16,
            extra_bytes_read: slice * 14,
            extra_bytes_written: slice * 14,
            flops: slice * 8,
            embedded_scalar_allreduces: 0,
            n_fused_ops: 10,
            scattered: None,
        };
        let t_fused = m.fused_collective_time(&fused, g, c);
        let t_ar = m.collective_time(CollKind::AllReduce, elems, DType::F16, g, c);
        // Baseline: AR + full replicated optimizer kernel over all elems.
        let t_baseline = t_ar
            + m.kernel_time(&KernelStep {
                label: "opt".into(),
                bytes_read: elems * 14,
                bytes_written: elems * 14,
                flops: elems * 8,
                n_ops: 10,
            });
        // Fused is close to the AR-only upper bound, far below baseline.
        assert!(t_fused < 1.1 * t_ar, "fused={t_fused}, ar={t_ar}");
        assert!(t_baseline > 1.5 * t_fused);
    }

    #[test]
    fn replicated_p2p_costs_group_size_times_more() {
        let m = model();
        let g = intra_group();
        let c = cfg(Protocol::Simple, 8);
        let elems = 8 * 2048 * 12288u64; // GPT-3-sized activation
        let replicated = SendRecvStep {
            label: "p2p".into(),
            elems_per_rank: elems,
            dtype: DType::F16,
            extra_bytes_read: 0,
            flops: 0,
            n_fused_ops: 0,
        };
        let sliced = SendRecvStep {
            elems_per_rank: elems / 16,
            ..replicated.clone()
        };
        let t_repl = m.send_recv_time(&replicated, g, true, c);
        let t_sliced = m.send_recv_time(&sliced, g, true, c);
        assert!(t_repl > 10.0 * t_sliced, "repl={t_repl}, sliced={t_sliced}");
    }

    #[test]
    fn scattered_overhead_is_small() {
        let m = model();
        // BERT-340M: 360 tensors, ~334M elements -> ~326k buckets.
        let overhead = m.scattered_overhead(360, 334_000_000 / 1024);
        assert!(overhead < 1e-3, "overhead = {overhead}");
        assert!(overhead > 0.0);
    }

    fn algo_cfg(algo: CollAlgo) -> CommConfig {
        CommConfig {
            algo,
            protocol: Protocol::Simple,
            channels: 16,
            format: WireFormat::Dense,
            ..CommConfig::default()
        }
    }

    #[test]
    fn algorithm_size_crossover() {
        // Tree wins latency-bound small messages; ring wins
        // bandwidth-bound large ones; hierarchical sits between on a
        // multi-node group (§5.1's logical-topology tradeoff).
        let m = model();
        let g = world_group();
        let time = |algo, elems| {
            m.collective_time(CollKind::AllReduce, elems, DType::F16, g, algo_cfg(algo))
        };
        let small = 1u64 << 10;
        let t_ring = time(CollAlgo::Ring, small);
        let t_tree = time(CollAlgo::Tree, small);
        let t_hier = time(CollAlgo::Hierarchical, small);
        assert!(t_tree < t_hier, "small: tree {t_tree} !< hier {t_hier}");
        assert!(t_hier < t_ring, "small: hier {t_hier} !< ring {t_ring}");

        let large = 1u64 << 28;
        let t_ring = time(CollAlgo::Ring, large);
        let t_tree = time(CollAlgo::Tree, large);
        let t_hier = time(CollAlgo::Hierarchical, large);
        assert!(t_ring < t_hier, "large: ring {t_ring} !< hier {t_hier}");
        assert!(t_hier < t_tree, "large: hier {t_hier} !< tree {t_tree}");
    }

    #[test]
    fn hierarchical_degenerates_to_ring_on_one_node() {
        let m = model();
        let g = intra_group();
        for elems in [1u64 << 10, 1 << 20, 1 << 28] {
            for kind in [
                CollKind::AllReduce,
                CollKind::ReduceScatter,
                CollKind::AllGather,
            ] {
                let ring = m.collective_time(kind, elems, DType::F16, g, algo_cfg(CollAlgo::Ring));
                let hier =
                    m.collective_time(kind, elems, DType::F16, g, algo_cfg(CollAlgo::Hierarchical));
                assert_eq!(ring, hier, "kind {kind}, elems {elems}");
            }
        }
    }

    #[test]
    fn wire_matches_bandwidth_floor_per_algo() {
        // The floor is exactly the wire bytes at the effective rates —
        // the invariant the autotuner's pruning admissibility rests on.
        let m = model();
        let g = world_group();
        for algo in CollAlgo::ALL {
            for ch in [2usize, 16, 64] {
                let config = CommConfig {
                    algo,
                    protocol: Protocol::LL128,
                    channels: ch,
                    format: WireFormat::Dense,
                    ..CommConfig::default()
                };
                let elems = 1u64 << 22;
                let wire = m.collective_wire(
                    algo,
                    CollKind::AllReduce,
                    elems,
                    DType::F16,
                    g,
                    config.format,
                );
                let floor =
                    m.collective_bandwidth_floor(CollKind::AllReduce, elems, DType::F16, g, config);
                assert!((m.wire_time(wire, g, config) - floor).abs() < 1e-15);
                let t = m.collective_time(CollKind::AllReduce, elems, DType::F16, g, config);
                assert!(floor <= t, "{algo}: floor {floor} !<= time {t}");
            }
        }
    }

    #[test]
    fn unimplemented_algorithm_kinds_cost_as_ring() {
        // The cost model only prices algorithms the runtime executes:
        // there is no tree ReduceScatter/AllGather, and Broadcast/
        // Reduce have one root-based implementation regardless of the
        // configured algorithm — all of those must cost exactly as the
        // ring, or the tuner would price schedules on an algorithm
        // that never runs.
        let m = model();
        for g in [intra_group(), world_group()] {
            for elems in [1u64 << 10, 1 << 24] {
                let ring_time =
                    |kind| m.collective_time(kind, elems, DType::F16, g, algo_cfg(CollAlgo::Ring));
                for algo in [CollAlgo::Tree, CollAlgo::Hierarchical, CollAlgo::Switch] {
                    for kind in [CollKind::Broadcast, CollKind::Reduce] {
                        let t = m.collective_time(kind, elems, DType::F16, g, algo_cfg(algo));
                        assert_eq!(ring_time(kind), t, "{algo} {kind}, elems {elems}");
                    }
                }
                // No tree or switch ReduceScatter/AllGather exists:
                // both run — and cost — as the ring.
                for kind in [CollKind::ReduceScatter, CollKind::AllGather] {
                    for algo in [CollAlgo::Tree, CollAlgo::Switch] {
                        let t = m.collective_time(kind, elems, DType::F16, g, algo_cfg(algo));
                        assert_eq!(ring_time(kind), t, "{algo} {kind}, elems {elems}");
                        assert_eq!(
                            m.collective_wire(
                                CollAlgo::Ring,
                                kind,
                                elems,
                                DType::F16,
                                g,
                                WireFormat::Dense
                            ),
                            m.collective_wire(algo, kind, elems, DType::F16, g, WireFormat::Dense),
                        );
                    }
                }
                // AllReduce does have tree and hierarchical forms, and
                // they differ (on multi-node groups for hierarchical).
                let ar = |algo| {
                    m.collective_time(CollKind::AllReduce, elems, DType::F16, g, algo_cfg(algo))
                };
                assert_ne!(ar(CollAlgo::Ring), ar(CollAlgo::Tree));
                if g.nodes_spanned > 1 {
                    assert_ne!(ar(CollAlgo::Ring), ar(CollAlgo::Hierarchical));
                }
            }
        }
    }

    #[test]
    fn fp16_wire_halves_f32_payloads_everywhere() {
        // The FP16 format halves the wire bytes of every algorithm and
        // kind on F32 payloads, and is byte-identical to dense on
        // payloads that are already FP16. The switch is the exception:
        // its wire is fixed-point i32 words whatever the format, so it
        // is checked separately (switch_wire_is_format_invariant).
        let m = model();
        let g = world_group();
        let elems = 1u64 << 22;
        for algo in [CollAlgo::Ring, CollAlgo::Tree, CollAlgo::Hierarchical] {
            for kind in [
                CollKind::AllReduce,
                CollKind::ReduceScatter,
                CollKind::AllGather,
            ] {
                let dense = m.collective_wire(algo, kind, elems, DType::F32, g, WireFormat::Dense);
                let fp16 = m.collective_wire(algo, kind, elems, DType::F32, g, WireFormat::Fp16);
                assert_eq!(fp16.edge * 2.0, dense.edge, "{algo} {kind}");
                assert_eq!(fp16.intra * 2.0, dense.intra, "{algo} {kind}");
                assert_eq!(fp16.inter * 2.0, dense.inter, "{algo} {kind}");
                let dense_h =
                    m.collective_wire(algo, kind, elems, DType::F16, g, WireFormat::Dense);
                let fp16_h = m.collective_wire(algo, kind, elems, DType::F16, g, WireFormat::Fp16);
                assert_eq!(dense_h, fp16_h, "{algo} {kind}: FP16-on-FP16 is dense");
            }
        }
    }

    #[test]
    fn switch_wire_is_format_invariant_and_constant_in_group_size() {
        // The switch AllReduce wire is 2·n·4 bytes per worker — the
        // same under Dense and FP16 (the quantizer replaces the format
        // codec) and at every group size (SwitchML's headline
        // property). Only an *active* top-k exchange replaces it.
        let m = model();
        let elems = 1u64 << 22;
        let expected = coconet_compress::switch_all_reduce_wire_bytes(elems) as f64;
        for (size, nodes) in [(2usize, 2usize), (8, 8), (32, 32), (256, 16)] {
            let g = GroupGeom {
                size,
                nodes_spanned: nodes,
                ranks_per_node: size / nodes,
            };
            for (format, dtype) in [
                (WireFormat::Dense, DType::F32),
                (WireFormat::Dense, DType::F16),
                (WireFormat::Fp16, DType::F32),
            ] {
                let wire = m.collective_wire(
                    CollAlgo::Switch,
                    CollKind::AllReduce,
                    elems,
                    dtype,
                    g,
                    format,
                );
                assert_eq!(wire.edge, expected, "{size} ranks, {format}, {dtype:?}");
                assert_eq!((wire.intra, wire.inter), (0.0, 0.0));
            }
            // Active top-k replaces the topology, switch included.
            let topk = WireFormat::TopK { k_permille: 10 };
            let wire = m.collective_wire(
                CollAlgo::Switch,
                CollKind::AllReduce,
                elems,
                DType::F32,
                g,
                topk,
            );
            assert_eq!(
                wire.edge,
                coconet_compress::sparse_all_reduce_wire_bytes(
                    elems,
                    size as u64,
                    topk.k_for(elems)
                ) as f64
            );
        }
    }

    #[test]
    fn switch_crossover_in_worker_count() {
        // At a mid-size F32 payload with one worker per node, the ring
        // wins tiny groups (the switch pays its fixed processing and
        // quantization costs) but loses big ones (its 2(k−1) hop chain
        // and (k−1)/k volume grow while the switch stays at two hops
        // and 2·n words) — the crossover the ablation_switch_workers
        // trajectory row witnesses end to end.
        let m = model();
        let elems = 1u64 << 18;
        let best = |algo, workers: usize| {
            let g = GroupGeom {
                size: workers,
                nodes_spanned: workers,
                ranks_per_node: 1,
            };
            let mut best = f64::INFINITY;
            for protocol in Protocol::ALL {
                for ch in [2usize, 4, 8, 16, 32, 64] {
                    let config = CommConfig {
                        algo,
                        protocol,
                        channels: ch,
                        format: WireFormat::Dense,
                        ..CommConfig::default()
                    };
                    best = best.min(m.collective_time(
                        CollKind::AllReduce,
                        elems,
                        DType::F32,
                        g,
                        config,
                    ));
                }
            }
            best
        };
        assert!(
            best(CollAlgo::Ring, 2) < best(CollAlgo::Switch, 2),
            "ring wins 2 workers"
        );
        for rival in [CollAlgo::Ring, CollAlgo::Tree, CollAlgo::Hierarchical] {
            assert!(
                best(CollAlgo::Switch, 32) < best(rival, 32),
                "switch beats {rival} at 32 workers"
            );
        }
        // And the switch's own time is flat-ish: growing the group 16×
        // must not double it (the rivals' grow much faster).
        assert!(best(CollAlgo::Switch, 32) < 2.0 * best(CollAlgo::Switch, 2));
    }

    #[test]
    fn topk_allreduce_prices_the_sparse_exchange() {
        let m = model();
        let g = world_group();
        let elems = 1u64 << 24;
        let topk = WireFormat::TopK { k_permille: 10 };
        let k = topk.k_for(elems);
        // Every algorithm prices the same sparse exchange — the sparse
        // wire replaces the logical topology.
        for algo in CollAlgo::ALL {
            let wire = m.collective_wire(algo, CollKind::AllReduce, elems, DType::F32, g, topk);
            assert_eq!(
                wire.edge,
                coconet_compress::sparse_all_reduce_wire_bytes(elems, g.size as u64, k) as f64,
                "{algo}"
            );
            assert_eq!((wire.intra, wire.inter), (0.0, 0.0), "{algo}");
            // And it undercuts the dense wire at 10 ‰ (the < 5 %
            // acceptance ratio is an 8-rank number; at 256 ranks the
            // log2(p) rounds still win by an order of magnitude less).
            let dense = m.collective_wire(
                algo,
                CollKind::AllReduce,
                elems,
                DType::F32,
                g,
                WireFormat::Dense,
            );
            assert!(wire.edge < 0.1 * (dense.edge + dense.intra + dense.inter));
        }
        // Non-AllReduce kinds fall back to the dense wire under top-k.
        for kind in [CollKind::ReduceScatter, CollKind::AllGather] {
            assert_eq!(
                m.collective_wire(CollAlgo::Ring, kind, elems, DType::F32, g, topk),
                m.collective_wire(
                    CollAlgo::Ring,
                    kind,
                    elems,
                    DType::F32,
                    g,
                    WireFormat::Dense
                ),
                "{kind}"
            );
        }
        // The dense switchover: at 200 ‰ on FP16 payloads the sparse
        // form is larger, so the collective prices (and runs) dense.
        let heavy = WireFormat::TopK { k_permille: 200 };
        assert_eq!(
            m.collective_wire(
                CollAlgo::Ring,
                CollKind::AllReduce,
                elems,
                DType::F16,
                g,
                heavy
            ),
            m.collective_wire(
                CollAlgo::Ring,
                CollKind::AllReduce,
                elems,
                DType::F16,
                g,
                WireFormat::Dense
            ),
        );
    }

    #[test]
    fn compressed_floors_stay_admissible() {
        // floor <= collective_time for every format × algorithm ×
        // protocol — the invariant the enlarged grid's pruning rests
        // on (codec time lives above the floor, never inside it).
        let m = model();
        for g in [intra_group(), world_group()] {
            for format in WireFormat::SWEEP {
                for algo in CollAlgo::ALL {
                    for protocol in Protocol::ALL {
                        let config = CommConfig {
                            algo,
                            protocol,
                            channels: 16,
                            format,
                            ..CommConfig::default()
                        };
                        for elems in [1u64 << 10, 1 << 24] {
                            let floor = m.collective_bandwidth_floor(
                                CollKind::AllReduce,
                                elems,
                                DType::F32,
                                g,
                                config,
                            );
                            let t = m.collective_time(
                                CollKind::AllReduce,
                                elems,
                                DType::F32,
                                g,
                                config,
                            );
                            assert!(
                                floor <= t,
                                "{format} {algo} {protocol} {elems}: {floor} > {t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_collectives_never_ride_the_sparse_wire() {
        // Top-k resolves to dense for fused collectives (no RS/AG
        // phase to compute between); FP16 passes through.
        let m = model();
        let g = world_group();
        let fused = FusedCollectiveStep {
            label: "f".into(),
            algo: CollAlgo::Ring,
            elems: 1 << 26,
            dtype: DType::F32,
            extra_bytes_read: 1 << 20,
            extra_bytes_written: 1 << 20,
            flops: 1 << 20,
            embedded_scalar_allreduces: 0,
            n_fused_ops: 8,
            scattered: None,
        };
        let at = |format| {
            m.fused_collective_time(
                &fused,
                g,
                CommConfig {
                    algo: CollAlgo::Ring,
                    protocol: Protocol::Simple,
                    channels: 16,
                    format,
                    ..CommConfig::default()
                },
            )
        };
        assert_eq!(
            at(WireFormat::TopK { k_permille: 10 }),
            at(WireFormat::Dense)
        );
        assert!(at(WireFormat::Fp16) < at(WireFormat::Dense));
        assert_eq!(
            CostModel::fused_wire_format(WireFormat::TopK { k_permille: 1 }),
            WireFormat::Dense
        );
        assert_eq!(
            CostModel::fused_wire_format(WireFormat::Fp16),
            WireFormat::Fp16
        );
    }

    #[test]
    fn format_crossover_small_vs_large() {
        // Small messages: the codec/launch terms dominate, dense wins.
        // Large F32 messages: FP16 halves the wall, top-k at 10 ‰ wins
        // outright — the crossover the compression_ablation rows track.
        let m = model();
        let g = world_group();
        // Each format runs at its best algorithm/protocol — the
        // comparison the ablation rows and the autotuner make.
        let time = |format, elems: u64| {
            let mut best = f64::INFINITY;
            for algo in CollAlgo::ALL {
                for protocol in Protocol::ALL {
                    let config = CommConfig {
                        algo,
                        protocol,
                        channels: 16,
                        format,
                        ..CommConfig::default()
                    };
                    best = best.min(m.collective_time(
                        CollKind::AllReduce,
                        elems,
                        DType::F32,
                        g,
                        config,
                    ));
                }
            }
            best
        };
        let small = 1u64 << 10;
        assert!(time(WireFormat::Dense, small) <= time(WireFormat::Fp16, small));
        assert!(time(WireFormat::Dense, small) <= time(WireFormat::TopK { k_permille: 10 }, small));
        let large = 1u64 << 28;
        let t_dense = time(WireFormat::Dense, large);
        let t_fp16 = time(WireFormat::Fp16, large);
        let t_topk = time(WireFormat::TopK { k_permille: 10 }, large);
        assert!(t_fp16 < t_dense, "fp16 {t_fp16} !< dense {t_dense}");
        assert!(t_topk < t_fp16, "topk {t_topk} !< fp16 {t_fp16}");
    }

    #[test]
    fn inter_bandwidth_scales_with_channels_up_to_node_aggregate() {
        let m = model();
        let c2 = m.inter_bandwidth(cfg(Protocol::Simple, 2));
        let c8 = m.inter_bandwidth(cfg(Protocol::Simple, 8));
        let c64 = m.inter_bandwidth(cfg(Protocol::Simple, 64));
        assert!(c2 < c8, "2 NICs < 8 NICs");
        assert_eq!(c8, c64, "aggregate caps at the node's 8 NICs");
        // Intra-node NVLink is channel-independent and faster.
        assert!(m.intra_bandwidth(cfg(Protocol::Simple, 2)) > c64);
    }
}
