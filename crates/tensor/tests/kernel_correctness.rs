//! Property: the monomorphized (and, above threshold, parallel) kernels
//! in `coconet_tensor::kernels` are bit-identical to the per-element
//! `ReduceOp::apply` reference for every operator and dtype — including
//! NaN/Inf payloads and lengths that are not multiples of the engine's
//! chunk sizes — and the F16 widen-once-per-chunk path rounds exactly
//! like the per-element widen/narrow loop it replaced.

use coconet_tensor::kernels;
use coconet_tensor::{DType, ReduceOp, Tensor, F16};
use proptest::prelude::*;

/// Finite, NaN, or infinite f32 payloads, biased toward values that
/// survive an F16 round-trip but with full special-value coverage.
fn arb_value() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-2048i32..2048).prop_map(|v| v as f32 * 0.25),
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

fn arb_op() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Sum),
        Just(ReduceOp::Min),
        Just(ReduceOp::Max)
    ]
}

/// Lengths straddling the serial/parallel threshold and deliberately
/// off every chunk multiple.
fn arb_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        (1usize..600).boxed(),
        (1usize..600).boxed(),
        Just(kernels::PAR_THRESHOLD - 1).boxed(),
        Just(kernels::PAR_THRESHOLD + 37).boxed(),
        Just(kernels::PAR_THRESHOLD + 255).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// F32 kernels, serial and auto-parallel, match the `op.apply`
    /// per-element reference bit for bit.
    #[test]
    fn f32_kernels_match_apply_reference(
        len in arb_len(),
        seed in any::<u64>(),
        op in arb_op(),
        specials in prop::collection::vec((0usize..1 << 16, arb_value()), 0..8),
    ) {
        let gen = |i: usize| (((i as u64).wrapping_add(seed).wrapping_mul(2654435761) % 4099) as f32) * 0.125 - 256.0;
        let mut acc0: Vec<f32> = (0..len).map(gen).collect();
        let mut inc: Vec<f32> = (0..len).map(|i| gen(i + 1_000_000)).collect();
        for &(pos, v) in &specials {
            acc0[pos % len] = v;
            inc[(pos / 7) % len] = v;
        }

        let mut reference = acc0.clone();
        for (a, &b) in reference.iter_mut().zip(&inc) {
            *a = op.apply(*a, b);
        }

        let mut serial = acc0.clone();
        kernels::reduce_f32_serial(&mut serial, &inc, op);
        let mut auto = acc0.clone();
        kernels::reduce_f32(&mut auto, &inc, op);

        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&reference), bits(&serial));
        prop_assert_eq!(bits(&serial), bits(&auto));
    }

    /// F16 widen-once chunked kernels (serial and auto-parallel) round
    /// exactly like the per-element widen/apply/narrow path.
    #[test]
    fn f16_widen_once_matches_per_element(
        len in arb_len(),
        seed in any::<u64>(),
        op in arb_op(),
        specials in prop::collection::vec((0usize..1 << 16, arb_value()), 0..8),
    ) {
        let gen = |i: usize| {
            F16::from_f32((((i as u64).wrapping_add(seed).wrapping_mul(6364136223846793005) % 509) as f32) * 0.5 - 127.0)
        };
        let mut acc0: Vec<F16> = (0..len).map(gen).collect();
        let mut inc: Vec<F16> = (0..len).map(|i| gen(i + 1_000_000)).collect();
        for &(pos, v) in &specials {
            acc0[pos % len] = F16::from_f32(v);
            inc[(pos / 7) % len] = F16::from_f32(v);
        }

        let mut reference = acc0.clone();
        kernels::reduce_f16_per_element(&mut reference, &inc, op);
        let mut serial = acc0.clone();
        kernels::reduce_f16_serial(&mut serial, &inc, op);
        let mut auto = acc0.clone();
        kernels::reduce_f16(&mut auto, &inc, op);

        let bits = |v: &[F16]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&reference), bits(&serial));
        prop_assert_eq!(bits(&serial), bits(&auto));
    }

    /// `Tensor::reduce_assign` — now routed through the kernel engine —
    /// still equals the per-element `op.apply` over `get`/`set`, for
    /// both dtypes.
    #[test]
    fn tensor_reduce_assign_matches_reference(
        len in 1usize..400,
        seed in any::<u64>(),
        op in arb_op(),
        f16 in any::<bool>(),
    ) {
        let dtype = if f16 { DType::F16 } else { DType::F32 };
        let gen = |i: usize| (((i as u64).wrapping_add(seed).wrapping_mul(2654435761) % 251) as f32) - 125.0;
        let acc0 = Tensor::from_fn([len], dtype, gen);
        let inc = Tensor::from_fn([len], dtype, |i| gen(i + 31));

        let mut expect = acc0.deep_clone();
        for i in 0..len {
            let folded = op.apply(expect.get(i), inc.get(i));
            expect.set(i, folded);
        }

        let mut got = acc0.deep_clone();
        got.reduce_assign(&inc, op).unwrap();
        for i in 0..len {
            prop_assert_eq!(got.get(i).to_bits(), expect.get(i).to_bits());
        }
    }

    /// The parallel map codec kernel equals the sequential closure
    /// application (F16 encode/decode round-trip shape).
    #[test]
    fn par_map_codecs_match_sequential(
        len in arb_len(),
        seed in any::<u64>(),
    ) {
        let gen = |i: usize| (((i as u64).wrapping_add(seed).wrapping_mul(2654435761) % 8191) as f32) * 0.0625 - 256.0;
        let src: Vec<f32> = (0..len).map(gen).collect();

        let mut enc = vec![F16::ZERO; len];
        kernels::f16_encode(&src, &mut enc);
        for (i, h) in enc.iter().enumerate() {
            prop_assert_eq!(h.to_bits(), F16::from_f32(src[i]).to_bits());
        }

        let mut dec = vec![0.0f32; len];
        kernels::f16_decode(&enc, &mut dec);
        for (i, v) in dec.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), enc[i].to_f32().to_bits());
        }
    }
}
