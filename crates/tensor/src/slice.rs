//! Slicing, splitting, and concatenation.
//!
//! The `Sliced(d)` layout distributes a tensor along dimension `d`
//! across the ranks of a group (§2.1). These operations produce the
//! per-rank slices and reassemble them. Leading-dimension slices and
//! the flat chunks the ring collectives communicate are zero-copy
//! copy-on-write views; only interior-dimension slices (strided in
//! row-major order) materialize storage.

use crate::tensor::BufferData;
use crate::{Shape, Tensor, TensorError};

impl Tensor {
    /// Copies the subrange `start..start+len` of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimOutOfRange`] or
    /// [`TensorError::SliceOutOfRange`] for invalid arguments.
    pub fn slice_dim(&self, dim: usize, start: usize, len: usize) -> Result<Tensor, TensorError> {
        let rank = self.shape().rank();
        if dim >= rank {
            return Err(TensorError::DimOutOfRange { dim, rank });
        }
        let extent = self.shape().dim(dim);
        if start + len > extent || len == 0 {
            return Err(TensorError::SliceOutOfRange {
                dim,
                start,
                len,
                extent,
            });
        }
        let mut out_dims = self.shape().dims().to_vec();
        out_dims[dim] = len;
        let out_shape = Shape::new(out_dims);
        if dim == 0 {
            // Leading-dimension slices are contiguous in row-major
            // order: reshape a zero-copy flat view instead of copying.
            let row = self.numel() / extent;
            let view = self.slice_flat(start * row, len * row)?;
            return view.reshape(out_shape);
        }
        let in_strides = self.shape().strides();
        let out_strides = out_shape.strides();
        let out_dims = out_shape.dims().to_vec();
        Ok(Tensor::from_fn(out_shape.clone(), self.dtype(), |linear| {
            // Decompose the output index, shift the sliced coordinate,
            // and recompose into the input index.
            let mut src = 0usize;
            for d in 0..out_dims.len() {
                let mut coord = (linear / out_strides[d]) % out_dims[d];
                if d == dim {
                    coord += start;
                }
                src += coord * in_strides[d];
            }
            self.get(src)
        }))
    }

    /// Splits the tensor into `parts` equal slices along `dim`
    /// (the per-rank pieces of a `Sliced(dim)` layout).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `dim`'s extent is not a
    /// multiple of `parts`, plus the errors of [`Tensor::slice_dim`].
    pub fn split_even(&self, dim: usize, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        let rank = self.shape().rank();
        if dim >= rank {
            return Err(TensorError::DimOutOfRange { dim, rank });
        }
        let extent = self.shape().dim(dim);
        if parts == 0 || !extent.is_multiple_of(parts) {
            return Err(TensorError::UnevenSplit { dim, extent, parts });
        }
        let each = extent / parts;
        (0..parts)
            .map(|p| self.slice_dim(dim, p * each, each))
            .collect()
    }

    /// Concatenates tensors along `dim`. All inputs must agree on dtype
    /// and on every other dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ConcatMismatch`] on disagreement or empty
    /// input, [`TensorError::DimOutOfRange`] for a bad dimension.
    pub fn concat(parts: &[&Tensor], dim: usize) -> Result<Tensor, TensorError> {
        let first = parts.first().ok_or(TensorError::ConcatMismatch)?;
        let rank = first.shape().rank();
        if dim >= rank {
            return Err(TensorError::DimOutOfRange { dim, rank });
        }
        let mut total = 0usize;
        for t in parts {
            if t.shape().rank() != rank || t.dtype() != first.dtype() {
                return Err(TensorError::ConcatMismatch);
            }
            for d in 0..rank {
                if d != dim && t.shape().dim(d) != first.shape().dim(d) {
                    return Err(TensorError::ConcatMismatch);
                }
            }
            total += t.shape().dim(dim);
        }
        let mut out_dims = first.shape().dims().to_vec();
        out_dims[dim] = total;
        let out_shape = Shape::new(out_dims.clone());
        let out_strides = out_shape.strides();

        let mut out = Tensor::zeros(out_shape.clone(), first.dtype());
        if dim == 0 {
            // Leading-dimension concatenation is a sequence of
            // contiguous block copies.
            let mut elem_off = 0usize;
            for t in parts {
                out.write_flat(elem_off, t)?;
                elem_off += t.numel();
            }
            return Ok(out);
        }
        let mut offset = 0usize;
        for t in parts {
            let t_extent = t.shape().dim(dim);
            let t_strides = t.shape().strides();
            for linear in 0..t.numel() {
                let mut dst = 0usize;
                for d in 0..rank {
                    let mut coord = (linear / t_strides[d]) % t.shape().dim(d);
                    if d == dim {
                        coord += offset;
                    }
                    dst += coord * out_strides[d];
                }
                out.set(dst, t.get(linear));
            }
            offset += t_extent;
        }
        Ok(out)
    }

    /// Writes `src`'s elements (in row-major flat order; any shape)
    /// into the flat element range starting at
    /// `start`. Same-dtype writes are a single block copy (after at
    /// most one copy-on-write materialization of `self`); `src` may
    /// alias `self`, in which case the pre-write values are read.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for an out-of-bounds
    /// range and [`TensorError::DTypeMismatch`] on dtype disagreement.
    pub fn write_flat(&mut self, start: usize, src: &Tensor) -> Result<(), TensorError> {
        let n = src.numel();
        if start + n > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len: n,
                extent: self.numel(),
            });
        }
        if src.dtype() != self.dtype() {
            return Err(TensorError::DTypeMismatch {
                expected: self.dtype(),
                actual: src.dtype(),
            });
        }
        match self.buf.make_mut() {
            BufferData::F32(dst) => {
                dst[start..start + n].copy_from_slice(src.buf.as_f32().expect("dtype checked"));
            }
            BufferData::F16(dst) => {
                dst[start..start + n].copy_from_slice(src.buf.as_f16().expect("dtype checked"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;
    use proptest::prelude::*;

    fn t2x4() -> Tensor {
        Tensor::from_fn([2, 4], DType::F32, |i| i as f32)
    }

    #[test]
    fn slice_dim_rows_and_cols() {
        let t = t2x4();
        let row = t.slice_dim(0, 1, 1).unwrap();
        assert_eq!(row.shape(), &Shape::from([1, 4]));
        assert_eq!(row.to_f32_vec(), vec![4.0, 5.0, 6.0, 7.0]);
        let cols = t.slice_dim(1, 1, 2).unwrap();
        assert_eq!(cols.shape(), &Shape::from([2, 2]));
        assert_eq!(cols.to_f32_vec(), vec![1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_errors() {
        let t = t2x4();
        assert!(t.slice_dim(2, 0, 1).is_err());
        assert!(t.slice_dim(1, 3, 2).is_err());
        assert!(t.slice_dim(0, 0, 0).is_err());
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let t = t2x4();
        for dim in 0..2 {
            let parts = t.split_even(dim, 2).unwrap();
            assert_eq!(parts.len(), 2);
            let refs: Vec<&Tensor> = parts.iter().collect();
            let back = Tensor::concat(&refs, dim).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn split_uneven_rejected() {
        let t = t2x4();
        assert!(matches!(
            t.split_even(1, 3),
            Err(TensorError::UnevenSplit { .. })
        ));
        assert!(t.split_even(0, 0).is_err());
    }

    #[test]
    fn concat_mismatch_rejected() {
        let a = Tensor::zeros([2, 2], DType::F32);
        let b = Tensor::zeros([3, 3], DType::F32);
        assert!(Tensor::concat(&[&a, &b], 0).is_err());
        let h = Tensor::zeros([2, 2], DType::F16);
        assert!(Tensor::concat(&[&a, &h], 0).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
        assert!(Tensor::concat(&[&a], 5).is_err());
    }

    #[test]
    fn flat_chunk_roundtrip() {
        let t = t2x4();
        let chunk = t.slice_flat(2, 4).unwrap();
        assert_eq!(chunk.to_f32_vec(), vec![2.0, 3.0, 4.0, 5.0]);
        let mut copy = Tensor::zeros([2, 4], DType::F32);
        copy.write_flat(2, &chunk).unwrap();
        assert_eq!(copy.get(3), 3.0);
        assert_eq!(copy.get(0), 0.0);
        assert!(copy.write_flat(6, &chunk).is_err());
        assert!(copy.write_flat(0, &Tensor::zeros([1], DType::F16)).is_err());
    }

    proptest! {
        /// split/concat round-trips on arbitrary shapes and divisors.
        #[test]
        fn split_concat_roundtrip(
            d0 in 1usize..5,
            d1 in 1usize..5,
            parts in 1usize..5,
        ) {
            let t = Tensor::from_fn([d0 * parts, d1], DType::F32, |i| i as f32);
            let pieces = t.split_even(0, parts).unwrap();
            let refs: Vec<&Tensor> = pieces.iter().collect();
            prop_assert_eq!(Tensor::concat(&refs, 0).unwrap(), t);
        }

        /// A flat slice of a flat write is the identity.
        #[test]
        fn flat_roundtrip(n in 1usize..64, start in 0usize..32, len in 1usize..32) {
            prop_assume!(start + len <= n);
            let t = Tensor::from_fn([n], DType::F32, |i| i as f32);
            let chunk = t.slice_flat(start, len).unwrap();
            let mut out = Tensor::zeros([n], DType::F32);
            out.write_flat(start, &chunk).unwrap();
            for i in 0..len {
                prop_assert_eq!(out.get(start + i), t.get(start + i));
            }
        }
    }
}
