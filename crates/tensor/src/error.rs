//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

use crate::{DType, Shape};

/// Errors produced by tensor construction and arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes could not be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        lhs: Shape,
        /// Right-hand shape.
        rhs: Shape,
    },
    /// An operation required identical shapes but got different ones.
    ShapeMismatch {
        /// Expected shape.
        expected: Shape,
        /// Actual shape.
        actual: Shape,
    },
    /// Matrix multiplication inner dimensions disagree.
    MatMulDims {
        /// Left-hand shape.
        lhs: Shape,
        /// Right-hand shape.
        rhs: Shape,
    },
    /// An operation required identical dtypes but got different ones.
    DTypeMismatch {
        /// Expected dtype.
        expected: DType,
        /// Actual dtype.
        actual: DType,
    },
    /// A dimension index was out of range for the tensor's rank.
    DimOutOfRange {
        /// The offending dimension.
        dim: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A slice range fell outside the dimension extent.
    SliceOutOfRange {
        /// Dimension being sliced.
        dim: usize,
        /// Start of the slice.
        start: usize,
        /// Length of the slice.
        len: usize,
        /// Extent of the dimension.
        extent: usize,
    },
    /// A split/chunk did not divide the dimension evenly.
    UnevenSplit {
        /// Dimension being split.
        dim: usize,
        /// Extent of the dimension.
        extent: usize,
        /// Number of requested parts.
        parts: usize,
    },
    /// Concatenation inputs disagree on a non-concat dimension or dtype.
    ConcatMismatch,
    /// The data length did not match the shape's element count.
    DataLength {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A probability argument was outside `[0, 1)`.
    InvalidProbability(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} cannot be broadcast together")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "expected shape {expected}, got {actual}")
            }
            TensorError::MatMulDims { lhs, rhs } => {
                write!(f, "matmul inner dimensions disagree: {lhs} x {rhs}")
            }
            TensorError::DTypeMismatch { expected, actual } => {
                write!(f, "expected dtype {expected}, got {actual}")
            }
            TensorError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank {rank}")
            }
            TensorError::SliceOutOfRange {
                dim,
                start,
                len,
                extent,
            } => write!(
                f,
                "slice {start}..{} out of range for dimension {dim} of extent {extent}",
                start + len
            ),
            TensorError::UnevenSplit { dim, extent, parts } => write!(
                f,
                "dimension {dim} of extent {extent} does not split evenly into {parts} parts"
            ),
            TensorError::ConcatMismatch => {
                write!(f, "concatenation inputs disagree on shape or dtype")
            }
            TensorError::DataLength { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            TensorError::InvalidProbability(what) => {
                write!(f, "probability for {what} must be in [0, 1)")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<TensorError> = vec![
            TensorError::BroadcastMismatch {
                lhs: Shape::from([2]),
                rhs: Shape::from([3]),
            },
            TensorError::ShapeMismatch {
                expected: Shape::from([2]),
                actual: Shape::from([3]),
            },
            TensorError::MatMulDims {
                lhs: Shape::from([2, 3]),
                rhs: Shape::from([4, 5]),
            },
            TensorError::DTypeMismatch {
                expected: DType::F16,
                actual: DType::F32,
            },
            TensorError::DimOutOfRange { dim: 3, rank: 2 },
            TensorError::SliceOutOfRange {
                dim: 0,
                start: 1,
                len: 5,
                extent: 4,
            },
            TensorError::UnevenSplit {
                dim: 0,
                extent: 5,
                parts: 2,
            },
            TensorError::ConcatMismatch,
            TensorError::DataLength {
                expected: 6,
                actual: 5,
            },
            TensorError::InvalidProbability("dropout".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
