//! Matrix multiplication.
//!
//! The model-parallel workloads (§2.1, Figure 3) multiply an activation
//! tensor `[B, S, H]` by a weight `[H, H']`: the leading dimensions are
//! flattened into rows, i.e. a `[B*S, H] x [H, H']` GEMM. Accumulation
//! is in `f32` even for FP16 inputs, mirroring tensor-core MMA behaviour.

use crate::{DType, Shape, Tensor, TensorError};

/// Cache-blocked GEMM tile edge (elements).
const BLOCK: usize = 64;

impl Tensor {
    /// Matrix product `self @ rhs`.
    ///
    /// `self` may have any rank ≥ 1; its trailing dimension is the
    /// contraction dimension. `rhs` must be 2-D `[K, N]`. The result
    /// replaces the trailing dimension of `self` with `N`, e.g.
    /// `[B, S, K] @ [K, N] -> [B, S, N]`.
    ///
    /// The output dtype is the promotion of the input dtypes;
    /// accumulation is always `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulDims`] if `rhs` is not 2-D or the
    /// contraction dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use coconet_tensor::{DType, Tensor};
    ///
    /// let a = Tensor::from_f32([2, 2], DType::F32, &[1.0, 2.0, 3.0, 4.0])?;
    /// let i = Tensor::from_f32([2, 2], DType::F32, &[1.0, 0.0, 0.0, 1.0])?;
    /// assert_eq!(a.matmul(&i)?.to_f32_vec(), a.to_f32_vec());
    /// # Ok::<(), coconet_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let lhs_shape = self.shape();
        let rhs_shape = rhs.shape();
        if rhs_shape.rank() != 2 || lhs_shape.rank() < 1 {
            return Err(TensorError::MatMulDims {
                lhs: lhs_shape.clone(),
                rhs: rhs_shape.clone(),
            });
        }
        let k = lhs_shape.dim(lhs_shape.rank() - 1);
        if rhs_shape.dim(0) != k {
            return Err(TensorError::MatMulDims {
                lhs: lhs_shape.clone(),
                rhs: rhs_shape.clone(),
            });
        }
        let n = rhs_shape.dim(1);
        let m = lhs_shape.numel() / k;

        // F32 operands are read in place; only FP16 inputs stage
        // through a widening copy. The accumulator vector becomes the
        // output buffer without a read-back pass.
        let a_staged;
        let a = match self.as_f32_slice() {
            Some(s) => s,
            None => {
                a_staged = self.to_f32_vec();
                &a_staged
            }
        };
        let b_staged;
        let b = match rhs.as_f32_slice() {
            Some(s) => s,
            None => {
                b_staged = rhs.to_f32_vec();
                &b_staged
            }
        };
        let mut c = vec![0.0f32; m * n];
        gemm_blocked(a, b, &mut c, m, k, n);

        let mut out_dims = lhs_shape.dims().to_vec();
        *out_dims.last_mut().expect("rank >= 1") = n;
        let dtype = DType::promote(self.dtype(), rhs.dtype());
        Tensor::from_f32_vec(Shape::new(out_dims), dtype, c)
    }
}

/// `C += A @ B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, row-major,
/// blocked over all three dimensions for cache locality.
///
/// Row blocks of `C` are disjoint, so they fan out across the kernel
/// worker pool when the output clears the engine's size threshold
/// (small products stay on the single-threaded path). Each row block
/// runs the identical serial body, so the parallel product is
/// bit-identical to the serial one.
fn gemm_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    crate::kernels::parallel_chunks_mut(c, BLOCK * n, |blk, c_rows| {
        gemm_row_block(a, b, c_rows, blk * BLOCK, k, n);
    });
}

/// The serial GEMM body for the output rows `i0..i0 + c_rows.len() / n`
/// (`c_rows` is their contiguous window of `C`).
fn gemm_row_block(a: &[f32], b: &[f32], c_rows: &mut [f32], i0: usize, k: usize, n: usize) {
    let rows = c_rows.len() / n;
    for k0 in (0..k).step_by(BLOCK) {
        let k1 = (k0 + BLOCK).min(k);
        for j0 in (0..n).step_by(BLOCK) {
            let j1 = (j0 + BLOCK).min(n);
            for r in 0..rows {
                for kk in k0..k1 {
                    let aik = a[(i0 + r) * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    crate::kernels::axpy(
                        &mut c_rows[r * n + j0..r * n + j1],
                        &b[kk * n + j0..kk * n + j1],
                        aik,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn identity() {
        let a = Tensor::from_fn([3, 3], DType::F32, |i| i as f32);
        let eye = Tensor::from_fn(
            [3, 3],
            DType::F32,
            |i| {
                if i / 3 == i % 3 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        assert_eq!(a.matmul(&eye).unwrap().to_f32_vec(), a.to_f32_vec());
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_f32([2, 3], DType::F32, &[1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_f32([3, 2], DType::F32, &[7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::from([2, 2]));
        assert_eq!(c.to_f32_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn batched_3d() {
        // [2, 2, 3] @ [3, 2] -> [2, 2, 2]; equals flattening to [4, 3].
        let a = Tensor::from_fn([2, 2, 3], DType::F32, |i| i as f32);
        let b = Tensor::from_fn([3, 2], DType::F32, |i| (i % 3) as f32);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::from([2, 2, 2]));
        let flat = a.reshape([4, 3]).unwrap().matmul(&b).unwrap();
        assert_eq!(c.to_f32_vec(), flat.to_f32_vec());
    }

    #[test]
    fn dim_mismatch() {
        let a = Tensor::zeros([2, 3], DType::F32);
        let b = Tensor::zeros([4, 2], DType::F32);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatMulDims { .. })));
        let b1 = Tensor::zeros([3], DType::F32);
        assert!(a.matmul(&b1).is_err(), "rhs must be 2-D");
    }

    #[test]
    fn mixed_precision_output() {
        let a = Tensor::full([2, 2], DType::F16, 1.0);
        let b = Tensor::full([2, 2], DType::F16, 1.0);
        assert_eq!(a.matmul(&b).unwrap().dtype(), DType::F16);
        let b32 = Tensor::full([2, 2], DType::F32, 1.0);
        assert_eq!(a.matmul(&b32).unwrap().dtype(), DType::F32);
    }

    #[test]
    fn blocked_matches_naive_large() {
        // Cross the BLOCK boundary to exercise tiling edges.
        let (m, k, n) = (70, 65, 130);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 104729) % 11) as f32 - 5.0)
            .collect();
        let ta = Tensor::from_f32([m, k], DType::F32, &a).unwrap();
        let tb = Tensor::from_f32([k, n], DType::F32, &b).unwrap();
        let c = ta.matmul(&tb).unwrap();
        assert_eq!(c.to_f32_vec(), naive(&a, &b, m, k, n));
    }

    #[test]
    fn parallel_row_blocks_match_naive() {
        // Large enough that the output crosses the kernel engine's
        // parallel threshold, so row blocks fan out over the pool;
        // the result must stay exactly the serial product.
        let (m, k, n) = (300, 40, 256);
        assert!(m * n >= crate::kernels::PAR_THRESHOLD);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 104729) % 11) as f32 - 5.0)
            .collect();
        let ta = Tensor::from_f32([m, k], DType::F32, &a).unwrap();
        let tb = Tensor::from_f32([k, n], DType::F32, &b).unwrap();
        let c = ta.matmul(&tb).unwrap();
        assert_eq!(c.to_f32_vec(), naive(&a, &b, m, k, n));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Blocked GEMM agrees with the naive triple loop.
        #[test]
        fn gemm_matches_naive(
            m in 1usize..20,
            k in 1usize..20,
            n in 1usize..20,
            seed in any::<u32>(),
        ) {
            let gen = |i: usize| (((i as u64 + seed as u64) * 2654435761) % 7) as f32 - 3.0;
            let a: Vec<f32> = (0..m * k).map(gen).collect();
            let b: Vec<f32> = (0..k * n).map(|i| gen(i + 1000)).collect();
            let ta = Tensor::from_f32([m, k], DType::F32, &a).unwrap();
            let tb = Tensor::from_f32([k, n], DType::F32, &b).unwrap();
            prop_assert_eq!(ta.matmul(&tb).unwrap().to_f32_vec(), naive(&a, &b, m, k, n));
        }
    }
}
