//! The sparse communication chunk — the wire representation of a
//! top-k sparsified tensor.
//!
//! SparCML's observation (PAPERS.md) is that gradient streams are
//! compressible: shipping only the `k` largest-magnitude entries as
//! `(index, value)` pairs moves `k · 8` bytes instead of `n ·
//! dtype_size`. A [`SparseChunk`] is that pair list plus the dense
//! length it was cut from, the payload the runtime's sparse collectives
//! exchange and the [`BytesLedger`](../../coconet_runtime) accounts at
//! [`SparseChunk::wire_bytes`].
//!
//! Entries are kept **sorted by index** (ties cannot occur — indices
//! are unique) so that merging two chunks is a linear zip and every
//! rank that merges the same pair of chunks produces the identical
//! result, the determinism the sparse AllReduce's replicated output
//! rests on.

use crate::{DType, Shape, Tensor, TensorError};

/// Bytes of one `(index, value)` wire entry: a `u32` index plus an
/// `f32` value.
pub const SPARSE_ENTRY_BYTES: usize = 8;

/// A sparse view of a 1-D dense tensor: `(index, value)` pairs sorted
/// by index, plus the dense length they index into.
///
/// # Examples
///
/// ```
/// use coconet_tensor::{DType, SparseChunk, Tensor};
///
/// let chunk = SparseChunk::new(8, vec![1, 5], vec![2.0, -3.0])?;
/// assert_eq!(chunk.wire_bytes(), 16);
/// let dense = chunk.to_dense(DType::F32);
/// assert_eq!(dense.get(5), -3.0);
/// assert_eq!(dense.get(0), 0.0);
/// # Ok::<(), coconet_tensor::TensorError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SparseChunk {
    dense_len: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseChunk {
    /// A chunk from parallel index/value lists. Indices must be strictly
    /// increasing (sorted, unique) and in range.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when the lists disagree in
    /// length and [`TensorError::SliceOutOfRange`] when an index is out
    /// of range or out of order.
    pub fn new(
        dense_len: usize,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<SparseChunk, TensorError> {
        if indices.len() != values.len() {
            return Err(TensorError::DataLength {
                expected: indices.len(),
                actual: values.len(),
            });
        }
        let mut prev: Option<u32> = None;
        for &i in &indices {
            let ordered = prev.is_none_or(|p| i > p);
            if (i as usize) >= dense_len || !ordered {
                return Err(TensorError::SliceOutOfRange {
                    dim: 0,
                    start: i as usize,
                    len: 1,
                    extent: dense_len,
                });
            }
            prev = Some(i);
        }
        Ok(SparseChunk {
            dense_len,
            indices,
            values,
        })
    }

    /// An empty chunk over a dense length.
    pub fn empty(dense_len: usize) -> SparseChunk {
        SparseChunk {
            dense_len,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the chunk stores no entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The dense length the indices address.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// The bytes this chunk occupies on the wire:
    /// [`SPARSE_ENTRY_BYTES`] per entry. This is what the runtime's
    /// [`BytesLedger`] records when a sparse chunk is sent — the whole
    /// point of the sparse representation.
    ///
    /// [`BytesLedger`]: ../../coconet_runtime
    pub fn wire_bytes(&self) -> usize {
        self.len() * SPARSE_ENTRY_BYTES
    }

    /// The entries as `(index, value)` pairs, ascending by index.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Materializes the chunk as a dense 1-D tensor of `dense_len`
    /// elements (zeros where no entry exists).
    pub fn to_dense(&self, dtype: DType) -> Tensor {
        let mut out = Tensor::zeros(Shape::from([self.dense_len]), dtype);
        self.add_into(&mut out);
        out
    }

    /// Scatter-adds the entries into a dense tensor of matching element
    /// count (the decode half of the sparse codec).
    ///
    /// # Panics
    ///
    /// Panics if `out.numel() != self.dense_len()`.
    pub fn add_into(&self, out: &mut Tensor) {
        assert_eq!(out.numel(), self.dense_len, "dense target length mismatch");
        for (i, v) in self.entries() {
            let at = i as usize;
            out.set(at, out.get(at) + v);
        }
    }

    /// The elementwise sum of two chunks over the same dense length, as
    /// a new chunk whose entries are the union of indices (duplicates
    /// summed). A linear merge of the two sorted entry lists — both
    /// operands of a symmetric exchange compute the identical result.
    ///
    /// # Panics
    ///
    /// Panics if the dense lengths differ.
    pub fn merge_sum(&self, other: &SparseChunk) -> SparseChunk {
        assert_eq!(
            self.dense_len, other.dense_len,
            "merged chunks must cover the same dense length"
        );
        let mut indices = Vec::with_capacity(self.len() + other.len());
        let mut values = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.len() || b < other.len() {
            let ia = self.indices.get(a).copied();
            let ib = other.indices.get(b).copied();
            match (ia, ib) {
                (Some(x), Some(y)) if x == y => {
                    indices.push(x);
                    values.push(self.values[a] + other.values[b]);
                    a += 1;
                    b += 1;
                }
                (Some(x), Some(y)) if x < y => {
                    indices.push(x);
                    values.push(self.values[a]);
                    a += 1;
                }
                (Some(_) | None, Some(y)) => {
                    indices.push(y);
                    values.push(other.values[b]);
                    b += 1;
                }
                (Some(x), None) => {
                    indices.push(x);
                    values.push(self.values[a]);
                    a += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        SparseChunk {
            dense_len: self.dense_len,
            indices,
            values,
        }
    }

    /// Splits the entries into the `k` largest by `|value|` (ties break
    /// toward the lower index) and the rest — the re-sparsification
    /// step of the recursive-doubling sparse AllReduce. Both returned
    /// chunks keep index order. When the chunk has at most `k` entries
    /// the second chunk is empty.
    pub fn split_top_k(&self, k: usize) -> (SparseChunk, SparseChunk) {
        if self.len() <= k {
            return (self.clone(), SparseChunk::empty(self.dense_len));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            self.values[b]
                .abs()
                .partial_cmp(&self.values[a].abs())
                .expect("finite magnitudes")
                .then(self.indices[a].cmp(&self.indices[b]))
        });
        let mut keep = vec![false; self.len()];
        for &i in &order[..k] {
            keep[i] = true;
        }
        let pick = |wanted: bool| {
            let mut indices = Vec::new();
            let mut values = Vec::new();
            for ((&kept, &i), &v) in keep.iter().zip(&self.indices).zip(&self.values) {
                if kept == wanted {
                    indices.push(i);
                    values.push(v);
                }
            }
            SparseChunk {
                dense_len: self.dense_len,
                indices,
                values,
            }
        };
        (pick(true), pick(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SparseChunk::new(4, vec![0, 3], vec![1.0, 2.0]).is_ok());
        // Length mismatch.
        assert!(SparseChunk::new(4, vec![0], vec![1.0, 2.0]).is_err());
        // Out of range.
        assert!(SparseChunk::new(4, vec![4], vec![1.0]).is_err());
        // Out of order / duplicate.
        assert!(SparseChunk::new(4, vec![2, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseChunk::new(4, vec![2, 2], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn wire_bytes_counts_entries() {
        let c = SparseChunk::new(100, vec![1, 2, 50], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.wire_bytes(), 3 * SPARSE_ENTRY_BYTES);
        assert_eq!(SparseChunk::empty(100).wire_bytes(), 0);
        assert!(SparseChunk::empty(100).is_empty());
    }

    #[test]
    fn dense_roundtrip_and_scatter_add() {
        let c = SparseChunk::new(5, vec![0, 4], vec![1.5, -2.0]).unwrap();
        let d = c.to_dense(DType::F32);
        assert_eq!(d.to_f32_vec(), vec![1.5, 0.0, 0.0, 0.0, -2.0]);
        let mut acc = Tensor::full([5], DType::F32, 1.0);
        c.add_into(&mut acc);
        assert_eq!(acc.to_f32_vec(), vec![2.5, 1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn merge_sums_duplicates_and_keeps_order() {
        let a = SparseChunk::new(8, vec![1, 3, 6], vec![1.0, 2.0, 3.0]).unwrap();
        let b = SparseChunk::new(8, vec![0, 3, 7], vec![10.0, 20.0, 30.0]).unwrap();
        let m = a.merge_sum(&b);
        assert_eq!(m, b.merge_sum(&a), "merge is symmetric");
        let entries: Vec<(u32, f32)> = m.entries().collect();
        assert_eq!(
            entries,
            vec![(0, 10.0), (1, 1.0), (3, 22.0), (6, 3.0), (7, 30.0)]
        );
    }

    #[test]
    fn split_top_k_is_deterministic() {
        let c = SparseChunk::new(8, vec![0, 2, 4, 6], vec![1.0, -5.0, 5.0, 0.5]).unwrap();
        let (top, rest) = c.split_top_k(2);
        // |−5| and |5| tie with nothing; both selected. Order by index.
        assert_eq!(top.entries().collect::<Vec<_>>(), vec![(2, -5.0), (4, 5.0)]);
        assert_eq!(rest.entries().collect::<Vec<_>>(), vec![(0, 1.0), (6, 0.5)]);
        // Tie on magnitude: lower index wins.
        let t = SparseChunk::new(4, vec![1, 2], vec![3.0, -3.0]).unwrap();
        let (top, _) = t.split_top_k(1);
        assert_eq!(top.entries().collect::<Vec<_>>(), vec![(1, 3.0)]);
        // k >= len keeps everything.
        let (all, none) = c.split_top_k(10);
        assert_eq!(all, c);
        assert!(none.is_empty());
    }
}
