//! Monomorphized, threshold-gated parallel inner-loop kernels.
//!
//! The collectives' hot loops — ring `reduce_assign`, F16 wire
//! encode/decode, top-k key extraction, Q15.16 quantize — all reduce to
//! tight per-element transforms. Before this module they ran through
//! per-element [`ReduceOp::apply`] enum dispatch (or worse, virtual
//! `Tensor::get` indexing); here each `ReduceOp` gets its own
//! monomorphic inner loop over plain slices that the compiler can
//! auto-vectorize, F16 paths widen a whole chunk to `f32` scratch once
//! instead of converting per element both ways, and work above
//! [`PAR_THRESHOLD`] elements fans out across a shared persistent
//! worker pool built on the vendored crossbeam MPMC channel. Small
//! tensors stay on the single-threaded path so latency-sensitive chunks
//! never pay pool overhead.
//!
//! Every parallel kernel is bit-identical to its serial counterpart:
//! ranges partition the index space and each element sees exactly the
//! same sequence of `f32` operations, so callers (and the striped
//! collectives built on top) can treat parallelism as a pure
//! work-saver.

use crate::ops::ReduceOp;
use crate::F16;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Element count at or above which kernels consider the worker pool.
/// Below it every kernel runs inline on the calling thread.
pub const PAR_THRESHOLD: usize = 1 << 16;

/// Smallest per-task range a parallel kernel will hand to the pool —
/// keeps per-task dispatch overhead well under the work it amortizes.
pub const PAR_MIN_CHUNK: usize = 1 << 14;

/// F16 kernels stage this many elements of widened `f32` scratch on the
/// stack per chunk (one widen and one narrow pass per chunk, with the
/// combine loop running purely in `f32`).
const F16_CHUNK: usize = 256;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: crossbeam::channel::Sender<Job>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set inside pool workers so nested kernels degrade to the serial
    /// path instead of deadlocking on their own queue.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        // The caller always executes one task inline, so spawn one
        // fewer worker than the machine has cores (at least one, so
        // the dispatch path is exercised even on a single core).
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let workers = cores.saturating_sub(1).max(1);
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("coconet-kernel-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn kernel pool worker");
        }
        Pool { tx, workers }
    })
}

/// Number of threads the kernel pool can bring to bear on one call
/// (spawned workers plus the calling thread).
#[must_use]
pub fn pool_width() -> usize {
    pool().workers + 1
}

/// Raw mutable pointer that asserts cross-thread safety; every use
/// below hands disjoint ranges to disjoint tasks.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

// Manual impls: `derive` would add unwanted `T: Clone`/`T: Copy`
// bounds, and pointers copy regardless of the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole wrapper — edition-2021 disjoint capture would otherwise
    /// grab the bare `*mut T` field, which is neither `Send` nor
    /// `Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

/// Runs `f` over a partition of `0..len` into contiguous ranges, using
/// the shared worker pool when the range is worth splitting (and the
/// calling thread for one share of the work). Falls back to a single
/// inline call for short ranges, when called from inside a pool worker
/// (no nested dispatch), or when `len < 2 * min_chunk`.
///
/// Tasks that panic re-raise the panic on the calling thread after all
/// sibling tasks have finished.
pub fn parallel_for<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let _dispatch = coconet_trace::span(
        coconet_trace::EventKind::Kernel,
        "parallel_for",
        len as u64,
        0,
    );
    coconet_trace::metrics::add_counter(coconet_trace::metrics::Counter::KernelElems, len as u64);
    let nested = IN_WORKER.with(std::cell::Cell::get);
    let max_parts = len / min_chunk.max(1);
    let parts = if nested {
        1
    } else {
        pool_width().min(max_parts)
    };
    if parts <= 1 {
        f(0..len);
        return;
    }

    // SAFETY: the borrow of `f` is erased to 'static so boxed jobs can
    // enter the pool queue; the caller blocks on the completion channel
    // below until every task has run, so `f` outlives all uses.
    let f_ref: &(dyn Fn(Range<usize>) + Sync) = &f;
    let f_static: &'static (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(f_ref) };

    let (done_tx, done_rx) = crossbeam::channel::unbounded();
    let base = len / parts;
    let rem = len % parts;
    let mut start = 0usize;
    let mut inline_task = 0..0;
    for part in 0..parts {
        let take = base + usize::from(part < rem);
        let range = start..start + take;
        start += take;
        if part + 1 == parts {
            // The caller's own share — run it inline after dispatch.
            inline_task = range;
            break;
        }
        let tx = done_tx.clone();
        let job: Job = Box::new(move || {
            let _job_span = coconet_trace::span(
                coconet_trace::EventKind::Kernel,
                "pool_job",
                (range.end - range.start) as u64,
                part as u64,
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| f_static(range)));
            // Receiver outlives all tasks; a send failure means the
            // caller already panicked and unwound past the recv loop.
            let _ = tx.send(outcome);
        });
        pool().tx.send(job).expect("kernel pool workers alive");
    }
    drop(done_tx);

    let caller_outcome = catch_unwind(AssertUnwindSafe(|| f_static(inline_task)));
    let mut payload_hold: Option<Box<dyn std::any::Any + Send>> = None;
    for _ in 0..parts - 1 {
        if let Err(payload) = done_rx.recv().expect("kernel task reports completion") {
            payload_hold = Some(payload);
        }
    }
    if let Err(payload) = caller_outcome {
        resume_unwind(payload);
    }
    if let Some(payload) = payload_hold {
        resume_unwind(payload);
    }
}

/// Serial monomorphic `acc[i] = op(acc[i], inc[i])` over `f32` slices:
/// the operator match is hoisted out of the loop so each arm is a
/// branch-free slice traversal the compiler auto-vectorizes.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f32_serial(acc: &mut [f32], inc: &[f32], op: ReduceOp) {
    assert_eq!(acc.len(), inc.len(), "reduce kernel length mismatch");
    match op {
        ReduceOp::Sum => {
            for (a, &b) in acc.iter_mut().zip(inc) {
                *a += b;
            }
        }
        ReduceOp::Min => {
            for (a, &b) in acc.iter_mut().zip(inc) {
                *a = a.min(b);
            }
        }
        ReduceOp::Max => {
            for (a, &b) in acc.iter_mut().zip(inc) {
                *a = a.max(b);
            }
        }
    }
}

/// [`reduce_f32_serial`] fanned out over the worker pool above
/// [`PAR_THRESHOLD`] elements; bit-identical to the serial kernel.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f32(acc: &mut [f32], inc: &[f32], op: ReduceOp) {
    assert_eq!(acc.len(), inc.len(), "reduce kernel length mismatch");
    if acc.len() < PAR_THRESHOLD {
        return reduce_f32_serial(acc, inc, op);
    }
    let ptr = SendPtr(acc.as_mut_ptr());
    parallel_for(acc.len(), PAR_MIN_CHUNK, move |r| {
        // SAFETY: parallel_for ranges partition 0..len, so tasks write
        // disjoint subslices of `acc`.
        let a = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        reduce_f32_serial(a, &inc[r], op);
    });
}

/// Out-of-place monomorphic reduce `dst[i] = op(a[i], b[i])` over
/// `f32` slices — the fused fold-into-fresh-stripe kernel of the
/// striped collectives (one write instead of fold-in-place plus a
/// later send copy). Parallel above [`PAR_THRESHOLD`]; per element it
/// applies exactly `op.apply(a, b)`, so results are bit-identical to
/// an in-place fold of `b` into a copy of `a`.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f32_out(a: &[f32], b: &[f32], dst: &mut [f32], op: ReduceOp) {
    assert_eq!(a.len(), b.len(), "reduce kernel length mismatch");
    assert_eq!(a.len(), dst.len(), "reduce kernel length mismatch");
    if a.len() < PAR_THRESHOLD {
        reduce_f32_out_serial(a, b, dst, op);
        return;
    }
    let ptr = SendPtr(dst.as_mut_ptr());
    parallel_for(a.len(), PAR_MIN_CHUNK, move |r| {
        // SAFETY: disjoint ranges → disjoint subslices.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        reduce_f32_out_serial(&a[r.clone()], &b[r], d, op);
    });
}

fn reduce_f32_out_serial(a: &[f32], b: &[f32], dst: &mut [f32], op: ReduceOp) {
    match op {
        ReduceOp::Sum => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = x + y;
            }
        }
        ReduceOp::Min => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = x.min(y);
            }
        }
        ReduceOp::Max => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = x.max(y);
            }
        }
    }
}

/// Out-of-place F16 reduce `dst[i] = F16(op(a[i] as f32, b[i] as f32))`
/// with the widen-once-per-chunk discipline of [`reduce_f16_serial`];
/// bit-identical to the per-element path. Parallel above
/// [`PAR_THRESHOLD`].
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f16_out(a: &[F16], b: &[F16], dst: &mut [F16], op: ReduceOp) {
    assert_eq!(a.len(), b.len(), "reduce kernel length mismatch");
    assert_eq!(a.len(), dst.len(), "reduce kernel length mismatch");
    if a.len() < PAR_THRESHOLD {
        reduce_f16_out_serial(a, b, dst, op);
        return;
    }
    let ptr = SendPtr(dst.as_mut_ptr());
    parallel_for(a.len(), PAR_MIN_CHUNK, move |r| {
        // SAFETY: disjoint ranges → disjoint subslices.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        reduce_f16_out_serial(&a[r.clone()], &b[r], d, op);
    });
}

fn reduce_f16_out_serial(a: &[F16], b: &[F16], dst: &mut [F16], op: ReduceOp) {
    let mut wa = [0.0f32; F16_CHUNK];
    let mut wb = [0.0f32; F16_CHUNK];
    for ((dc, ac), bc) in dst
        .chunks_mut(F16_CHUNK)
        .zip(a.chunks(F16_CHUNK))
        .zip(b.chunks(F16_CHUNK))
    {
        let n = dc.len();
        for (w, v) in wa[..n].iter_mut().zip(ac.iter()) {
            *w = v.to_f32();
        }
        for (w, v) in wb[..n].iter_mut().zip(bc.iter()) {
            *w = v.to_f32();
        }
        match op {
            ReduceOp::Sum => {
                for (x, &y) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *x += y;
                }
            }
            ReduceOp::Min => {
                for (x, &y) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *x = x.min(y);
                }
            }
            ReduceOp::Max => {
                for (x, &y) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *x = x.max(y);
                }
            }
        }
        for (d, &w) in dc.iter_mut().zip(&wa[..n]) {
            *d = F16::from_f32(w);
        }
    }
}

/// Per-element F16 reduce reference: widen both operands, apply, narrow
/// — exactly the pre-kernel-engine inner loop. Kept public so the
/// equivalence proptest and the throughput bench can pin the
/// widen-once chunk path against it.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f16_per_element(acc: &mut [F16], inc: &[F16], op: ReduceOp) {
    assert_eq!(acc.len(), inc.len(), "reduce kernel length mismatch");
    for (a, &b) in acc.iter_mut().zip(inc) {
        *a = F16::from_f32(op.apply(a.to_f32(), b.to_f32()));
    }
}

/// Serial monomorphic F16 reduce: widens a whole `F16_CHUNK`-element
/// chunk of both operands into stack `f32` scratch once, combines in
/// `f32` with the operator match hoisted out of the loop, and narrows
/// the chunk back once. Each element still sees exactly
/// `F16::from_f32(op(a.to_f32(), b.to_f32()))`, so the result is
/// bit-identical to [`reduce_f16_per_element`].
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f16_serial(acc: &mut [F16], inc: &[F16], op: ReduceOp) {
    assert_eq!(acc.len(), inc.len(), "reduce kernel length mismatch");
    let mut wa = [0.0f32; F16_CHUNK];
    let mut wb = [0.0f32; F16_CHUNK];
    for (ac, ic) in acc.chunks_mut(F16_CHUNK).zip(inc.chunks(F16_CHUNK)) {
        let n = ac.len();
        for (w, a) in wa[..n].iter_mut().zip(ac.iter()) {
            *w = a.to_f32();
        }
        for (w, b) in wb[..n].iter_mut().zip(ic.iter()) {
            *w = b.to_f32();
        }
        match op {
            ReduceOp::Sum => {
                for (a, &b) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *a += b;
                }
            }
            ReduceOp::Min => {
                for (a, &b) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *a = a.min(b);
                }
            }
            ReduceOp::Max => {
                for (a, &b) in wa[..n].iter_mut().zip(&wb[..n]) {
                    *a = a.max(b);
                }
            }
        }
        for (a, &w) in ac.iter_mut().zip(&wa[..n]) {
            *a = F16::from_f32(w);
        }
    }
}

/// [`reduce_f16_serial`] fanned out over the worker pool above
/// [`PAR_THRESHOLD`] elements; bit-identical to the serial kernel.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn reduce_f16(acc: &mut [F16], inc: &[F16], op: ReduceOp) {
    assert_eq!(acc.len(), inc.len(), "reduce kernel length mismatch");
    if acc.len() < PAR_THRESHOLD {
        return reduce_f16_serial(acc, inc, op);
    }
    let ptr = SendPtr(acc.as_mut_ptr());
    parallel_for(acc.len(), PAR_MIN_CHUNK, move |r| {
        // SAFETY: disjoint ranges → disjoint subslices.
        let a = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        reduce_f16_serial(a, &inc[r], op);
    });
}

/// Parallel elementwise map `dst[i] = f(&src[i])` — the shape of every
/// wire codec (F16 encode/decode, Q15.16 quantize/dequantize, top-k key
/// extraction). Short inputs run inline; long ones fan out over the
/// pool in disjoint ranges, so `f` must be pure per element.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn par_map<T, U, F>(src: &[T], dst: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert_eq!(src.len(), dst.len(), "map kernel length mismatch");
    if src.len() < PAR_THRESHOLD {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = f(s);
        }
        return;
    }
    let ptr = SendPtr(dst.as_mut_ptr());
    parallel_for(src.len(), PAR_MIN_CHUNK, move |r| {
        // SAFETY: disjoint ranges → disjoint subslices.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        for (dv, sv) in d.iter_mut().zip(&src[r]) {
            *dv = f(sv);
        }
    });
}

/// Parallel F16 wire encode: `dst[i] = F16::from_f32(src[i])`.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn f16_encode(src: &[f32], dst: &mut [F16]) {
    par_map(src, dst, |&v| F16::from_f32(v));
}

/// Parallel F16 wire decode: `dst[i] = src[i].to_f32()`.
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn f16_decode(src: &[F16], dst: &mut [f32]) {
    par_map(src, dst, |v| v.to_f32());
}

/// Serial axpy row update `c[j] += a * b[j]` — the GEMM inner loop,
/// kept monomorphic here so the blocked GEMM's parallel row blocks and
/// the serial reference share one auto-vectorized body.
pub fn axpy(c: &mut [f32], b: &[f32], a: f32) {
    for (cj, &bj) in c.iter_mut().zip(b) {
        *cj += a * bj;
    }
}

/// Runs `f(chunk_index, chunk)` over `data` split into consecutive
/// `chunk`-element chunks (last one short), fanning chunks out across
/// the pool when `data` clears [`PAR_THRESHOLD`]. Chunks are disjoint,
/// so per-chunk writes race-free; `f` must not depend on chunk order.
///
/// # Panics
///
/// Panics when `chunk` is zero.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let len = data.len();
    if len < PAR_THRESHOLD {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let n_chunks = len.div_ceil(chunk);
    let ptr = SendPtr(data.as_mut_ptr());
    parallel_for(n_chunks, 1, move |r| {
        for i in r {
            let start = i * chunk;
            let end = len.min(start + chunk);
            // SAFETY: chunk index ranges are disjoint across tasks, so
            // the derived element ranges are too.
            let c = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
            f(i, c);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_partitions_exactly() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits: Vec<AtomicU64> = (0..100_000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), 1 << 10, |r| {
            for h in &hits[r] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_propagates_panics() {
        let outcome = std::panic::catch_unwind(|| {
            parallel_for(1 << 18, 1 << 10, |r| {
                assert!(r.start != 0, "deliberate failure in first range");
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn reduce_f32_matches_apply_reference() {
        let n = (1 << 16) + 37; // above threshold, not a chunk multiple
        let a0: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let mut reference = a0.clone();
            for (r, &bv) in reference.iter_mut().zip(&b) {
                *r = op.apply(*r, bv);
            }
            let mut parallel = a0.clone();
            reduce_f32(&mut parallel, &b, op);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn reduce_f16_chunked_matches_per_element() {
        let n = (1 << 16) + F16_CHUNK / 2 + 3;
        let a0: Vec<F16> = (0..n).map(|i| F16::from_f32(i as f32 * 0.37)).collect();
        let b: Vec<F16> = (0..n)
            .map(|i| F16::from_f32(1.0 - i as f32 * 0.11))
            .collect();
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let mut reference = a0.clone();
            reduce_f16_per_element(&mut reference, &b, op);
            let mut chunked = a0.clone();
            reduce_f16(&mut chunked, &b, op);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn codecs_round_trip() {
        let n = (1 << 16) + 11;
        let src: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 100.0).collect();
        let mut half = vec![F16::ZERO; n];
        f16_encode(&src, &mut half);
        let mut wide = vec![0.0f32; n];
        f16_decode(&half, &mut wide);
        for (i, (&h, &w)) in half.iter().zip(&wide).enumerate() {
            assert_eq!(F16::from_f32(src[i]).to_bits(), h.to_bits());
            assert_eq!(h.to_f32().to_bits(), w.to_bits());
        }
    }

    #[test]
    fn parallel_chunks_cover_all_chunks() {
        let mut data = vec![0u32; (1 << 16) + 123];
        let chunk = 1000;
        parallel_chunks_mut(&mut data, chunk, |i, c| {
            for v in c.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / chunk) as u32 + 1);
        }
    }
}
