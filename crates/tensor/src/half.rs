//! A software IEEE 754 binary16 ("half precision") implementation.
//!
//! The paper's workloads run mixed-precision (FP16 parameters/gradients,
//! FP32 optimizer state). There is no half-precision primitive in stable
//! Rust, so [`F16`] stores the 16 raw bits and converts through `f32` for
//! arithmetic — the same semantics as CUDA `__half` arithmetic promoted to
//! float, which is what the generated kernels in the paper do for the
//! mixed-precision case (§5.2, "Mixed Precision").

use std::cmp::Ordering;
use std::fmt;

/// IEEE 754 binary16 floating point number stored as its raw bit pattern.
///
/// Arithmetic is performed by converting to `f32`, operating, and rounding
/// back to the nearest representable half (round-to-nearest-even), so
/// `F16` arithmetic matches hardware half-precision up to that rounding.
///
/// # Examples
///
/// ```
/// use coconet_tensor::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!((x + x).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// The machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw bit representation.
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable half
    /// (round-to-nearest-even, overflow to infinity).
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if mantissa == 0 {
                F16(sign | 0x7C00)
            } else {
                // Preserve a quiet NaN with some payload bits.
                F16(sign | 0x7E00 | ((mantissa >> 13) as u16 & 0x01FF))
            };
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Too large: round to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal half range.
            let half_exp = (unbiased + 15) as u16;
            let half_man = (mantissa >> 13) as u16;
            let mut h = sign | (half_exp << 10) | half_man;
            // Round to nearest even on the truncated 13 bits.
            let round_bits = mantissa & 0x1FFF;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent: correct behaviour
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal half range.
            let full_man = mantissa | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_man = (full_man >> shift) as u16;
            let mut h = sign | half_man;
            let round_mask = 1u32 << (shift - 1);
            let sticky_mask = round_mask - 1;
            let round = full_man & round_mask != 0;
            let sticky = full_man & sticky_mask != 0;
            if round && (sticky || (half_man & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every half is representable in `f32`).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = (self.0 >> 10) & 0x1F;
        let man = u32::from(self.0 & 0x03FF);

        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, _) => {
                // Subnormal: normalize.
                let mut exp32: i32 = -14 + 127;
                let mut m = man;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    exp32 -= 1;
                }
                m &= 0x03FF;
                sign | ((exp32 as u32) << 23) | (m << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, _) => sign | 0x7FC0_0000 | (man << 13),
            _ => sign | ((u32::from(exp) + 112) << 23) | (man << 13),
        };
        f32::from_bits(bits)
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> F16 {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> f32 {
        value.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

macro_rules! impl_f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_f16_binop!(Add, add, +);
impl_f16_binop!(Sub, sub, -);
impl_f16_binop!(Mul, mul, *);
impl_f16_binop!(Div, div, /);

impl std::ops::Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn simple_values() {
        for v in [0.5f32, 1.0, 1.5, 2.0, -3.25, 100.0, 0.099975586] {
            let h = F16::from_f32(v);
            assert!((h.to_f32() - v).abs() <= v.abs() * 0.001 + 1e-6, "{v}");
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_infinite());
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        // 65520 rounds to infinity (midpoint rounds to even => infinity).
        assert!(F16::from_f32(65520.0).is_infinite());
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-12).to_f32(), 0.0);
        let neg = F16::from_f32(-1e-12);
        assert_eq!(neg.to_f32(), 0.0);
        assert_eq!(neg.to_bits(), 0x8000, "sign of zero preserved");
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.to_f32(), tiny);
        // A mid-range subnormal.
        let v = 3.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(v).to_f32(), v);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10; must round to 1.0 (even).
        let v = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v), F16::ONE);
        // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; rounds up to even.
        let v = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_f32(), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
    }

    #[test]
    fn arithmetic() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.5);
        assert_eq!((a + b).to_f32(), 4.0);
        assert_eq!((a - b).to_f32(), -1.0);
        assert_eq!((a * b).to_f32(), 3.75);
        assert_eq!((b / a).to_f32(), F16::from_f32(2.5 / 1.5).to_f32());
        assert_eq!((-a).to_f32(), -1.5);
    }

    /// The ULP of the half-precision value nearest `v`: `2^(e-10)` for
    /// a normal with unbiased exponent `e`, the constant `2^-24` in
    /// the subnormal range.
    fn f16_ulp(v: f32) -> f32 {
        let mag = v.abs();
        if mag < 2.0f32.powi(-14) {
            2.0f32.powi(-24)
        } else {
            // Exact unbiased exponent from the f32 bit pattern (the
            // magnitude is normal in f32 whenever it is normal in f16),
            // clamped to the normal-half exponents.
            let e = (((mag.to_bits() >> 23) & 0xFF) as i32 - 127).clamp(-14, 15);
            2.0f32.powi(e - 10)
        }
    }

    #[test]
    fn nan_inf_subnormal_pinned() {
        // NaN: any f32 NaN encodes to a half NaN, sign and quietness
        // aside, and decodes back to an f32 NaN.
        for nan in [f32::NAN, -f32::NAN, f32::from_bits(0x7F80_0001)] {
            let h = F16::from_f32(nan);
            assert!(h.is_nan());
            assert!(h.to_f32().is_nan());
        }
        // Infinities roundtrip exactly, signs preserved.
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        // The subnormal boundary values are exact.
        let min_sub = 2.0f32.powi(-24); // smallest positive subnormal
        let max_sub = 2.0f32.powi(-14) - 2.0f32.powi(-24); // largest subnormal
        for v in [min_sub, -min_sub, max_sub, -max_sub] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "{v}");
        }
        // Half of the smallest subnormal is a tie to zero (round to
        // even), and anything strictly below that underflows too.
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_f32(), 0.0);
        assert_eq!(F16::from_f32(-2.0f32.powi(-25)).to_bits(), 0x8000);
        // Just above the tie rounds up to the smallest subnormal.
        assert_eq!(F16::from_f32(1.1 * 2.0f32.powi(-25)).to_f32(), min_sub);
    }

    proptest! {
        /// The round-trip error of encode/decode is at most half a ULP
        /// of the destination format for every finite `f32` inside the
        /// half range — the bound round-to-nearest-even guarantees,
        /// and the bound the FP16 wire format's loss analysis quotes.
        #[test]
        fn conversion_error_within_half_ulp(bits in any::<u32>()) {
            let v = f32::from_bits(bits);
            // Constrain to finite values inside the half range: above
            // 65520 the correct answer is infinity, handled separately.
            prop_assume!(v.is_finite() && v.abs() < 65520.0);
            let h = F16::from_f32(v);
            prop_assert!(h.is_finite(), "in-range input stayed finite");
            let err = (h.to_f32() - v).abs();
            let bound = f16_ulp(v) / 2.0;
            prop_assert!(
                err <= bound,
                "|{} - {}| = {err} > ulp/2 = {bound}", h.to_f32(), v
            );
        }

        /// Values beyond the finite half range round to infinity, and
        /// every finite half decodes/encodes losslessly.
        #[test]
        fn out_of_range_overflows_and_halves_roundtrip(bits in any::<u16>()) {
            let h = F16::from_bits(bits);
            prop_assume!(!h.is_nan());
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), h.to_bits());
            // Push the magnitude past the range: overflow to infinity.
            let big = h.to_f32() * 3.0 + 1e6 * h.to_f32().signum();
            if big != 0.0 {
                prop_assert!(F16::from_f32(big * 65536.0).is_infinite() || big.abs() < 65520.0);
            }
        }
    }

    proptest! {
        /// Converting f16 -> f32 -> f16 is the identity on all bit patterns
        /// (modulo NaN payload, which must stay NaN).
        #[test]
        fn bits_roundtrip(bits in any::<u16>()) {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                prop_assert!(back.is_nan());
            } else {
                prop_assert_eq!(h.to_bits(), back.to_bits());
            }
        }

        /// from_f32 never increases the error beyond half the ulp-ish bound.
        #[test]
        fn conversion_error_bounded(v in -60000.0f32..60000.0) {
            let h = F16::from_f32(v);
            let err = (h.to_f32() - v).abs();
            // Relative error bounded by 2^-11 for normals, absolute by 2^-25
            // for subnormals.
            prop_assert!(err <= v.abs() * 2.0f32.powi(-11) + 2.0f32.powi(-25));
        }

        /// Ordering agrees with f32 ordering.
        #[test]
        fn ordering_consistent(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
            let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
            prop_assert_eq!(
                ha.partial_cmp(&hb),
                ha.to_f32().partial_cmp(&hb.to_f32())
            );
        }
    }
}
