//! Thread-local buffer-allocation accounting.
//!
//! The paper's central claim is about *bytes moved*: fused kernels win
//! because they eliminate redundant materializations at the
//! computation/communication boundary (§5). To let the runtime and the
//! benches assert copy elimination rather than eyeball it, every fresh
//! [`Tensor`](crate::Tensor) buffer materialization is counted here —
//! including the copy-on-write unsharing copies the [`Arc`]-backed
//! storage performs when a shared buffer is written.
//!
//! Counters are **per thread**. The distributed runtime runs one rank
//! per OS thread, so a rank's ledger is simply the delta of this
//! thread's counters over the timed region — no cross-rank
//! synchronization, no contention on the hot paths.
//!
//! [`Arc`]: std::sync::Arc

use std::cell::Cell;
use std::ops::Sub;

/// A snapshot of this thread's buffer-allocation counters.
///
/// `cow_*` is the subset of `alloc_*` that was triggered by writing a
/// shared or sliced buffer (the copy-on-write materializations); the
/// rest are ordinary fresh allocations (`zeros`, `from_fn`, …).
///
/// # Examples
///
/// ```
/// use coconet_tensor::{alloc_stats, DType, Tensor};
///
/// let before = alloc_stats();
/// let a = Tensor::zeros([1024], DType::F32);
/// let mut b = a.clone(); // handle copy: no allocation
/// b.set(0, 1.0); // copy-on-write: one materialization
/// let d = alloc_stats().since(before);
/// assert_eq!(d.cow_copies, 1);
/// assert_eq!(d.cow_bytes, 4096);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Fresh buffer materializations on this thread.
    pub allocations: u64,
    /// Bytes of those materializations.
    pub bytes_allocated: u64,
    /// Copy-on-write materializations (shared/sliced buffer written).
    pub cow_copies: u64,
    /// Bytes copied by copy-on-write materializations.
    pub cow_bytes: u64,
}

impl AllocStats {
    /// The counters accumulated since an earlier snapshot.
    #[must_use]
    pub fn since(self, baseline: AllocStats) -> AllocStats {
        self - baseline
    }
}

impl Sub for AllocStats {
    type Output = AllocStats;

    // Saturating: a baseline captured on another thread (whose
    // counters ran ahead) must clamp to zero, not underflow.
    fn sub(self, rhs: AllocStats) -> AllocStats {
        AllocStats {
            allocations: self.allocations.saturating_sub(rhs.allocations),
            bytes_allocated: self.bytes_allocated.saturating_sub(rhs.bytes_allocated),
            cow_copies: self.cow_copies.saturating_sub(rhs.cow_copies),
            cow_bytes: self.cow_bytes.saturating_sub(rhs.cow_bytes),
        }
    }
}

thread_local! {
    static STATS: Cell<AllocStats> = const { Cell::new(AllocStats {
        allocations: 0,
        bytes_allocated: 0,
        cow_copies: 0,
        cow_bytes: 0,
    }) };
}

/// This thread's buffer-allocation counters, monotonically increasing
/// since the thread started. Diff two snapshots with
/// [`AllocStats::since`] to meter a region.
pub fn alloc_stats() -> AllocStats {
    STATS.with(Cell::get)
}

#[inline]
pub(crate) fn record_alloc(bytes: usize) {
    STATS.with(|s| {
        let mut v = s.get();
        v.allocations += 1;
        v.bytes_allocated += bytes as u64;
        s.set(v);
    });
}

#[inline]
pub(crate) fn record_cow(bytes: usize) {
    STATS.with(|s| {
        let mut v = s.get();
        v.allocations += 1;
        v.bytes_allocated += bytes as u64;
        v.cow_copies += 1;
        v.cow_bytes += bytes as u64;
        s.set(v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Tensor};

    #[test]
    fn fresh_allocations_are_counted() {
        let before = alloc_stats();
        let _t = Tensor::zeros([16], DType::F32);
        let d = alloc_stats().since(before);
        assert_eq!(d.allocations, 1);
        assert_eq!(d.bytes_allocated, 64);
        assert_eq!(d.cow_copies, 0);
    }

    #[test]
    fn clones_and_views_do_not_allocate() {
        let t = Tensor::from_fn([32], DType::F16, |i| i as f32);
        let before = alloc_stats();
        let c = t.clone();
        let v = t.slice_flat(4, 8).unwrap();
        let d = alloc_stats().since(before);
        assert_eq!(d.allocations, 0, "clone {c:?} and view {v:?} allocated");
    }

    #[test]
    fn cow_is_counted_once_per_unshare() {
        let t = Tensor::zeros([8], DType::F32);
        let mut c = t.clone();
        let before = alloc_stats();
        c.set(0, 1.0);
        c.set(1, 2.0); // already unshared: no second copy
        let d = alloc_stats().since(before);
        assert_eq!(d.cow_copies, 1);
        assert_eq!(d.cow_bytes, 32);
    }
}
