//! The dense tensor type backing the functional runtime.

use crate::{CounterRng, DType, Shape, TensorError, F16};

/// Storage for tensor elements, one variant per [`DType`].
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Buffer {
    F16(Vec<F16>),
    F32(Vec<f32>),
}

impl Buffer {
    fn len(&self) -> usize {
        match self {
            Buffer::F16(v) => v.len(),
            Buffer::F32(v) => v.len(),
        }
    }
}

/// A dense, row-major tensor on the (simulated) device.
///
/// This is the substrate the paper's generated CUDA kernels operate on;
/// here the same operations run on the CPU so that transformed programs
/// can be executed and compared against their untransformed originals.
///
/// Values are read and written through `f32` (the widest supported type);
/// FP16 tensors round on store, mirroring mixed-precision GPU kernels.
///
/// # Examples
///
/// ```
/// use coconet_tensor::{DType, Shape, Tensor};
///
/// let a = Tensor::full(Shape::from([2, 2]), DType::F32, 3.0);
/// let b = Tensor::full(Shape::from([2, 2]), DType::F32, 4.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.get(3), 7.0);
/// # Ok::<(), coconet_tensor::TensorError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    buf: Buffer,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>, dtype: DType) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let buf = match dtype {
            DType::F16 => Buffer::F16(vec![F16::ZERO; n]),
            DType::F32 => Buffer::F32(vec![0.0; n]),
        };
        Tensor { shape, buf }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, dtype: DType, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let buf = match dtype {
            DType::F16 => Buffer::F16(vec![F16::from_f32(value); n]),
            DType::F32 => Buffer::F32(vec![value; n]),
        };
        Tensor { shape, buf }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(dtype: DType, value: f32) -> Tensor {
        Tensor::full(Shape::scalar(), dtype, value)
    }

    /// A tensor whose element at linear index `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, dtype: DType, f: impl Fn(usize) -> f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let buf = match dtype {
            DType::F16 => Buffer::F16((0..n).map(|i| F16::from_f32(f(i))).collect()),
            DType::F32 => Buffer::F32((0..n).map(f).collect()),
        };
        Tensor { shape, buf }
    }

    /// A tensor built from explicit `f32` data (rounded for FP16 tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not match
    /// the shape's element count.
    pub fn from_f32(
        shape: impl Into<Shape>,
        dtype: DType,
        data: &[f32],
    ) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor::from_fn(shape, dtype, |i| data[i]))
    }

    /// A tensor of standard-normal values drawn from the deterministic
    /// counter RNG: element `i` is `rng.normal_at(offset + i)`, so two
    /// ranks materializing different slices of the same logical tensor
    /// see consistent values.
    pub fn randn(shape: impl Into<Shape>, dtype: DType, rng: CounterRng, offset: u64) -> Tensor {
        Tensor::from_fn(shape, dtype, |i| rng.normal_at(offset + i as u64) as f32)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    #[inline]
    pub fn dtype(&self) -> DType {
        match self.buf {
            Buffer::F16(_) => DType::F16,
            Buffer::F32(_) => DType::F32,
        }
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.buf.len()
    }

    /// Size of the tensor's storage in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// Reads element `i` (linear, row-major) as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.numel()`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        match &self.buf {
            Buffer::F16(v) => v[i].to_f32(),
            Buffer::F32(v) => v[i],
        }
    }

    /// Writes element `i` (linear, row-major), rounding for FP16 tensors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.numel()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: f32) {
        match &mut self.buf {
            Buffer::F16(v) => v[i] = F16::from_f32(value),
            Buffer::F32(v) => v[i] = value,
        }
    }

    /// Copies all elements out as `f32`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        (0..self.numel()).map(|i| self.get(i)).collect()
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::DataLength {
                expected: self.numel(),
                actual: shape.numel(),
            });
        }
        Ok(Tensor {
            shape,
            buf: self.buf.clone(),
        })
    }

    /// Converts to another element type (no-op when equal).
    pub fn cast(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype() {
            return self.clone();
        }
        Tensor::from_fn(self.shape.clone(), dtype, |i| self.get(i))
    }

    /// Elementwise comparison within mixed absolute/relative tolerance:
    /// `|a - b| <= atol + rtol * |b|` for every element.
    ///
    /// Shapes and dtypes must match exactly; otherwise returns `false`.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        (0..self.numel()).all(|i| {
            let (a, b) = (self.get(i), other.get(i));
            if a.is_nan() || b.is_nan() {
                return false;
            }
            (a - b).abs() <= atol + rtol * b.abs()
        })
    }

    /// The maximum absolute elementwise difference (∞-norm of `a - b`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires identical shapes"
        );
        (0..self.numel())
            .map(|i| (self.get(i) - other.get(i)).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3], DType::F16);
        assert_eq!(z.numel(), 6);
        assert_eq!(z.dtype(), DType::F16);
        assert_eq!(z.size_bytes(), 12);
        assert!(z.to_f32_vec().iter().all(|&x| x == 0.0));

        let f = Tensor::full([4], DType::F32, 2.5);
        assert!(f.to_f32_vec().iter().all(|&x| x == 2.5));

        let s = Tensor::scalar(DType::F32, 7.0);
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.get(0), 7.0);

        let iota = Tensor::from_fn([3], DType::F32, |i| i as f32);
        assert_eq!(iota.to_f32_vec(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn from_f32_validates_length() {
        assert!(Tensor::from_f32([2, 2], DType::F32, &[1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_f32([2, 2], DType::F32, &[1.0; 3]),
            Err(TensorError::DataLength {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn f16_rounds_on_store() {
        let mut t = Tensor::zeros([1], DType::F16);
        t.set(0, 1.0 + 2.0f32.powi(-12)); // rounds to 1.0 in f16
        assert_eq!(t.get(0), 1.0);
        let mut t = Tensor::zeros([1], DType::F32);
        t.set(0, 1.0 + 2.0f32.powi(-12));
        assert!(t.get(0) > 1.0);
    }

    #[test]
    fn randn_offset_consistency() {
        // A rank materializing elements [4..8) of a logical [8] tensor
        // sees the same values as the full materialization.
        let rng = CounterRng::new(99);
        let full = Tensor::randn([8], DType::F32, rng, 0);
        let slice = Tensor::randn([4], DType::F32, rng, 4);
        for i in 0..4 {
            assert_eq!(full.get(4 + i), slice.get(i));
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.to_f32_vec(), t.to_f32_vec());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn cast_roundtrip() {
        let t = Tensor::from_fn([4], DType::F32, |i| i as f32 + 0.5);
        let h = t.cast(DType::F16);
        assert_eq!(h.dtype(), DType::F16);
        let back = h.cast(DType::F32);
        assert_eq!(back.to_f32_vec(), t.to_f32_vec()); // exact for small values
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::full([3], DType::F32, 1.0);
        let mut b = a.clone();
        assert!(a.allclose(&b, 0.0, 0.0));
        b.set(1, 1.001);
        assert!(!a.allclose(&b, 0.0, 1e-4));
        assert!(a.allclose(&b, 1e-2, 0.0));
        assert!((a.max_abs_diff(&b) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn allclose_rejects_mismatched_meta() {
        let a = Tensor::zeros([2], DType::F32);
        assert!(!a.allclose(&Tensor::zeros([3], DType::F32), 1.0, 1.0));
        assert!(!a.allclose(&Tensor::zeros([2], DType::F16), 1.0, 1.0));
    }
}
