//! The dense tensor type backing the functional runtime.

use std::sync::Arc;

use crate::{stats, CounterRng, DType, Shape, TensorError, F16};

/// The owned element storage, one variant per [`DType`].
#[derive(Debug, PartialEq)]
pub(crate) enum BufferData {
    F16(Vec<F16>),
    F32(Vec<f32>),
}

impl BufferData {
    fn len(&self) -> usize {
        match self {
            BufferData::F16(v) => v.len(),
            BufferData::F32(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            BufferData::F16(_) => DType::F16,
            BufferData::F32(_) => DType::F32,
        }
    }
}

/// A copy-on-write window into shared element storage.
///
/// Cloning a `Buffer` copies the [`Arc`] handle, not the elements, and
/// `(offset, len)` lets [`Tensor::slice_flat`] hand out chunk views of
/// the same allocation — the substrate that makes `comm.send` a handle
/// transfer and the ring collectives copy-free (§5's "don't materialize
/// what you can alias"). The first *write* through a shared or sliced
/// handle materializes a private copy of exactly the window
/// ([`Buffer::unshare`]), so aliasing is never observable: two tensors
/// may share bytes, never updates.
#[derive(Clone, Debug)]
pub(crate) struct Buffer {
    data: Arc<BufferData>,
    offset: usize,
    len: usize,
}

impl Buffer {
    fn from_data(data: BufferData) -> Buffer {
        stats::record_alloc(data.len() * data.dtype().size_bytes());
        Buffer {
            len: data.len(),
            data: Arc::new(data),
            offset: 0,
        }
    }

    pub(crate) fn from_f32_vec(v: Vec<f32>) -> Buffer {
        Buffer::from_data(BufferData::F32(v))
    }

    pub(crate) fn from_f16_vec(v: Vec<F16>) -> Buffer {
        Buffer::from_data(BufferData::F16(v))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// A zero-copy sub-window. Caller checks bounds.
    fn view(&self, start: usize, len: usize) -> Buffer {
        debug_assert!(start + len <= self.len);
        Buffer {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len,
        }
    }

    /// Whether two buffers share the same underlying allocation.
    fn shares_data(&self, other: &Buffer) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    #[inline]
    fn get(&self, i: usize) -> f32 {
        debug_assert!(i < self.len);
        match &*self.data {
            BufferData::F16(v) => v[self.offset + i].to_f32(),
            BufferData::F32(v) => v[self.offset + i],
        }
    }

    pub(crate) fn as_f32(&self) -> Option<&[f32]> {
        match &*self.data {
            BufferData::F32(v) => Some(&v[self.offset..self.offset + self.len]),
            BufferData::F16(_) => None,
        }
    }

    pub(crate) fn as_f16(&self) -> Option<&[F16]> {
        match &*self.data {
            BufferData::F16(v) => Some(&v[self.offset..self.offset + self.len]),
            BufferData::F32(_) => None,
        }
    }

    /// Ensures this handle exclusively owns a full-range allocation,
    /// materializing a private copy of the window if it is shared or
    /// sliced — the copy-on-write step, counted in
    /// [`alloc_stats`](crate::alloc_stats).
    fn unshare(&mut self) {
        let full = self.offset == 0 && self.len == self.data.len();
        if full && Arc::get_mut(&mut self.data).is_some() {
            return;
        }
        let owned = match &*self.data {
            BufferData::F16(v) => BufferData::F16(v[self.offset..self.offset + self.len].to_vec()),
            BufferData::F32(v) => BufferData::F32(v[self.offset..self.offset + self.len].to_vec()),
        };
        stats::record_cow(self.len * self.dtype().size_bytes());
        self.data = Arc::new(owned);
        self.offset = 0;
    }

    /// Mutable access to the elements, unsharing first.
    pub(crate) fn make_mut(&mut self) -> &mut BufferData {
        self.unshare();
        Arc::get_mut(&mut self.data).expect("unique after unshare")
    }

    pub(crate) fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        // Check the dtype before unsharing: a probe on an F16 buffer
        // must not trigger a pointless copy-on-write materialization.
        if matches!(&*self.data, BufferData::F16(_)) {
            return None;
        }
        match self.make_mut() {
            BufferData::F32(v) => Some(v),
            BufferData::F16(_) => unreachable!("dtype checked above"),
        }
    }

    #[inline]
    fn set(&mut self, i: usize, value: f32) {
        debug_assert!(i < self.len);
        match self.make_mut() {
            BufferData::F16(v) => v[i] = F16::from_f32(value),
            BufferData::F32(v) => v[i] = value,
        }
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Buffer) -> bool {
        if self.len != other.len {
            return false;
        }
        match (&*self.data, &*other.data) {
            (BufferData::F16(a), BufferData::F16(b)) => {
                a[self.offset..self.offset + self.len] == b[other.offset..other.offset + other.len]
            }
            (BufferData::F32(a), BufferData::F32(b)) => {
                a[self.offset..self.offset + self.len] == b[other.offset..other.offset + other.len]
            }
            _ => false,
        }
    }
}

/// A dense, row-major tensor on the (simulated) device.
///
/// This is the substrate the paper's generated CUDA kernels operate on;
/// here the same operations run on the CPU so that transformed programs
/// can be executed and compared against their untransformed originals.
///
/// Values are read and written through `f32` (the widest supported type);
/// FP16 tensors round on store, mirroring mixed-precision GPU kernels.
///
/// Storage is an [`Arc`]-backed copy-on-write buffer: `clone` and
/// [`slice_flat`](Tensor::slice_flat) are O(1) handle operations that
/// share the allocation (so sending a tensor between ranks moves a
/// handle, not the elements), and the first *write* through a shared
/// handle materializes a private copy of exactly the written window.
/// Aliasing is therefore never observable through the API — tensors
/// share bytes, never updates — which the copy-on-write property suite
/// machine-checks across every mutating operation.
///
/// # Examples
///
/// ```
/// use coconet_tensor::{DType, Shape, Tensor};
///
/// let a = Tensor::full(Shape::from([2, 2]), DType::F32, 3.0);
/// let b = Tensor::full(Shape::from([2, 2]), DType::F32, 4.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.get(3), 7.0);
/// # Ok::<(), coconet_tensor::TensorError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    pub(crate) shape: Shape,
    pub(crate) buf: Buffer,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>, dtype: DType) -> Tensor {
        Tensor::full(shape, dtype, 0.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, dtype: DType, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let buf = match dtype {
            DType::F16 => Buffer::from_f16_vec(vec![F16::from_f32(value); n]),
            DType::F32 => Buffer::from_f32_vec(vec![value; n]),
        };
        Tensor { shape, buf }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(dtype: DType, value: f32) -> Tensor {
        Tensor::full(Shape::scalar(), dtype, value)
    }

    /// A tensor whose element at linear index `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, dtype: DType, f: impl Fn(usize) -> f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let buf = match dtype {
            DType::F16 => Buffer::from_f16_vec((0..n).map(|i| F16::from_f32(f(i))).collect()),
            DType::F32 => Buffer::from_f32_vec((0..n).map(f).collect()),
        };
        Tensor { shape, buf }
    }

    /// Adopts an existing `f32` vector as the tensor's storage without
    /// copying (FP16 tensors still round element-wise on conversion).
    ///
    /// This is the zero-staging construction path for kernels that
    /// compute into a scratch `Vec<f32>` (the GEMM does): the vector
    /// *becomes* the buffer instead of being read back element by
    /// element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not
    /// match the shape's element count.
    pub fn from_f32_vec(
        shape: impl Into<Shape>,
        dtype: DType,
        data: Vec<f32>,
    ) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        let buf = match dtype {
            DType::F32 => Buffer::from_f32_vec(data),
            DType::F16 => Buffer::from_f16_vec(data.into_iter().map(F16::from_f32).collect()),
        };
        Ok(Tensor { shape, buf })
    }

    /// An FP16 tensor adopting `data` as its storage without a copy —
    /// the half-precision counterpart of
    /// [`from_f32_vec`](Tensor::from_f32_vec), used by the striped
    /// collectives to promote an accumulated `Vec<F16>` into the
    /// output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not
    /// match the shape's element count.
    pub fn from_f16_vec(shape: impl Into<Shape>, data: Vec<F16>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            buf: Buffer::from_f16_vec(data),
        })
    }

    /// A tensor built from explicit `f32` data (rounded for FP16 tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not match
    /// the shape's element count.
    pub fn from_f32(
        shape: impl Into<Shape>,
        dtype: DType,
        data: &[f32],
    ) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor::from_fn(shape, dtype, |i| data[i]))
    }

    /// A tensor of standard-normal values drawn from the deterministic
    /// counter RNG: element `i` is `rng.normal_at(offset + i)`, so two
    /// ranks materializing different slices of the same logical tensor
    /// see consistent values.
    pub fn randn(shape: impl Into<Shape>, dtype: DType, rng: CounterRng, offset: u64) -> Tensor {
        Tensor::from_fn(shape, dtype, |i| rng.normal_at(offset + i as u64) as f32)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.buf.dtype()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.buf.len()
    }

    /// Size of the tensor's storage in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// Reads element `i` (linear, row-major) as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.numel()`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        assert!(i < self.numel(), "index {i} out of range");
        self.buf.get(i)
    }

    /// Writes element `i` (linear, row-major), rounding for FP16
    /// tensors. Writing through a handle that shares its buffer (a
    /// clone or a [`slice_flat`](Tensor::slice_flat) view) first
    /// materializes a private copy — aliased tensors never observe each
    /// other's updates.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.numel()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: f32) {
        assert!(i < self.numel(), "index {i} out of range");
        self.buf.set(i, value);
    }

    /// The elements as a contiguous `f32` slice, when the tensor is
    /// F32 — the zero-staging read path kernels use instead of
    /// [`to_f32_vec`](Tensor::to_f32_vec). `None` for FP16 tensors.
    #[inline]
    pub fn as_f32_slice(&self) -> Option<&[f32]> {
        self.buf.as_f32()
    }

    /// The elements as a contiguous [`F16`] slice, when the tensor is
    /// FP16. `None` for F32 tensors.
    #[inline]
    pub fn as_f16_slice(&self) -> Option<&[F16]> {
        self.buf.as_f16()
    }

    /// Mutable access to the elements of an F32 tensor, unsharing the
    /// buffer first (one copy-on-write materialization at most). `None`
    /// for FP16 tensors.
    #[inline]
    pub fn as_f32_slice_mut(&mut self) -> Option<&mut [f32]> {
        self.buf.as_f32_mut()
    }

    /// Whether two tensors alias the same underlying allocation (the
    /// zero-copy relationship [`clone`](Clone::clone) and
    /// [`slice_flat`](Tensor::slice_flat) establish, broken by the
    /// first write to either side).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        self.buf.shares_data(&other.buf)
    }

    /// A materialized copy with private, full-range storage — the
    /// explicit deep copy that `clone` no longer performs. Benchmarks
    /// use it to reconstruct the pre-copy-on-write cost model.
    pub fn deep_clone(&self) -> Tensor {
        let buf = match (self.buf.as_f32(), self.buf.as_f16()) {
            (Some(v), _) => Buffer::from_f32_vec(v.to_vec()),
            (_, Some(v)) => Buffer::from_f16_vec(v.to_vec()),
            _ => unreachable!("buffer is F32 or F16"),
        };
        Tensor {
            shape: self.shape.clone(),
            buf,
        }
    }

    /// Copies all elements out as `f32`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self.buf.as_f32() {
            Some(v) => v.to_vec(),
            None => (0..self.numel()).map(|i| self.get(i)).collect(),
        }
    }

    /// A zero-copy view of the flat element range `start..start+len`
    /// as a 1-D tensor (a communication chunk). The view shares the
    /// buffer; writing either side triggers copy-on-write.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for an out-of-bounds
    /// range.
    pub fn slice_flat(&self, start: usize, len: usize) -> Result<Tensor, TensorError> {
        if start + len > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len,
                extent: self.numel(),
            });
        }
        Ok(Tensor {
            shape: Shape::from([len]),
            buf: self.buf.view(start, len),
        })
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::DataLength {
                expected: self.numel(),
                actual: shape.numel(),
            });
        }
        Ok(Tensor {
            shape,
            buf: self.buf.clone(),
        })
    }

    /// Converts to another element type (no-op when equal).
    pub fn cast(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype() {
            return self.clone();
        }
        Tensor::from_fn(self.shape.clone(), dtype, |i| self.get(i))
    }

    /// Elementwise comparison within mixed absolute/relative tolerance:
    /// `|a - b| <= atol + rtol * |b|` for every element.
    ///
    /// Shapes and dtypes must match exactly; otherwise returns `false`.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        (0..self.numel()).all(|i| {
            let (a, b) = (self.get(i), other.get(i));
            if a.is_nan() || b.is_nan() {
                return false;
            }
            (a - b).abs() <= atol + rtol * b.abs()
        })
    }

    /// The maximum absolute elementwise difference (∞-norm of `a - b`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires identical shapes"
        );
        (0..self.numel())
            .map(|i| (self.get(i) - other.get(i)).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3], DType::F16);
        assert_eq!(z.numel(), 6);
        assert_eq!(z.dtype(), DType::F16);
        assert_eq!(z.size_bytes(), 12);
        assert!(z.to_f32_vec().iter().all(|&x| x == 0.0));

        let f = Tensor::full([4], DType::F32, 2.5);
        assert!(f.to_f32_vec().iter().all(|&x| x == 2.5));

        let s = Tensor::scalar(DType::F32, 7.0);
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.get(0), 7.0);

        let iota = Tensor::from_fn([3], DType::F32, |i| i as f32);
        assert_eq!(iota.to_f32_vec(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn from_f32_validates_length() {
        assert!(Tensor::from_f32([2, 2], DType::F32, &[1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_f32([2, 2], DType::F32, &[1.0; 3]),
            Err(TensorError::DataLength {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn f16_rounds_on_store() {
        let mut t = Tensor::zeros([1], DType::F16);
        t.set(0, 1.0 + 2.0f32.powi(-12)); // rounds to 1.0 in f16
        assert_eq!(t.get(0), 1.0);
        let mut t = Tensor::zeros([1], DType::F32);
        t.set(0, 1.0 + 2.0f32.powi(-12));
        assert!(t.get(0) > 1.0);
    }

    #[test]
    fn randn_offset_consistency() {
        // A rank materializing elements [4..8) of a logical [8] tensor
        // sees the same values as the full materialization.
        let rng = CounterRng::new(99);
        let full = Tensor::randn([8], DType::F32, rng, 0);
        let slice = Tensor::randn([4], DType::F32, rng, 4);
        for i in 0..4 {
            assert_eq!(full.get(4 + i), slice.get(i));
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.to_f32_vec(), t.to_f32_vec());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn cast_roundtrip() {
        let t = Tensor::from_fn([4], DType::F32, |i| i as f32 + 0.5);
        let h = t.cast(DType::F16);
        assert_eq!(h.dtype(), DType::F16);
        let back = h.cast(DType::F32);
        assert_eq!(back.to_f32_vec(), t.to_f32_vec()); // exact for small values
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::full([3], DType::F32, 1.0);
        let mut b = a.clone();
        assert!(a.allclose(&b, 0.0, 0.0));
        b.set(1, 1.001);
        assert!(!a.allclose(&b, 0.0, 1e-4));
        assert!(a.allclose(&b, 1e-2, 0.0));
        assert!((a.max_abs_diff(&b) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn clone_shares_until_written() {
        let a = Tensor::from_fn([8], DType::F32, |i| i as f32);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.set(3, 99.0);
        assert!(!a.shares_storage(&b), "write must unshare");
        assert_eq!(a.get(3), 3.0, "original unchanged");
        assert_eq!(b.get(3), 99.0);
    }

    #[test]
    fn slice_flat_is_a_zero_copy_view() {
        let a = Tensor::from_fn([8], DType::F32, |i| i as f32);
        let v = a.slice_flat(2, 4).unwrap();
        assert!(a.shares_storage(&v));
        assert_eq!(v.shape().dims(), &[4]);
        assert_eq!(v.to_f32_vec(), vec![2.0, 3.0, 4.0, 5.0]);
        // Writing the view detaches it and leaves the parent intact.
        let mut w = v.clone();
        w.set(0, -1.0);
        assert_eq!(a.get(2), 2.0);
        assert_eq!(v.get(0), 2.0);
        assert_eq!(w.get(0), -1.0);
    }

    #[test]
    fn writing_the_parent_leaves_views_intact() {
        let mut a = Tensor::from_fn([6], DType::F16, |i| i as f32);
        let v = a.slice_flat(0, 3).unwrap();
        a.set(1, 41.0);
        assert_eq!(v.get(1), 1.0, "view reads the pre-write values");
        assert_eq!(a.get(1), 41.0);
    }

    #[test]
    fn deep_clone_never_shares() {
        let a = Tensor::from_fn([4], DType::F32, |i| i as f32);
        let d = a.deep_clone();
        assert!(!a.shares_storage(&d));
        assert_eq!(d, a);
        let s = a.slice_flat(1, 2).unwrap().deep_clone();
        assert_eq!(s.to_f32_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn from_f32_vec_adopts_storage() {
        let t = Tensor::from_f32_vec([2, 2], DType::F32, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.to_f32_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::from_f32_vec([2], DType::F16, vec![1.5, 2.5]).unwrap();
        assert_eq!(h.dtype(), DType::F16);
        assert_eq!(h.to_f32_vec(), vec![1.5, 2.5]);
        assert!(Tensor::from_f32_vec([3], DType::F32, vec![0.0]).is_err());
    }

    #[test]
    fn views_compare_by_contents() {
        let a = Tensor::from_fn([8], DType::F32, |i| (i % 4) as f32);
        let front = a.slice_flat(0, 4).unwrap();
        let back = a.slice_flat(4, 4).unwrap();
        assert_eq!(front, back, "equal contents at different offsets");
        assert_ne!(front, a.slice_flat(1, 4).unwrap());
    }

    #[test]
    fn allclose_rejects_mismatched_meta() {
        let a = Tensor::zeros([2], DType::F32);
        assert!(!a.allclose(&Tensor::zeros([3], DType::F32), 1.0, 1.0));
        assert!(!a.allclose(&Tensor::zeros([2], DType::F16), 1.0, 1.0));
    }
}
