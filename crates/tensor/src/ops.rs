//! Pointwise operations, activations, reductions, and dropout.
//!
//! These are the computation operations of Table 1 in the paper
//! (`+ - * / Norm ReduceTensor Sqrt Pow Update`, plus the activations
//! `Dropout`, `tanh`, `ReLU`). Binary operations follow PyTorch
//! broadcast semantics and promote mixed dtypes to the wider type.

use crate::tensor::BufferData;
use crate::{CounterRng, DType, Shape, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, preserving shape and dtype.
    /// F32 tensors read their buffer directly (no staging copy).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        match self.as_f32_slice() {
            Some(v) => {
                let out: Vec<f32> = v.iter().map(|&x| f(x)).collect();
                Tensor::from_f32_vec(self.shape().clone(), DType::F32, out)
                    .expect("same element count")
            }
            None => Tensor::from_fn(self.shape().clone(), self.dtype(), |i| f(self.get(i))),
        }
    }

    /// Applies `f` pairwise after broadcasting; the result has the
    /// broadcast shape and the promoted dtype. Same-shape F32 operands
    /// take a slice-to-slice fast path with no index arithmetic or
    /// staging copies.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] when the shapes cannot
    /// be broadcast together.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape() == other.shape() {
            if let (Some(a), Some(b)) = (self.as_f32_slice(), other.as_f32_slice()) {
                let out: Vec<f32> = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
                return Ok(Tensor::from_f32_vec(self.shape().clone(), DType::F32, out)
                    .expect("same element count"));
            }
        }
        let out_shape = self.shape().broadcast(other.shape())?;
        let dtype = DType::promote(self.dtype(), other.dtype());
        let lhs_shape = self.shape().clone();
        let rhs_shape = other.shape().clone();
        Ok(Tensor::from_fn(out_shape.clone(), dtype, |i| {
            let a = self.get(lhs_shape.broadcast_index(&out_shape, i));
            let b = other.get(rhs_shape.broadcast_index(&out_shape, i));
            f(a, b)
        }))
    }

    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip`].
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip`].
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip`].
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Errors
    ///
    /// See [`Tensor::zip`].
    pub fn div(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise power with constant exponent.
    pub fn powf(&self, exp: f32) -> Tensor {
        self.map(|a| a.powf(exp))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|a| a.max(0.0))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|a| -a)
    }

    /// Dropout with drop probability `p`, scaling kept elements by
    /// `1 / (1 - p)` (inverted dropout, as in PyTorch).
    ///
    /// The mask for the element at *global* linear index
    /// `global_offset + i` is a pure function of `(rng, that index)`, so
    /// executing dropout on a slice of a tensor produces exactly the
    /// slice of the masks the full tensor would see — the property the
    /// `reorder` transformation relies on (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidProbability`] unless `0 <= p < 1`.
    pub fn dropout(
        &self,
        p: f64,
        rng: CounterRng,
        global_offset: u64,
    ) -> Result<Tensor, TensorError> {
        if !(0.0..1.0).contains(&p) {
            return Err(TensorError::InvalidProbability("dropout".into()));
        }
        let scale = (1.0 / (1.0 - p)) as f32;
        Ok(Tensor::from_fn(self.shape().clone(), self.dtype(), |i| {
            if rng.keep_at(global_offset + i as u64, p) {
                self.get(i) * scale
            } else {
                0.0
            }
        }))
    }

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        (0..self.numel()).map(|i| f64::from(self.get(i))).sum()
    }

    /// Sum of squares of all elements, accumulated in `f64`.
    pub fn sum_squares(&self) -> f64 {
        (0..self.numel())
            .map(|i| {
                let v = f64::from(self.get(i));
                v * v
            })
            .sum()
    }

    /// L2 norm of the flattened tensor (the paper's `Norm`).
    pub fn norm(&self) -> f64 {
        self.sum_squares().sqrt()
    }

    /// In-place update: `self = f(self)` elementwise. This is the
    /// paper's `Update` operation, which overwrites a tensor and makes
    /// the new value visible at that position of the data-flow graph.
    /// The buffer is unshared once up front, so the loop writes
    /// directly (no per-element copy-on-write checks).
    pub fn update(&mut self, f: impl Fn(f32) -> f32) {
        match self.buf.make_mut() {
            BufferData::F32(v) => {
                for x in v.iter_mut() {
                    *x = f(*x);
                }
            }
            BufferData::F16(v) => {
                for x in v.iter_mut() {
                    *x = crate::F16::from_f32(f(x.to_f32()));
                }
            }
        }
    }

    /// In-place elementwise assignment from another tensor of identical
    /// shape. Same-dtype assignments are a single block copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().clone(),
                actual: other.shape().clone(),
            });
        }
        if self.dtype() == other.dtype() {
            // write_flat only reads element count and dtype — no need
            // to flatten `other` first.
            return self.write_flat(0, other);
        }
        for i in 0..self.numel() {
            self.set(i, other.get(i));
        }
        Ok(())
    }

    /// In-place reduction: `self[i] = op(self[i], incoming[i])` for
    /// every element, the hot loop of every ring collective. The
    /// element counts must match (shapes may differ — collectives
    /// reduce 1-D chunks into tensor windows); F32 pairs reduce slice
    /// against slice with no staging.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when the element counts
    /// differ and [`TensorError::DTypeMismatch`] on dtype disagreement.
    pub fn reduce_assign(&mut self, incoming: &Tensor, op: ReduceOp) -> Result<(), TensorError> {
        if incoming.numel() != self.numel() {
            return Err(TensorError::DataLength {
                expected: self.numel(),
                actual: incoming.numel(),
            });
        }
        if incoming.dtype() != self.dtype() {
            return Err(TensorError::DTypeMismatch {
                expected: self.dtype(),
                actual: incoming.dtype(),
            });
        }
        match self.buf.make_mut() {
            BufferData::F32(acc) => {
                let inc = incoming.buf.as_f32().expect("dtype checked");
                crate::kernels::reduce_f32(acc, inc, op);
            }
            BufferData::F16(acc) => {
                let inc = incoming.buf.as_f16().expect("dtype checked");
                crate::kernels::reduce_f16(acc, inc, op);
            }
        }
        Ok(())
    }

    /// In-place reduction of `incoming` into the flat element window
    /// `start..start+incoming.numel()` of `self` — how the collectives
    /// fold a received chunk into a preallocated output without
    /// slicing it out and writing it back.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for an out-of-bounds
    /// window and [`TensorError::DTypeMismatch`] on dtype disagreement.
    pub fn reduce_flat(
        &mut self,
        start: usize,
        incoming: &Tensor,
        op: ReduceOp,
    ) -> Result<(), TensorError> {
        let n = incoming.numel();
        if start + n > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len: n,
                extent: self.numel(),
            });
        }
        if incoming.dtype() != self.dtype() {
            return Err(TensorError::DTypeMismatch {
                expected: self.dtype(),
                actual: incoming.dtype(),
            });
        }
        match self.buf.make_mut() {
            BufferData::F32(acc) => {
                let inc = incoming.buf.as_f32().expect("dtype checked");
                crate::kernels::reduce_f32(&mut acc[start..start + n], inc, op);
            }
            BufferData::F16(acc) => {
                let inc = incoming.buf.as_f16().expect("dtype checked");
                crate::kernels::reduce_f16(&mut acc[start..start + n], inc, op);
            }
        }
        Ok(())
    }
}

/// Reduces a list of same-shaped tensors elementwise with `f`,
/// accumulating through `f32`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] or [`TensorError::DTypeMismatch`]
/// when inputs disagree, and [`TensorError::DataLength`] when `tensors`
/// is empty.
pub fn reduce_elementwise(
    tensors: &[&Tensor],
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, TensorError> {
    let first = tensors.first().ok_or(TensorError::DataLength {
        expected: 1,
        actual: 0,
    })?;
    for t in &tensors[1..] {
        if t.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: first.shape().clone(),
                actual: t.shape().clone(),
            });
        }
        if t.dtype() != first.dtype() {
            return Err(TensorError::DTypeMismatch {
                expected: first.dtype(),
                actual: t.dtype(),
            });
        }
    }
    Ok(Tensor::from_fn(first.shape().clone(), first.dtype(), |i| {
        tensors[1..]
            .iter()
            .fold(first.get(i), |acc, t| f(acc, t.get(i)))
    }))
}

/// The reduction operator of a collective (NCCL supports sum/min/max;
/// the paper's fused collectives extend reductions beyond these, which
/// the runtime models with compute hooks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Applies the operator to two values.
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The identity element of the operator.
    #[inline]
    pub fn identity(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f32::INFINITY,
            ReduceOp::Max => f32::NEG_INFINITY,
        }
    }
}

impl std::fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceOp::Sum => write!(f, "+"),
            ReduceOp::Min => write!(f, "min"),
            ReduceOp::Max => write!(f, "max"),
        }
    }
}

/// An empty shape-compatible reduction seed for [`ReduceOp`].
pub fn reduce_identity(shape: &Shape, dtype: DType, op: ReduceOp) -> Tensor {
    Tensor::full(shape.clone(), dtype, op.identity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iota(n: usize) -> Tensor {
        Tensor::from_fn([n], DType::F32, |i| i as f32)
    }

    #[test]
    fn arithmetic_with_broadcast() {
        let a = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let row = Tensor::from_fn([3], DType::F32, |i| 10.0 * (i as f32 + 1.0));
        let sum = a.add(&row).unwrap();
        assert_eq!(sum.to_f32_vec(), vec![10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
        let col = Tensor::from_fn([2, 1], DType::F32, |i| i as f32 + 1.0);
        let prod = a.mul(&col).unwrap();
        assert_eq!(prod.to_f32_vec(), vec![0.0, 1.0, 2.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn mixed_precision_promotes() {
        let h = Tensor::full([2], DType::F16, 1.5);
        let f = Tensor::full([2], DType::F32, 0.25);
        let out = h.add(&f).unwrap();
        assert_eq!(out.dtype(), DType::F32);
        assert_eq!(out.to_f32_vec(), vec![1.75, 1.75]);
    }

    #[test]
    fn unary_ops() {
        let t = Tensor::from_f32([4], DType::F32, &[-1.0, 0.0, 4.0, 9.0]).unwrap();
        assert_eq!(t.relu().to_f32_vec(), vec![0.0, 0.0, 4.0, 9.0]);
        assert_eq!(t.neg().to_f32_vec(), vec![1.0, 0.0, -4.0, -9.0]);
        let s = t.relu().sqrt();
        assert_eq!(s.to_f32_vec(), vec![0.0, 0.0, 2.0, 3.0]);
        assert_eq!(t.powf(2.0).to_f32_vec(), vec![1.0, 0.0, 16.0, 81.0]);
        assert!((t.tanh().get(2) - 4.0f32.tanh()).abs() < 1e-6);
        assert_eq!(t.add_scalar(1.0).get(0), 0.0);
        assert_eq!(t.mul_scalar(2.0).get(2), 8.0);
    }

    #[test]
    fn reductions() {
        let t = iota(5);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.sum_squares(), 30.0);
        assert!((t.norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn update_and_assign() {
        let mut t = iota(3);
        t.update(|x| x * 2.0);
        assert_eq!(t.to_f32_vec(), vec![0.0, 2.0, 4.0]);
        let other = Tensor::full([3], DType::F32, 9.0);
        t.assign(&other).unwrap();
        assert_eq!(t.to_f32_vec(), vec![9.0, 9.0, 9.0]);
        assert!(t.assign(&iota(4)).is_err());
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let t = iota(16);
        let rng = CounterRng::new(5);
        let d = t.dropout(0.0, rng, 0).unwrap();
        assert_eq!(d.to_f32_vec(), t.to_f32_vec());
    }

    #[test]
    fn dropout_rejects_bad_probability() {
        let t = iota(4);
        let rng = CounterRng::new(5);
        assert!(t.dropout(1.0, rng, 0).is_err());
        assert!(t.dropout(-0.1, rng, 0).is_err());
    }

    #[test]
    fn dropout_slice_consistency() {
        // The heart of the `reorder` transformation: dropout on slice k
        // of a tensor equals slice k of dropout on the whole tensor.
        let n = 64;
        let t = Tensor::from_fn([n], DType::F32, |i| i as f32 + 1.0);
        let rng = CounterRng::new(7);
        let full = t.dropout(0.5, rng, 0).unwrap();
        let k = 4;
        let part = n / k;
        for r in 0..k {
            let slice = Tensor::from_fn([part], DType::F32, |i| t.get(r * part + i));
            let sliced_drop = slice.dropout(0.5, rng, (r * part) as u64).unwrap();
            for i in 0..part {
                assert_eq!(sliced_drop.get(i), full.get(r * part + i));
            }
        }
    }

    #[test]
    fn dropout_scales_kept_values() {
        let t = Tensor::full([1000], DType::F32, 1.0);
        let rng = CounterRng::new(13);
        let d = t.dropout(0.25, rng, 0).unwrap();
        for i in 0..d.numel() {
            let v = d.get(i);
            assert!(v == 0.0 || (v - 1.0 / 0.75).abs() < 1e-6);
        }
        // Expectation is preserved (law of large numbers).
        let mean = d.sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn reduce_elementwise_sums() {
        let a = iota(3);
        let b = Tensor::full([3], DType::F32, 1.0);
        let c = Tensor::full([3], DType::F32, 2.0);
        let out = reduce_elementwise(&[&a, &b, &c], |x, y| x + y).unwrap();
        assert_eq!(out.to_f32_vec(), vec![3.0, 4.0, 5.0]);
        assert!(reduce_elementwise(&[], |x, _| x).is_err());
        assert!(reduce_elementwise(&[&a, &iota(4)], |x, _| x).is_err());
    }

    #[test]
    fn reduce_op_table() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Min.identity(), f32::INFINITY);
        assert_eq!(ReduceOp::Max.identity(), f32::NEG_INFINITY);
        assert_eq!(ReduceOp::Sum.to_string(), "+");
    }

    proptest! {
        /// add/sub round-trip within f32 exactness for small integers.
        #[test]
        fn add_sub_roundtrip(v in prop::collection::vec(-100i32..100, 1..20)) {
            let n = v.len();
            let a = Tensor::from_fn([n], DType::F32, |i| v[i] as f32);
            let b = Tensor::full([n], DType::F32, 17.0);
            let r = a.add(&b).unwrap().sub(&b).unwrap();
            prop_assert_eq!(r.to_f32_vec(), a.to_f32_vec());
        }

        /// Dropout keeps expectation within statistical tolerance.
        #[test]
        fn dropout_expectation(seed in any::<u64>()) {
            let t = Tensor::full([2048], DType::F32, 1.0);
            let d = t.dropout(0.5, CounterRng::new(seed), 0).unwrap();
            let mean = d.sum() / 2048.0;
            prop_assert!((mean - 1.0).abs() < 0.15);
        }
    }
}
