//! Counter-based random number generation for dropout.
//!
//! The `reorder` transformation (§3.2 of the paper) moves a `Dropout`
//! from executing on a *replicated* tensor to executing on a *sliced*
//! tensor, one slice per rank. For the transformation to be semantics
//! preserving, the dropout mask for global element `i` must be the same
//! whether the op runs on the whole tensor or on the slice containing
//! `i`. A stateful RNG cannot provide this; a counter-based generator
//! keyed by `(seed, global element index)` can — the same design as the
//! Philox generator cuRAND uses inside fused GPU kernels.

/// A counter-based pseudo-random generator.
///
/// Stateless: the random value for element `i` is a pure function of
/// `(seed, i)`. Built on two rounds of the SplitMix64 finalizer, which
/// passes practical uniformity needs for dropout masks.
///
/// # Examples
///
/// ```
/// use coconet_tensor::CounterRng;
///
/// let rng = CounterRng::new(42);
/// // The same (seed, index) always produces the same value...
/// assert_eq!(rng.u64_at(7), CounterRng::new(42).u64_at(7));
/// // ...and different indices produce different values.
/// assert_ne!(rng.u64_at(7), rng.u64_at(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterRng {
    seed: u64,
}

impl CounterRng {
    /// Creates a generator with the given seed.
    pub const fn new(seed: u64) -> CounterRng {
        CounterRng { seed }
    }

    /// The seed this generator was created with.
    pub const fn seed(self) -> u64 {
        self.seed
    }

    /// The raw 64-bit random word at counter position `index`.
    #[inline]
    pub fn u64_at(self, index: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        // Second round decorrelates consecutive counters further.
        z = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^ (z >> 32)
    }

    /// A uniform value in `[0, 1)` at counter position `index`.
    #[inline]
    pub fn uniform_at(self, index: u64) -> f64 {
        // 53 high bits -> [0, 1) double.
        (self.u64_at(index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The Bernoulli keep-decision for dropout with drop probability `p`
    /// at counter position `index` (`true` means keep).
    #[inline]
    pub fn keep_at(self, index: u64, p: f64) -> bool {
        self.uniform_at(index) >= p
    }

    /// A standard-normal sample at counter position `index`
    /// (Box–Muller over two derived uniforms), used to initialize test
    /// tensors deterministically.
    pub fn normal_at(self, index: u64) -> f64 {
        let u1 = self.uniform_at(index.wrapping_mul(2)).max(1e-300);
        let u2 = self.uniform_at(index.wrapping_mul(2).wrapping_add(1));
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let a = CounterRng::new(1);
        let b = CounterRng::new(1);
        for i in 0..100 {
            assert_eq!(a.u64_at(i), b.u64_at(i));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = CounterRng::new(1);
        let b = CounterRng::new(2);
        let same = (0..1000).filter(|&i| a.u64_at(i) == b.u64_at(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_range_and_mean() {
        let rng = CounterRng::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = rng.uniform_at(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn keep_rate_matches_probability() {
        let rng = CounterRng::new(3);
        let n = 20_000u64;
        for p in [0.0, 0.1, 0.5, 0.9] {
            let kept = (0..n).filter(|&i| rng.keep_at(i, p)).count() as f64;
            let rate = kept / n as f64;
            assert!((rate - (1.0 - p)).abs() < 0.02, "p={p} rate={rate}");
        }
    }

    #[test]
    fn normal_moments() {
        let rng = CounterRng::new(11);
        let n = 20_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let x = rng.normal_at(i);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    proptest! {
        /// Counter independence: the value at index i never depends on
        /// how many other indices were sampled (pure function).
        #[test]
        fn pure_function(seed in any::<u64>(), i in any::<u64>()) {
            let rng = CounterRng::new(seed);
            let first = rng.u64_at(i);
            let _ = rng.u64_at(i.wrapping_add(1));
            prop_assert_eq!(rng.u64_at(i), first);
        }

        /// Adjacent counters differ (no short cycles).
        #[test]
        fn adjacent_differ(seed in any::<u64>(), i in 0u64..u64::MAX - 1) {
            let rng = CounterRng::new(seed);
            prop_assert_ne!(rng.u64_at(i), rng.u64_at(i + 1));
        }
    }
}
