//! 2-D convolution (Table 1 lists Convolution among the supported
//! layers).
//!
//! NCHW layout, OIHW weights, symmetric stride/padding — the subset
//! cuDNN's `cudnnConvolutionForward` covers that the DSL exposes.

use crate::{DType, Shape, Tensor, TensorError};

/// Convolution geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dParams {
    /// Unit stride, no padding.
    pub const fn identity() -> Conv2dParams {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }

    /// Output spatial extent for an input extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Option<usize> {
        (input + 2 * self.padding)
            .checked_sub(kernel)
            .map(|v| v / self.stride + 1)
    }
}

impl Tensor {
    /// 2-D convolution: `self` is `[N, C, H, W]`, `weight` is
    /// `[K, C, R, S]`; the result is `[N, K, H', W']` with
    /// `H' = (H + 2p - R)/stride + 1`. Accumulation is in `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulDims`]-style shape errors when the
    /// ranks are not 4, the channel counts disagree, or the kernel does
    /// not fit the padded input.
    pub fn conv2d(&self, weight: &Tensor, params: Conv2dParams) -> Result<Tensor, TensorError> {
        let x = self.shape();
        let w = weight.shape();
        if x.rank() != 4 || w.rank() != 4 || x.dim(1) != w.dim(1) {
            return Err(TensorError::MatMulDims {
                lhs: x.clone(),
                rhs: w.clone(),
            });
        }
        let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (k, _, r, s) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
        if params.stride == 0 {
            return Err(TensorError::MatMulDims {
                lhs: x.clone(),
                rhs: w.clone(),
            });
        }
        let (Some(oh), Some(ow)) = (params.out_extent(h, r), params.out_extent(wd, s)) else {
            return Err(TensorError::MatMulDims {
                lhs: x.clone(),
                rhs: w.clone(),
            });
        };
        if oh == 0 || ow == 0 {
            return Err(TensorError::MatMulDims {
                lhs: x.clone(),
                rhs: w.clone(),
            });
        }

        let dtype = DType::promote(self.dtype(), weight.dtype());
        let mut out = Tensor::zeros(Shape::from([n, k, oh, ow]), dtype);
        let xi = |ni: usize, ci: usize, hi: usize, wi: usize| {
            self.get(((ni * c + ci) * h + hi) * wd + wi)
        };
        let wi = |ki: usize, ci: usize, ri: usize, si: usize| {
            weight.get(((ki * c + ci) * r + ri) * s + si)
        };
        let p = params.padding as isize;
        let stride = params.stride as isize;
        for ni in 0..n {
            for ki in 0..k {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..c {
                            for ri in 0..r {
                                for si in 0..s {
                                    let hy = ohi as isize * stride + ri as isize - p;
                                    let wx = owi as isize * stride + si as isize - p;
                                    if hy >= 0 && wx >= 0 && (hy as usize) < h && (wx as usize) < wd
                                    {
                                        acc += xi(ni, ci, hy as usize, wx as usize)
                                            * wi(ki, ci, ri, si);
                                    }
                                }
                            }
                        }
                        out.set(((ni * k + ki) * oh + ohi) * ow + owi, acc);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1.0 is the identity.
        let x = Tensor::from_fn([1, 1, 3, 3], DType::F32, |i| i as f32);
        let w = Tensor::full([1, 1, 1, 1], DType::F32, 1.0);
        let y = x.conv2d(&w, Conv2dParams::identity()).unwrap();
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.to_f32_vec(), x.to_f32_vec());
    }

    #[test]
    fn box_filter_sums_neighborhood() {
        let x = Tensor::full([1, 1, 4, 4], DType::F32, 1.0);
        let w = Tensor::full([1, 1, 3, 3], DType::F32, 1.0);
        let y = x.conv2d(&w, Conv2dParams::identity()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert!(y.to_f32_vec().iter().all(|&v| v == 9.0));
        // With padding 1 the corners see a 2x2 window.
        let y = x
            .conv2d(
                &w,
                Conv2dParams {
                    stride: 1,
                    padding: 1,
                },
            )
            .unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(y.get(0), 4.0);
        assert_eq!(y.get(5), 9.0);
    }

    #[test]
    fn stride_downsamples() {
        let x = Tensor::from_fn([1, 1, 4, 4], DType::F32, |i| i as f32);
        let w = Tensor::full([1, 1, 2, 2], DType::F32, 1.0);
        let y = x
            .conv2d(
                &w,
                Conv2dParams {
                    stride: 2,
                    padding: 0,
                },
            )
            .unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        // Window at (0,0): 0+1+4+5 = 10.
        assert_eq!(y.get(0), 10.0);
    }

    #[test]
    fn channels_and_filters() {
        // 2 input channels, 3 filters; each filter sums its channels.
        let x = Tensor::from_fn([1, 2, 2, 2], DType::F32, |i| i as f32);
        let w = Tensor::from_fn([3, 2, 1, 1], DType::F32, |i| (i / 2) as f32);
        let y = x.conv2d(&w, Conv2dParams::identity()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 2, 2]);
        // Filter 0 has weights (0, 0): all zeros.
        assert_eq!(y.get(0), 0.0);
        // Filter 1 has weights (1, 1): sums channel values.
        let expect = x.get(0) + x.get(4);
        assert_eq!(y.get(4), expect);
    }

    #[test]
    fn shape_errors() {
        let x = Tensor::zeros([1, 2, 4, 4], DType::F32);
        let w_badc = Tensor::zeros([1, 3, 2, 2], DType::F32);
        assert!(x.conv2d(&w_badc, Conv2dParams::identity()).is_err());
        let w_toobig = Tensor::zeros([1, 2, 5, 5], DType::F32);
        assert!(x.conv2d(&w_toobig, Conv2dParams::identity()).is_err());
        let w3 = Tensor::zeros([2, 2, 2], DType::F32);
        assert!(x.conv2d(&w3, Conv2dParams::identity()).is_err());
        let w = Tensor::zeros([1, 2, 2, 2], DType::F32);
        assert!(x
            .conv2d(
                &w,
                Conv2dParams {
                    stride: 0,
                    padding: 0
                }
            )
            .is_err());
    }

    #[test]
    fn conv_is_gemm_for_1x1() {
        // 1x1 convolution == matmul over channels at each pixel.
        let x = Tensor::from_fn([1, 3, 2, 2], DType::F32, |i| (i % 5) as f32);
        let w = Tensor::from_fn([4, 3, 1, 1], DType::F32, |i| (i % 3) as f32);
        let y = x.conv2d(&w, Conv2dParams::identity()).unwrap();
        for ki in 0..4 {
            for px in 0..4 {
                let mut acc = 0.0;
                for ci in 0..3 {
                    acc += x.get(ci * 4 + px) * w.get(ki * 3 + ci);
                }
                assert_eq!(y.get(ki * 4 + px), acc);
            }
        }
    }
}
