//! Element data types supported by the tensor substrate.

use std::fmt;

/// The element type of a [`Tensor`](crate::Tensor).
///
/// The paper's workloads use FP16 for parameters/gradients and FP32 for
/// optimizer state ("mixed precision", §5.2). Both are supported here.
///
/// # Examples
///
/// ```
/// use coconet_tensor::DType;
///
/// assert_eq!(DType::F16.size_bytes(), 2);
/// assert_eq!(DType::promote(DType::F16, DType::F32), DType::F32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// IEEE 754 binary16.
    F16,
    /// IEEE 754 binary32.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
        }
    }

    /// The wider of two element types, used when a binary operation mixes
    /// precisions (mirrors the paper's mixed-precision rule: compute in the
    /// largest element type, §5.2).
    #[inline]
    pub const fn promote(a: DType, b: DType) -> DType {
        match (a, b) {
            (DType::F16, DType::F16) => DType::F16,
            _ => DType::F32,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F16 => write!(f, "FP16"),
            DType::F32 => write!(f, "FP32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
    }

    #[test]
    fn promotion_is_commutative_and_monotone() {
        for a in [DType::F16, DType::F32] {
            for b in [DType::F16, DType::F32] {
                assert_eq!(DType::promote(a, b), DType::promote(b, a));
                assert!(DType::promote(a, b) >= a);
                assert!(DType::promote(a, b) >= b);
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(DType::F16.to_string(), "FP16");
        assert_eq!(DType::F32.to_string(), "FP32");
    }
}
