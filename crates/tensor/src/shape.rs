//! Tensor shapes and PyTorch-style broadcasting.
//!
//! The DSL's pointwise operations follow PyTorch broadcast semantics
//! (§2.2 of the paper explicitly defers to them): shapes are aligned at
//! the trailing dimension and each pair of dimensions must be equal or
//! one of them must be 1.

use std::fmt;

use crate::TensorError;

/// The extents of a tensor, row-major (C order).
///
/// # Examples
///
/// ```
/// use coconet_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Shape {
        Shape { dims }
    }

    /// The scalar (rank 0) shape.
    pub fn scalar() -> Shape {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.rank()`.
    #[inline]
    pub fn dim(&self, dim: usize) -> usize {
        self.dims[dim]
    }

    /// Total number of elements (1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns the broadcasted shape of `self` and `other` under PyTorch
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] when a pair of aligned
    /// dimensions differ and neither is 1.
    #[allow(clippy::needless_range_loop)] // aligned triple-indexing reads clearer
    pub fn broadcast(&self, other: &Shape) -> Result<Shape, TensorError> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.dims[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.dims[i - (rank - other.rank())]
            };
            dims[i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::BroadcastMismatch {
                    lhs: self.clone(),
                    rhs: other.clone(),
                });
            };
        }
        Ok(Shape::new(dims))
    }

    /// Whether `self` can be broadcast to exactly `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Ok(b) => &b == target,
            Err(_) => false,
        }
    }

    /// Converts a linear index in the broadcasted `target` shape to the
    /// linear index in `self`, replicating along broadcast dimensions.
    ///
    /// Used by the pointwise kernels to read a smaller operand as if it
    /// had been materialized at the broadcast shape.
    pub fn broadcast_index(&self, target: &Shape, linear: usize) -> usize {
        debug_assert!(self.broadcasts_to(target));
        if self.dims == target.dims {
            return linear;
        }
        let t_strides = target.strides();
        let s_strides = self.strides();
        let offset = target.rank() - self.rank();
        let mut out = 0usize;
        for (i, (&t_dim_stride, &t_dim)) in t_strides.iter().zip(target.dims()).enumerate() {
            let coord = (linear / t_dim_stride) % t_dim;
            if i >= offset {
                let s_dim = self.dims[i - offset];
                let c = if s_dim == 1 { 0 } else { coord };
                out += c * s_strides[i - offset];
            }
        }
        out
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Shape {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.to_string(), "[2, 3, 4]");
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_trailing_alignment() {
        let a = Shape::from([4, 3]);
        let b = Shape::from([3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::from([4, 3]));
        let c = Shape::from([2, 1, 3]);
        assert_eq!(a.broadcast(&c).unwrap(), Shape::from([2, 4, 3]));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::from([4, 3]);
        assert_eq!(a.broadcast(&Shape::scalar()).unwrap(), a);
    }

    #[test]
    fn broadcast_mismatch() {
        let a = Shape::from([4, 3]);
        let b = Shape::from([2]);
        assert!(matches!(
            a.broadcast(&b),
            Err(TensorError::BroadcastMismatch { .. })
        ));
    }

    #[test]
    fn broadcasts_to() {
        assert!(Shape::from([3]).broadcasts_to(&Shape::from([4, 3])));
        assert!(!Shape::from([4, 3]).broadcasts_to(&Shape::from([3])));
        assert!(Shape::scalar().broadcasts_to(&Shape::from([5])));
    }

    #[test]
    fn broadcast_index_replicates() {
        // [3] broadcast to [2, 3]: index (i, j) maps to j.
        let small = Shape::from([3]);
        let big = Shape::from([2, 3]);
        for linear in 0..6 {
            assert_eq!(small.broadcast_index(&big, linear), linear % 3);
        }
        // [2, 1] broadcast to [2, 3]: index (i, j) maps to i.
        let small = Shape::from([2, 1]);
        for linear in 0..6 {
            assert_eq!(small.broadcast_index(&big, linear), linear / 3);
        }
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop::collection::vec(1usize..5, 0..4).prop_map(Shape::new)
    }

    proptest! {
        /// Broadcasting is commutative.
        #[test]
        fn broadcast_commutative(a in arb_shape(), b in arb_shape()) {
            match (a.broadcast(&b), b.broadcast(&a)) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "one direction failed"),
            }
        }

        /// A shape always broadcasts to itself and to its broadcast result.
        #[test]
        fn broadcast_reflexive(a in arb_shape(), b in arb_shape()) {
            prop_assert!(a.broadcasts_to(&a));
            if let Ok(c) = a.broadcast(&b) {
                prop_assert!(a.broadcasts_to(&c));
                prop_assert!(b.broadcasts_to(&c));
            }
        }

        /// broadcast_index stays in bounds.
        #[test]
        fn broadcast_index_in_bounds(a in arb_shape(), b in arb_shape()) {
            if let Ok(c) = a.broadcast(&b) {
                for linear in 0..c.numel() {
                    prop_assert!(a.broadcast_index(&c, linear) < a.numel());
                }
            }
        }
    }
}
