//! # coconet-tensor
//!
//! CPU tensor substrate for the CoCoNet reproduction (ASPLOS'22,
//! "Breaking the Computation and Communication Abstraction Barrier in
//! Distributed Machine Learning Workloads").
//!
//! The paper's generated kernels run on NVIDIA GPUs; this crate provides
//! the equivalent *functional* substrate on the CPU so that transformed
//! programs can be executed for real and compared bit-for-bit (up to
//! FP16 rounding) against their untransformed originals:
//!
//! - [`F16`] — software IEEE 754 half precision (mixed-precision
//!   workloads);
//! - [`Shape`] — row-major shapes with PyTorch broadcast semantics;
//! - [`Tensor`] — dense tensors with the pointwise ops, activations,
//!   reductions and GEMM of the paper's Table 1, backed by `Arc`
//!   copy-on-write buffers whose clones and flat slices are zero-copy
//!   views (the substrate of the runtime's handle-transfer sends);
//! - [`SparseChunk`] — the `(index, value)` wire representation of a
//!   top-k sparsified tensor, the payload of the runtime's compressed
//!   collectives;
//! - [`CounterRng`] — the counter-based RNG that makes `Dropout`
//!   produce identical masks under the `reorder` transformation;
//! - [`alloc_stats`] — per-thread buffer-allocation and copy-on-write
//!   counters, the data-movement evidence the runtime's bytes ledger
//!   and the zero-copy benches assert against.
//!
//! # Examples
//!
//! ```
//! use coconet_tensor::{CounterRng, DType, Tensor};
//!
//! // A tiny mixed-precision fused epilogue: dropout(x + b) + r.
//! let x = Tensor::full([2, 4], DType::F16, 1.0);
//! let b = Tensor::full([4], DType::F16, 0.5);
//! let r = Tensor::full([2, 4], DType::F16, 0.25);
//! let rng = CounterRng::new(42);
//! let out = x.add(&b)?.dropout(0.1, rng, 0)?.add(&r)?;
//! assert_eq!(out.shape().dims(), &[2, 4]);
//! # Ok::<(), coconet_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

mod conv;
mod dtype;
mod error;
mod half;
pub mod kernels;
mod matmul;
mod ops;
mod rng;
mod shape;
mod slice;
mod sparse;
mod stats;
mod tensor;

pub use conv::Conv2dParams;
pub use dtype::DType;
pub use error::TensorError;
pub use half::F16;
pub use ops::{reduce_elementwise, reduce_identity, ReduceOp};
pub use rng::CounterRng;
pub use shape::Shape;
pub use sparse::{SparseChunk, SPARSE_ENTRY_BYTES};
pub use stats::{alloc_stats, AllocStats};
pub use tensor::Tensor;
