//! The `split` transformation (§3.1).

use crate::{CoreError, OpKind, Program, VarId};

use super::invalid;

/// Splits an AllReduce into a ReduceScatter followed by an AllGather
/// (the paper's `ARSplitRSAG` policy); consumers of the AllReduce are
/// rewired to the AllGather.
///
/// Returns `(rs, ag)`.
///
/// "Since an AllReduce can always be split to a ReduceScatter and an
/// AllGather, this transformation is always valid" — the only failure
/// modes are passing something that is not an AllReduce.
///
/// # Errors
///
/// Returns [`CoreError::ExpectedOp`] when `ar` is not an AllReduce and
/// [`CoreError::UnknownVar`] when it is dead.
///
/// # Examples
///
/// ```
/// use coconet_core::{xform, DType, Layout, Program, ReduceOp};
///
/// let mut p = Program::new("adam_step");
/// let g = p.input("g", DType::F16, ["N"], Layout::Local);
/// let avg = p.all_reduce(ReduceOp::Sum, g)?;
/// p.set_io(&[g], &[avg])?;
/// let (rs, ag) = xform::split_all_reduce(&mut p, avg)?;
/// assert_eq!(p.outputs(), &[ag]);
/// assert!(p.ty(rs)?.layout.is_sliced());
/// # Ok::<(), coconet_core::CoreError>(())
/// ```
pub fn split_all_reduce(p: &mut Program, ar: VarId) -> Result<(VarId, VarId), CoreError> {
    let node = p.node(ar)?;
    let (op, input) = match node.op() {
        OpKind::AllReduce(op, input) => (*op, *input),
        other => {
            return Err(CoreError::ExpectedOp {
                expected: "AllReduce".into(),
                found: other.mnemonic(),
            });
        }
    };
    if p.fusion_group_of(ar).is_some() {
        return Err(invalid(
            "split",
            "AllReduce is already inside a fusion group",
        ));
    }
    let base = node.name().to_string();
    let rs = p.reduce_scatter(op, input)?;
    p.set_name(rs, format!("rs{base}"))?;
    let ag = p.all_gather(rs)?;
    p.set_name(ag, format!("ag{base}"))?;
    p.replace_uses(ar, ag);
    p.mark_deleted(ar);
    p.remove_from_groups(ar);
    p.reinfer()?;
    Ok((rs, ag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Layout, ReduceOp};

    fn simple_program() -> (Program, VarId, VarId) {
        let mut p = Program::new("t");
        let g = p.input("g", DType::F16, ["N"], Layout::Local);
        let sum = p.all_reduce(ReduceOp::Sum, g).unwrap();
        p.set_name(sum, "sum").unwrap();
        let two = p.constant(2.0);
        let out = p.mul(sum, two).unwrap();
        p.set_io(&[g], &[out]).unwrap();
        (p, sum, out)
    }

    #[test]
    fn split_rewires_consumers() {
        let (mut p, sum, out) = simple_program();
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        p.validate().unwrap();
        // The multiply now reads the AllGather.
        assert!(p.op(out).unwrap().inputs().contains(&ag));
        // Types: rs sliced, ag replicated.
        assert!(p.ty(rs).unwrap().layout.is_sliced());
        assert_eq!(p.ty(ag).unwrap().layout, Layout::Replicated);
        // The original AllReduce is gone.
        assert!(p.node(sum).is_err());
        // Names follow the paper's convention.
        assert_eq!(p.node(rs).unwrap().name(), "rssum");
        assert_eq!(p.node(ag).unwrap().name(), "agsum");
    }

    #[test]
    fn split_replaces_program_outputs() {
        let mut p = Program::new("t");
        let g = p.input("g", DType::F16, ["N"], Layout::Local);
        let sum = p.all_reduce(ReduceOp::Sum, g).unwrap();
        p.set_io(&[g], &[sum]).unwrap();
        let (_, ag) = split_all_reduce(&mut p, sum).unwrap();
        assert_eq!(p.outputs(), &[ag]);
    }

    #[test]
    fn split_rejects_non_allreduce() {
        let (mut p, _, out) = simple_program();
        assert!(matches!(
            split_all_reduce(&mut p, out),
            Err(CoreError::ExpectedOp { .. })
        ));
    }

    #[test]
    fn split_twice_fails() {
        let (mut p, sum, _) = simple_program();
        split_all_reduce(&mut p, sum).unwrap();
        assert!(split_all_reduce(&mut p, sum).is_err());
    }
}
