//! The `overlap` transformation (§3.4).
//!
//! Overlap schedules a producer–consumer chain of operations to execute
//! with fine-grained chunk pipelining (§5.3): the MatMul produces
//! chunks in the order the ring AllReduce consumes them, or a
//! ReduceScatter / P2P / AllGather pipeline streams buffer tiles across
//! the NVLink and InfiniBand fabrics simultaneously (Figure 7b).
//!
//! Like fusion, overlap is a schedule annotation: the program's
//! semantics are unchanged.

use std::collections::HashSet;

use crate::{CoreError, OverlapGroup, Program, VarId};

use super::invalid;

/// Overlaps the given stages (the paper's
/// `overlap(layer, fusedAR)` / `overlap(rsSum, scSend, agOut)`).
///
/// Each stage id may name any node; if the node belongs to a fusion
/// group the whole group becomes the stage. Validity (§3.4):
/// "Overlapping multiple operations is valid only when all operations
/// have a producer-consumer relationship between them" — each stage
/// must read a value produced by the previous stage.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTransform`] when fewer than two stages
/// are given, a stage repeats, consecutive stages lack a
/// producer–consumer edge, or a stage already belongs to an overlap
/// group.
pub fn overlap(p: &mut Program, stages: &[VarId]) -> Result<(), CoreError> {
    if stages.len() < 2 {
        return Err(invalid(
            "overlap",
            "need at least two operations to overlap",
        ));
    }
    // Expand each stage to its fusion group (or itself).
    let mut expanded: Vec<Vec<VarId>> = Vec::with_capacity(stages.len());
    for &s in stages {
        p.node(s)?;
        let members = match p.fusion_group_of(s) {
            Some(idx) => p.fusion_groups()[idx].members.clone(),
            None => vec![s],
        };
        expanded.push(members);
    }
    // Stages must be disjoint.
    let mut seen: HashSet<VarId> = HashSet::new();
    for stage in &expanded {
        for &m in stage {
            if !seen.insert(m) {
                return Err(invalid(
                    "overlap",
                    format!("{} appears in more than one stage", p.node(m)?.name()),
                ));
            }
        }
    }
    // No member may already be scheduled in an overlap group.
    for g in p.overlap_groups() {
        for m in &g.members {
            if seen.contains(m) {
                return Err(invalid(
                    "overlap",
                    format!("{} is already overlapped", p.node(*m)?.name()),
                ));
            }
        }
    }
    // Producer-consumer rule between consecutive stages.
    for pair in expanded.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        let prev_set: HashSet<VarId> = prev.iter().copied().collect();
        let connected = next.iter().any(|&n| {
            p.node(n)
                .map(|node| node.op().inputs().iter().any(|i| prev_set.contains(i)))
                .unwrap_or(false)
        });
        if !connected {
            return Err(invalid(
                "overlap",
                "consecutive stages have no producer-consumer relationship",
            ));
        }
    }
    let members: Vec<VarId> = expanded.into_iter().flatten().collect();
    p.add_overlap_group(OverlapGroup { members });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::{fuse_all_reduce, reorder_all_gather, split_all_reduce};
    use crate::{DType, Layout, Program, ReduceOp};

    /// Builds the paper's program 4 of Figure 4 (overlap(MatMul, FusedAR)).
    fn overlapped_example() -> (Program, VarId, VarId) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag]).unwrap();
        (p, layer, rs)
    }

    #[test]
    fn overlap_matmul_with_fused_allreduce() {
        let (mut p, layer, rs) = overlapped_example();
        overlap(&mut p, &[layer, rs]).unwrap();
        p.validate().unwrap();
        assert_eq!(p.overlap_groups().len(), 1);
        let group = &p.overlap_groups()[0];
        // The group contains the MatMul plus the whole fused collective.
        assert!(group.members.contains(&layer));
        assert!(group.members.contains(&rs));
        assert!(group.members.len() >= 4);
    }

    #[test]
    fn overlap_requires_producer_consumer() {
        let mut p = Program::new("t");
        let a = p.input("a", DType::F32, ["N"], Layout::Local);
        let b = p.input("b", DType::F32, ["N"], Layout::Local);
        let ar_a = p.all_reduce(ReduceOp::Sum, a).unwrap();
        let ar_b = p.all_reduce(ReduceOp::Sum, b).unwrap();
        p.set_io(&[a, b], &[ar_a, ar_b]).unwrap();
        // Independent collectives: no producer-consumer edge.
        assert!(matches!(
            overlap(&mut p, &[ar_a, ar_b]),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn overlap_rejects_single_stage_and_duplicates() {
        let (mut p, layer, rs) = overlapped_example();
        assert!(overlap(&mut p, &[layer]).is_err());
        assert!(overlap(&mut p, &[layer, layer]).is_err());
        overlap(&mut p, &[layer, rs]).unwrap();
        // Overlapping the same ops again is rejected.
        assert!(overlap(&mut p, &[layer, rs]).is_err());
    }
}
