//! Optimizer-state slicing: `asSlice` and `dead` (§4, Figure 6b).
//!
//! After a `reorder`, optimizer state updates compute on slices but the
//! state tensors are still declared replicated, and AllGathers
//! re-materialize them each step. `asSlice(m)` commits a state tensor
//! to *stay* sliced across iterations — "slices optimizer states on all
//! ranks to decrease memory usage" — after which the corresponding
//! AllGather is dead and can be removed with `dead(agM)`.

use crate::{CoreError, Layout, OpKind, Program, VarId};

use super::invalid;

/// Changes a declared replicated input tensor to the flat-sliced
/// layout, removing now-redundant `Slice(...)` nodes on it.
///
/// # Errors
///
/// Returns [`CoreError::ExpectedOp`] when `input` is not a declared
/// input tensor, and [`CoreError::InvalidTransform`] when the tensor is
/// not replicated or a consumer cannot type-check against the sliced
/// layout (e.g. it is still read as a whole tensor somewhere).
pub fn as_slice(p: &mut Program, input: VarId) -> Result<(), CoreError> {
    let node = p.node(input)?;
    if !matches!(node.op(), OpKind::Input) {
        return Err(CoreError::ExpectedOp {
            expected: "Input tensor".into(),
            found: node.op().mnemonic(),
        });
    }
    if node.ty().layout != Layout::Replicated {
        return Err(invalid(
            "asSlice",
            format!(
                "{} is {}, expected Replicated",
                node.name(),
                node.ty().layout
            ),
        ));
    }
    // Commit the layout change.
    p.node_mut(input)?.ty.layout = Layout::sliced_flat();

    // `Slice(input)` nodes become identities: rewire and delete.
    let slices: Vec<VarId> = p
        .live_vars()
        .into_iter()
        .filter(|&v| matches!(p.op(v), Ok(&OpKind::Slice(s)) if s == input))
        .collect();
    for s in slices {
        p.replace_uses(s, input);
        p.mark_deleted(s);
        p.remove_from_groups(s);
    }

    p.reinfer().map_err(|e| {
        invalid(
            "asSlice",
            format!("a consumer still reads the tensor as replicated: {e}"),
        )
    })
}

/// Removes a dead AllGather (the paper's `dead(agM)`): one whose output
/// is not consumed. If it is listed as a program output, the sliced
/// input takes its place.
///
/// # Errors
///
/// Returns [`CoreError::ExpectedOp`] when `ag` is not an AllGather and
/// [`CoreError::InvalidTransform`] when its output still has consumers.
pub fn dead(p: &mut Program, ag: VarId) -> Result<(), CoreError> {
    let input = match p.node(ag)?.op() {
        OpKind::AllGather(x) => *x,
        other => {
            return Err(CoreError::ExpectedOp {
                expected: "AllGather".into(),
                found: other.mnemonic(),
            });
        }
    };
    let consumers = p.consumers(ag);
    if !consumers.is_empty() {
        return Err(invalid(
            "dead",
            format!(
                "AllGather {} still has {} consumer(s)",
                p.node(ag)?.name(),
                consumers.len()
            ),
        ));
    }
    let outputs: Vec<VarId> = p
        .outputs()
        .iter()
        .map(|&o| if o == ag { input } else { o })
        .collect();
    p.set_outputs(outputs);
    p.mark_deleted(ag);
    p.remove_from_groups(ag);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::{reorder_all_gather, split_all_reduce};
    use crate::{DType, ReduceOp};

    /// A miniature data-parallel update with one state tensor `m`:
    ///   avg = AllReduce(g); m_ = Update(m, m*0.9 + avg); out = m_.
    fn mini_state_program() -> (Program, VarId, VarId, Vec<VarId>) {
        let mut p = Program::new("mini");
        let g = p.input("g", DType::F32, ["N"], Layout::Local);
        let m = p.input("m", DType::F32, ["N"], Layout::Replicated);
        let avg = p.all_reduce(ReduceOp::Sum, g).unwrap();
        let beta = p.constant(0.9);
        let decayed = p.mul(m, beta).unwrap();
        let value = p.add(decayed, avg).unwrap();
        let m_ = p.update(m, value).unwrap();
        p.set_name(m_, "m_").unwrap();
        p.set_io(&[g, m], &[m_]).unwrap();
        (p, g, m, vec![decayed, value, m_])
    }

    #[test]
    fn as_slice_then_dead_removes_gather() {
        let (mut p, _, m, comps) = mini_state_program();
        let avg = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), OpKind::AllReduce(..)))
            .unwrap();
        let (_, ag) = split_all_reduce(&mut p, avg).unwrap();
        let result = reorder_all_gather(&mut p, ag, &comps).unwrap();
        // The update escaped: one gather (agM analog).
        assert_eq!(result.gathers.len(), 1);
        let (m_upd, ag_m) = result.gathers[0];
        // reorder inserted Slice(m); asSlice removes it and slices m.
        assert!(p.to_dsl_string().contains("Slice(m)"));
        as_slice(&mut p, m).unwrap();
        assert!(!p.to_dsl_string().contains("Slice(m)"));
        assert_eq!(p.ty(m).unwrap().layout, Layout::sliced_flat());
        // The gather on the program output is now removable: program
        // output becomes the sliced update.
        dead(&mut p, ag_m).unwrap();
        assert_eq!(p.outputs(), &[m_upd]);
        p.validate().unwrap();
        // Memory: the state tensor is 1/k per rank now.
        let binding = crate::Binding::new(4).bind("N", 64);
        assert_eq!(p.ty(m).unwrap().local_numel(&binding).unwrap(), 16);
    }

    #[test]
    fn as_slice_rejects_non_replicated_and_non_input() {
        let (mut p, g, m, _) = mini_state_program();
        assert!(as_slice(&mut p, g).is_err(), "g is Local");
        let not_input = p.outputs()[0];
        assert!(matches!(
            as_slice(&mut p, not_input),
            Err(CoreError::ExpectedOp { .. })
        ));
        // m is read as a whole (no reorder happened): asSlice must fail
        // because `m * beta` would mix sliced and replicated full shapes.
        // (Scalar beta broadcasts fine, so this particular read is
        // actually sliceable; the Update of m with a replicated value is
        // what fails.)
        assert!(as_slice(&mut p, m).is_err());
    }

    #[test]
    fn dead_rejects_live_gather() {
        let (mut p, _, _, _) = mini_state_program();
        let avg = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), OpKind::AllReduce(..)))
            .unwrap();
        let (_, ag) = split_all_reduce(&mut p, avg).unwrap();
        // ag feeds the computations: not dead.
        assert!(matches!(
            dead(&mut p, ag),
            Err(CoreError::InvalidTransform { .. })
        ));
    }
}
