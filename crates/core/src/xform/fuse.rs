//! The `fuse` transformation (§3.3).
//!
//! Fusion is recorded as a *group annotation* over the DFG rather than
//! by rewriting nodes: the program's semantics are unchanged (the
//! functional runtime can ignore groups), while lowering emits one
//! kernel per group and the cost model charges one launch and one
//! memory round-trip for it.

use std::collections::HashSet;

use crate::{CoreError, FuseKind, FusionGroup, OpKind, Program, VarId};

use super::invalid;

/// Checks that `members` forms a convex region of the DFG: no path
/// between two members passes through a non-member. This is the
/// paper's validity rule — "fusing multiple operations into one
/// operation is valid only if the dependencies in the DFG after fusion
/// are preserved."
fn check_convex(p: &Program, members: &HashSet<VarId>, what: &str) -> Result<(), CoreError> {
    for n in p.live_vars() {
        if members.contains(&n) {
            continue;
        }
        let reached_from_member = members.iter().any(|&m| p.reaches(m, n));
        let reaches_member = members.iter().any(|&m| p.reaches(n, m));
        if reached_from_member && reaches_member {
            return Err(invalid(
                what,
                format!(
                    "fusing would break dependencies: {} lies on a path between members",
                    p.node(n)?.name()
                ),
            ));
        }
    }
    Ok(())
}

/// Checks that no member is already claimed by a fusion group, except
/// for `Compute` groups that are entirely contained in the new member
/// set — those are absorbed (the paper's Figure 6b fuses the already
/// compute-fused `scComp` into the FusedAllReduce). Returns the indices
/// of absorbed groups.
fn check_group_overlap(
    p: &Program,
    members: &HashSet<VarId>,
    what: &str,
) -> Result<Vec<usize>, CoreError> {
    let mut absorbed = Vec::new();
    for (i, g) in p.fusion_groups().iter().enumerate() {
        let inside = g.members.iter().filter(|m| members.contains(m)).count();
        if inside == 0 {
            continue;
        }
        if inside == g.members.len() && g.kind == FuseKind::Compute {
            absorbed.push(i);
        } else {
            return Err(invalid(
                what,
                "members partially overlap an existing fusion group",
            ));
        }
    }
    Ok(absorbed)
}

fn install_group(
    p: &mut Program,
    kind: FuseKind,
    members: Vec<VarId>,
    absorbed: Vec<usize>,
) -> usize {
    // Remove absorbed groups (descending index order keeps them valid).
    let mut groups: Vec<FusionGroup> = p.fusion_groups().to_vec();
    for i in absorbed.into_iter().rev() {
        groups.remove(i);
    }
    // Rebuild group list in place.
    let topo: Vec<VarId> = p
        .topo_order()
        .into_iter()
        .filter(|v| members.contains(v))
        .collect();
    p.replace_fusion_groups(groups);
    p.add_fusion_group(FusionGroup {
        kind,
        members: topo,
    })
}

/// Fuses a series of pointwise computations into a single kernel (the
/// paper's `ComputationFuse`). Returns the fusion-group index.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTransform`] when a member is not
/// pointwise, the region is not convex, or members already belong to a
/// fusion group.
pub fn fuse_compute(p: &mut Program, members: &[VarId]) -> Result<usize, CoreError> {
    if members.is_empty() {
        return Err(invalid("fuse", "no members to fuse"));
    }
    let set: HashSet<VarId> = members.iter().copied().collect();
    for &m in members {
        let node = p.node(m)?;
        if !node.op().is_pointwise() {
            return Err(invalid(
                "fuse",
                format!(
                    "{} ({}) is not a pointwise computation",
                    node.name(),
                    node.op().mnemonic()
                ),
            ));
        }
    }
    check_convex(p, &set, "fuse")?;
    let absorbed = check_group_overlap(p, &set, "fuse")?;
    Ok(install_group(
        p,
        FuseKind::Compute,
        members.to_vec(),
        absorbed,
    ))
}

/// Fuses a ReduceScatter, sliced computations, and AllGather(s) into a
/// single `FusedAllReduce` kernel (the paper's `AllReduceFuse`, §2.3).
/// Returns the fusion-group index.
///
/// # Errors
///
/// Returns [`CoreError::ExpectedOp`] when `rs` / `ags` are not the
/// required collectives and [`CoreError::InvalidTransform`] when the
/// region is not convex or computations are not pointwise.
pub fn fuse_all_reduce(
    p: &mut Program,
    rs: VarId,
    comps: &[VarId],
    ags: &[VarId],
) -> Result<usize, CoreError> {
    if !matches!(p.node(rs)?.op(), OpKind::ReduceScatter(..)) {
        return Err(CoreError::ExpectedOp {
            expected: "ReduceScatter".into(),
            found: p.node(rs)?.op().mnemonic(),
        });
    }
    for &ag in ags {
        if !matches!(p.node(ag)?.op(), OpKind::AllGather(_)) {
            return Err(CoreError::ExpectedOp {
                expected: "AllGather".into(),
                found: p.node(ag)?.op().mnemonic(),
            });
        }
    }
    if ags.is_empty() {
        return Err(invalid(
            "fuse",
            "a FusedAllReduce needs at least one AllGather",
        ));
    }
    for &c in comps {
        let node = p.node(c)?;
        if !node.op().is_pointwise() {
            return Err(invalid(
                "fuse",
                format!(
                    "{} ({}) cannot be fused into a FusedAllReduce",
                    node.name(),
                    node.op().mnemonic()
                ),
            ));
        }
    }
    let mut members: Vec<VarId> = Vec::with_capacity(comps.len() + ags.len() + 1);
    members.push(rs);
    members.extend_from_slice(comps);
    members.extend_from_slice(ags);
    let set: HashSet<VarId> = members.iter().copied().collect();
    if set.len() != members.len() {
        return Err(invalid("fuse", "duplicate members"));
    }
    // Each AllGather must gather a value produced inside the region.
    for &ag in ags {
        if let OpKind::AllGather(input) = p.node(ag)?.op() {
            if !set.contains(input) {
                return Err(invalid(
                    "fuse",
                    "an AllGather member gathers a value from outside the fusion",
                ));
            }
        }
    }
    check_convex(p, &set, "fuse")?;
    let absorbed = check_group_overlap(p, &set, "fuse")?;
    Ok(install_group(p, FuseKind::AllReduce, members, absorbed))
}

/// Fuses pointwise computations into a P2P send (the paper's
/// `SendFuse`, §4): the computation is applied as the data is sent.
/// Returns the fusion-group index.
///
/// # Errors
///
/// Returns [`CoreError::ExpectedOp`] when `send` is not a `Send` and
/// [`CoreError::InvalidTransform`] on convexity/pointwise violations.
pub fn fuse_send(p: &mut Program, comps: &[VarId], send: VarId) -> Result<usize, CoreError> {
    if !matches!(p.node(send)?.op(), OpKind::Send(..)) {
        return Err(CoreError::ExpectedOp {
            expected: "Send".into(),
            found: p.node(send)?.op().mnemonic(),
        });
    }
    for &c in comps {
        let node = p.node(c)?;
        if !node.op().is_pointwise() {
            return Err(invalid(
                "fuse",
                format!(
                    "{} ({}) cannot be fused into a Send",
                    node.name(),
                    node.op().mnemonic()
                ),
            ));
        }
    }
    let mut members = comps.to_vec();
    members.push(send);
    let set: HashSet<VarId> = members.iter().copied().collect();
    if set.len() != members.len() {
        return Err(invalid("fuse", "duplicate members"));
    }
    check_convex(p, &set, "fuse")?;
    let absorbed = check_group_overlap(p, &set, "fuse")?;
    Ok(install_group(p, FuseKind::Send, members, absorbed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::{reorder_all_gather, split_all_reduce};
    use crate::{DType, Layout, PeerSelector, Program, ReduceOp};

    /// The running example, split and reordered (paper Figure 4-2).
    fn reordered_example() -> (Program, VarId, Vec<VarId>, VarId) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        (p, rs, result.sliced, new_ag)
    }

    #[test]
    fn fuse_compute_records_group() {
        let (mut p, _, comps, _) = reordered_example();
        let idx = fuse_compute(&mut p, &comps).unwrap();
        assert_eq!(p.fusion_groups()[idx].kind, FuseKind::Compute);
        assert_eq!(p.fusion_groups()[idx].members.len(), comps.len());
        p.validate().unwrap();
    }

    #[test]
    fn fuse_all_reduce_absorbs_compute_group() {
        // The paper's program 2 -> 3: fuse(rsSum, scOut, agOut, ARFuse),
        // with the computations already compute-fused.
        let (mut p, rs, comps, ag) = reordered_example();
        fuse_compute(&mut p, &comps).unwrap();
        let idx = fuse_all_reduce(&mut p, rs, &comps, &[ag]).unwrap();
        assert_eq!(p.fusion_groups().len(), 1, "compute group absorbed");
        let group = &p.fusion_groups()[idx];
        assert_eq!(group.kind, FuseKind::AllReduce);
        // rs first, ag last (topological order).
        assert_eq!(group.members.first(), Some(&rs));
        assert_eq!(group.members.last(), Some(&ag));
        p.validate().unwrap();
    }

    #[test]
    fn fuse_rejects_non_pointwise() {
        let mut p = Program::new("t");
        let a = p.input("a", DType::F16, ["N", "N"], Layout::Replicated);
        let w = p.input("w", DType::F16, ["N", "N"], Layout::Replicated);
        let mm = p.matmul(a, w).unwrap();
        let two = p.constant(2.0);
        let y = p.mul(mm, two).unwrap();
        p.set_io(&[a, w], &[y]).unwrap();
        assert!(fuse_compute(&mut p, &[mm, y]).is_err());
    }

    #[test]
    fn fuse_rejects_nonconvex_region() {
        // a -> b -> c with b outside the fusion {a, c}.
        let mut p = Program::new("t");
        let x = p.input("x", DType::F32, ["N"], Layout::Replicated);
        let c1 = p.constant(1.0);
        let a = p.add(x, c1).unwrap();
        let b = p.sqrt(a).unwrap();
        let c = p.mul(a, b).unwrap();
        p.set_io(&[x], &[c]).unwrap();
        assert!(matches!(
            fuse_compute(&mut p, &[a, c]),
            Err(CoreError::InvalidTransform { .. })
        ));
        // Including b makes it valid.
        assert!(fuse_compute(&mut p, &[a, b, c]).is_ok());
    }

    #[test]
    fn fuse_rejects_partial_group_overlap() {
        let mut p = Program::new("t");
        let x = p.input("x", DType::F32, ["N"], Layout::Replicated);
        let c1 = p.constant(1.0);
        let a = p.add(x, c1).unwrap();
        let b = p.sqrt(a).unwrap();
        let c = p.mul(a, b).unwrap();
        p.set_io(&[x], &[c]).unwrap();
        fuse_compute(&mut p, &[a, b]).unwrap();
        // {b, c} overlaps the existing {a, b} group partially.
        assert!(fuse_compute(&mut p, &[b, c]).is_err());
    }

    #[test]
    fn fuse_all_reduce_requires_collectives() {
        let (mut p, rs, comps, ag) = reordered_example();
        assert!(matches!(
            fuse_all_reduce(&mut p, comps[0], &comps, &[ag]),
            Err(CoreError::ExpectedOp { .. })
        ));
        assert!(matches!(
            fuse_all_reduce(&mut p, rs, &comps, &[comps[0]]),
            Err(CoreError::ExpectedOp { .. })
        ));
        assert!(fuse_all_reduce(&mut p, rs, &comps, &[]).is_err());
    }

    #[test]
    fn fuse_send_records_group() {
        let mut p = Program::new("pipe");
        let x = p.input("in", DType::F16, ["B", "H"], Layout::Local);
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let sum = p.all_reduce(ReduceOp::Sum, x).unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.send(d, PeerSelector::NextGroupSameRank).unwrap();
        p.set_io(&[x, b], &[out]).unwrap();
        let idx = fuse_send(&mut p, &[biased, d], out).unwrap();
        assert_eq!(p.fusion_groups()[idx].kind, FuseKind::Send);
        assert_eq!(p.fusion_groups()[idx].members.last(), Some(&out));
        // Fusing a non-Send fails.
        assert!(matches!(
            fuse_send(&mut p, &[biased], d),
            Err(CoreError::ExpectedOp { .. })
        ));
    }
}
