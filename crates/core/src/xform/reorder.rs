//! The `reorder` transformation (§3.2).
//!
//! Reorders an AllGather with the computations (and P2P sends) that
//! consume it: the computations run on each rank's *slice* instead of
//! on the replicated tensor, replicated full-shape operands are wrapped
//! in `Slice(...)`, and fresh AllGathers re-materialize whichever
//! results escape the reordered region.

use std::collections::HashSet;

use crate::infer;
use crate::{CoreError, Layout, OpKind, Program, VarId};

use super::invalid;

/// The result of [`reorder_all_gather`].
#[derive(Clone, Debug)]
pub struct ReorderResult {
    /// The reordered computations, now sliced.
    pub sliced: Vec<VarId>,
    /// `(member, gather)` pairs: for each member whose value escapes
    /// the region, the fresh AllGather that re-materializes it
    /// (`agP`, `agM`, `agV` in Figure 6b).
    pub gathers: Vec<(VarId, VarId)>,
}

/// Reorders AllGather `ag` past the computations `comps` that consume
/// its output (the paper's `AGReorder`).
///
/// Validity (§3.2): "the reorder transformation is valid only if
/// operations being reordered with an AllGather can be sliced along the
/// dimension the AllGather is performed". Concretely:
///
/// - every `comps` member is a pointwise computation, a norm-style
///   reduction, or a P2P `Send` (MatMul/Convolution cannot be sliced
///   along arbitrary dimensions and are rejected);
/// - every consumer of `ag` is a member (the region swallows the
///   gather);
/// - members read only `ag`, other members, or replicated/constant
///   values from outside;
/// - replicated operands that cover the sliced dimension get a
///   `Slice(...)` inserted (like `Slice(r)` in Figure 4-2), which must
///   type-check.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTransform`] when a rule fails, and
/// propagates inference errors for rewrites that cannot be typed.
pub fn reorder_all_gather(
    p: &mut Program,
    ag: VarId,
    comps: &[VarId],
) -> Result<ReorderResult, CoreError> {
    // --- rule checks ----------------------------------------------------
    let (x, slice_dim) = match p.node(ag)?.op() {
        OpKind::AllGather(x) => {
            let x = *x;
            match p.ty(x)?.layout {
                Layout::Sliced(d) => (x, d),
                other => {
                    return Err(invalid(
                        "reorder",
                        format!("AllGather input has layout {other}, expected sliced"),
                    ));
                }
            }
        }
        other => {
            return Err(CoreError::ExpectedOp {
                expected: "AllGather".into(),
                found: other.mnemonic(),
            });
        }
    };
    if comps.is_empty() {
        return Err(invalid("reorder", "no computations to reorder with"));
    }
    if p.outputs().contains(&ag) {
        return Err(invalid(
            "reorder",
            "the AllGather itself is a program output; nothing to reorder past",
        ));
    }
    let region: HashSet<VarId> = comps.iter().copied().collect();
    if region.len() != comps.len() {
        return Err(invalid("reorder", "duplicate members in computation list"));
    }
    for &m in comps {
        let node = p.node(m)?;
        let ok = node.op().is_pointwise() || matches!(node.op(), OpKind::Send(..));
        if !ok {
            return Err(invalid(
                "reorder",
                format!(
                    "{} ({}) cannot be sliced along the AllGather dimension",
                    node.name(),
                    node.op().mnemonic()
                ),
            ));
        }
    }
    for c in p.consumers(ag) {
        if !region.contains(&c) {
            return Err(invalid(
                "reorder",
                format!(
                    "consumer {} of the AllGather is outside the reordered region",
                    p.node(c)?.name()
                ),
            ));
        }
    }
    // Members may read: ag, other members, or replicated/scalar values
    // from outside the region.
    for &m in comps {
        for dep in p.op(m)?.inputs() {
            if dep == ag || region.contains(&dep) {
                continue;
            }
            let ty = p.ty(dep)?;
            if ty.layout != Layout::Replicated {
                return Err(invalid(
                    "reorder",
                    format!(
                        "member {} reads {} with layout {}; only replicated \
                         values may cross into the region",
                        p.node(m)?.name(),
                        p.node(dep)?.name(),
                        ty.layout
                    ),
                ));
            }
        }
    }

    // Members whose value escapes: program outputs, consumers outside
    // the region, or in-place updates (their target must be
    // re-materialized unless later committed with asSlice).
    let escaping: Vec<VarId> = comps
        .iter()
        .copied()
        .filter(|&m| {
            p.outputs().contains(&m)
                || matches!(p.op(m), Ok(OpKind::Update(..)))
                || p.consumers(m).iter().any(|c| !region.contains(c))
        })
        .collect();

    // --- rewrite ----------------------------------------------------------
    // After the reorder *every* member computes on slices ("the new
    // sliced computations perform the same operations as original
    // computations", §3.2), so any replicated operand entering the
    // region whose shape covers the sliced dimension needs a Slice
    // inserted — except Update targets, which stay raw (the update
    // writes this rank's slice into the full buffer).
    let topo: Vec<VarId> = p
        .topo_order()
        .into_iter()
        .filter(|v| region.contains(v))
        .collect();
    let mut slice_cache: std::collections::HashMap<VarId, VarId> = std::collections::HashMap::new();

    for &m in &topo {
        let mut op = p.node(m)?.op().clone();
        op.replace_input(ag, x);
        let out_shape = p.ty(m)?.shape.clone(); // global shapes do not change
        let is_update = matches!(op, OpKind::Update(..));
        for (i, dep) in op.inputs().iter().enumerate() {
            if *dep == x || region.contains(dep) {
                continue;
            }
            if is_update && i == 0 {
                continue; // the Update target stays the raw input tensor
            }
            let dep_ty = p.ty(*dep)?.clone();
            if dep_ty.layout == Layout::Replicated
                && infer::replicated_conflicts(slice_dim, &out_shape, &dep_ty.shape)
            {
                let s = match slice_cache.get(dep) {
                    Some(&s) => s,
                    None => {
                        let name = format!("sl{}", p.node(*dep)?.name());
                        let s = p.slice(*dep)?;
                        p.set_name(s, name)?;
                        slice_cache.insert(*dep, s);
                        s
                    }
                };
                op.replace_input(*dep, s);
            }
        }
        p.node_mut(m)?.op = op;
    }

    // Retire the original AllGather before re-inference (no consumers
    // remain inside the region).
    p.mark_deleted(ag);
    p.remove_from_groups(ag);
    p.reinfer().map_err(|e| {
        invalid(
            "reorder",
            format!("region cannot be sliced along dimension {slice_dim}: {e}"),
        )
    })?;

    // Fresh AllGathers for escaping sliced values, rewiring only
    // consumers outside the region.
    let mut gathers = Vec::new();
    for m in escaping {
        if !p.ty(m)?.layout.is_sliced() {
            continue;
        }
        let name = format!("ag{}", p.node(m)?.name());
        let new_ag = p.all_gather(m)?;
        p.set_name(new_ag, name)?;
        let outside: Vec<VarId> = p
            .consumers(m)
            .into_iter()
            .filter(|c| !region.contains(c) && *c != new_ag)
            .collect();
        for c in outside {
            p.node_mut(c)?.op.replace_input(m, new_ag);
        }
        let outputs: Vec<VarId> = p
            .outputs()
            .iter()
            .map(|&o| if o == m { new_ag } else { o })
            .collect();
        p.set_outputs(outputs);
        gathers.push((m, new_ag));
    }
    p.reinfer()?;
    Ok(ReorderResult {
        sliced: topo,
        gathers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::split_all_reduce;
    use crate::{DType, ReduceOp};

    /// Figure 4-1 -> Figure 4-2: the running example after split, then
    /// reorder of the Dropout chain with the AllGather.
    fn program_after_split() -> (Program, VarId, VarId, Vec<VarId>) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        p.set_name(d, "d").unwrap();
        let out = p.add(d, r).unwrap();
        p.set_name(out, "out").unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        (p, rs, ag, vec![biased, d, out])
    }

    #[test]
    fn reorder_running_example() {
        let (mut p, rs, ag, comps) = program_after_split();
        let result = reorder_all_gather(&mut p, ag, &comps).unwrap();
        p.validate().unwrap();

        // The computations are now sliced.
        for &m in &result.sliced {
            assert!(
                p.ty(m).unwrap().layout.is_sliced(),
                "{} should be sliced",
                p.node(m).unwrap().name()
            );
        }
        // Exactly one escaping value (the program output) was gathered.
        assert_eq!(result.gathers.len(), 1);
        let (_, ag_out) = result.gathers[0];
        assert_eq!(p.outputs(), &[ag_out]);
        assert_eq!(p.ty(ag_out).unwrap().layout, Layout::Replicated);

        // A Slice(r) was inserted (r covers the sliced region), but the
        // bias b was left whole (it broadcasts from the trailing dim).
        let dsl = p.to_dsl_string();
        assert!(dsl.contains("Slice(r)"), "missing Slice(r) in:\n{dsl}");
        assert!(!dsl.contains("Slice(b)"), "b must not be sliced:\n{dsl}");

        // The computations read the ReduceScatter output directly.
        let biased = result.sliced[0];
        assert!(p.op(biased).unwrap().inputs().contains(&rs));
    }

    #[test]
    fn reorder_rejects_partial_region() {
        let (mut p, _, ag, comps) = program_after_split();
        // Leaving out the dropout's consumer chain member makes the
        // region not swallow all consumers of intermediate values; the
        // first member list missing the direct AllGather consumer fails.
        assert!(matches!(
            reorder_all_gather(&mut p, ag, &comps[1..]),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn reorder_rejects_matmul_member() {
        let mut p = Program::new("t");
        let g = p.input("g", DType::F16, ["N", "N"], Layout::Local);
        let w = p.input("w", DType::F16, ["N", "N"], Layout::Replicated);
        let sum = p.all_reduce(ReduceOp::Sum, g).unwrap();
        let mm = p.matmul(sum, w).unwrap();
        p.set_io(&[g, w], &[mm]).unwrap();
        let (_, ag) = split_all_reduce(&mut p, sum).unwrap();
        assert!(matches!(
            reorder_all_gather(&mut p, ag, &[mm]),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn reorder_rejects_non_allgather() {
        let (mut p, rs, _, comps) = program_after_split();
        assert!(matches!(
            reorder_all_gather(&mut p, rs, &comps),
            Err(CoreError::ExpectedOp { .. })
        ));
    }

    #[test]
    fn reorder_with_update_creates_gather_per_update() {
        // A miniature Adam: p -= avg * lr, with p replicated.
        let mut prog = Program::new("mini_adam");
        let g = prog.input("g", DType::F32, ["N"], Layout::Local);
        let param = prog.input("p", DType::F32, ["N"], Layout::Replicated);
        let lr = prog.scalar_input("lr", DType::F32);
        let avg = prog.all_reduce(ReduceOp::Sum, g).unwrap();
        let step = prog.mul(avg, lr).unwrap();
        let newp = prog.sub(param, step).unwrap();
        let upd = prog.update(param, newp).unwrap();
        prog.set_io(&[g, param, lr], &[upd]).unwrap();
        let (_, ag) = split_all_reduce(&mut prog, avg).unwrap();
        let result = reorder_all_gather(&mut prog, ag, &[step, newp, upd]).unwrap();
        prog.validate().unwrap();
        // The update escapes; a gather re-materializes the parameter.
        assert_eq!(result.gathers.len(), 1);
        assert_eq!(result.gathers[0].0, upd);
        // `p - step`: p (replicated, full shape) must have been sliced.
        assert!(prog.to_dsl_string().contains("Slice(p)"));
    }
}
