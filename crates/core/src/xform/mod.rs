//! The four semantics-preserving transformations of §3, plus the
//! optimizer-state slicing helpers of §4.
//!
//! | Paper | Here |
//! |---|---|
//! | `split(v, ARSplitRSAG)` | [`split_all_reduce`] |
//! | `reorder(comps..., ag)` | [`reorder_all_gather`] |
//! | `fuse(..., ComputationFuse)` | [`fuse_compute`] |
//! | `fuse(rs, comps, ag, AllReduceFuse)` | [`fuse_all_reduce`] |
//! | `fuse(comps, send, SendFuse)` | [`fuse_send`] |
//! | `overlap(ops...)` | [`overlap`] |
//! | `asSlice(t)` | [`as_slice`] |
//! | `dead(ag)` | [`dead`] |
//!
//! Every transformation checks its validity rule and returns a
//! [`CoreError::InvalidTransform`] when it does not hold — "CoCoNet
//! automatically checks the validity of each transformation based on
//! these rules and throws an error for an invalid transformation."

mod fuse;
mod overlap;
mod reorder;
mod split;
mod state;

pub use fuse::{fuse_all_reduce, fuse_compute, fuse_send};
pub use overlap::overlap;
pub use reorder::{reorder_all_gather, ReorderResult};
pub use split::split_all_reduce;
pub use state::{as_slice, dead};

use crate::CoreError;

pub(crate) fn invalid(transform: &str, detail: impl Into<String>) -> CoreError {
    CoreError::InvalidTransform {
        transform: transform.to_string(),
        detail: detail.into(),
    }
}
