//! The tuned-plan cache: the serving front end of the autotuner.
//!
//! Tuning is cheap once (~ms of cost-model sweeps) but a serving
//! process re-tunes the *same* program at the *same* geometry on every
//! request; ROADMAP item 4 calls for a production-shaped cache so the
//! repeated requests skip the sweep entirely. [`PlanCache`] memoizes
//! the winning [`Candidate`] of a finished search under a [`PlanKey`]
//! — (structural program hash, cluster shape, config-grid fingerprint)
//! — with bounded LRU eviction, and
//! [`Autotuner::tune_cached`](crate::Autotuner::tune_cached) consults
//! it before searching. A warm hit returns the cached winner
//! bit-identical to the cold one (the search is deterministic, so
//! caching is a pure work-saver, like memoization and pruning before
//! it) in microseconds instead of milliseconds.
//!
//! Recency is tracked with a logical access counter, so eviction order
//! is deterministic; wall-clock enters only the per-entry *age*
//! statistics surfaced for operators.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::autotune::Candidate;

/// The composite cache key. Equal keys mean the cold search would
/// provably produce the same winner: the program is structurally
/// identical, the evaluator's machine model and the binding's geometry
/// and sizes match, and the tuner would sweep the same grid to the
/// same depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`structural_hash`](crate::structural_hash) of the program
    /// (isomorphism-invariant, so renamed-but-identical programs hit).
    pub program: u64,
    /// The cluster-shape component: the evaluator's
    /// [`fingerprint`](crate::PlanEvaluator::fingerprint) mixed with
    /// the binding's group geometry and symbol sizes.
    pub cluster: u64,
    /// The tuner's
    /// [`grid_fingerprint`](crate::Autotuner::grid_fingerprint).
    pub grid: u64,
}

/// Cumulative cache counters (plus the answering entry's age on a
/// hit), surfaced through
/// [`TuneReport::cache`](crate::TuneReport::cache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to a full search.
    pub misses: usize,
    /// Entries evicted to keep the cache within capacity.
    pub evictions: usize,
    /// Age of the entry that answered (time since insertion), set only
    /// on a report produced by a cache hit.
    pub hit_age: Option<Duration>,
}

/// One cached winner plus its bookkeeping.
#[derive(Clone, Debug)]
struct Entry {
    winner: Candidate,
    /// Logical timestamp of the last hit (or the insertion), for LRU.
    last_used: u64,
    /// Wall-clock insertion instant, for the age statistics.
    inserted: Instant,
}

/// A bounded LRU cache of tuned-plan winners. See the module docs.
#[derive(Clone, Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<PlanKey, Entry>,
    /// Logical clock: bumped on every get/insert, so LRU order is
    /// deterministic regardless of wall-clock resolution.
    tick: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` winners (at least 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, returning the cached winner and its age and
    /// marking the entry most-recently-used. Counts a hit or a miss.
    pub fn get(&mut self, key: &PlanKey) -> Option<(Candidate, Duration)> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some((entry.winner.clone(), entry.inserted.elapsed()))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs `winner` under `key`, evicting the least-recently-used
    /// entry if the cache is full (re-inserting an existing key just
    /// refreshes it — no eviction).
    pub fn insert(&mut self, key: PlanKey, winner: Candidate) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Ties on last_used cannot happen (the logical clock is
            // strictly monotone), so the victim is unique.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache at capacity");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry {
                winner,
                last_used: self.tick,
                inserted: Instant::now(),
            },
        );
    }

    /// Cumulative counters since construction (`hit_age` unset — the
    /// caller fills it for hit reports).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            hit_age: None,
        }
    }

    /// Number of cached winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no winners.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bound this cache evicts down to.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every resident entry's age (time since insertion), oldest
    /// first — the per-entry statistic operators watch to judge
    /// whether the capacity (or a deploy cadence) is churning the
    /// cache.
    pub fn ages(&self) -> Vec<Duration> {
        let mut ages: Vec<Duration> = self
            .entries
            .values()
            .map(|e| e.inserted.elapsed())
            .collect();
        ages.sort_unstable_by(|a, b| b.cmp(a));
        ages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommConfig;

    fn candidate(tag: &str) -> Candidate {
        Candidate {
            schedule: vec![tag.to_string()],
            program: crate::Program::new(tag),
            config: CommConfig::default(),
            time: 1.0,
        }
    }

    fn key(n: u64) -> PlanKey {
        PlanKey {
            program: n,
            cluster: 7,
            grid: 11,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), candidate("a"));
        cache.insert(key(2), candidate("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), candidate("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), candidate("a"));
        cache.insert(key(2), candidate("b"));
        cache.insert(key(1), candidate("a2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        let (winner, _) = cache.get(&key(1)).expect("refreshed entry");
        assert_eq!(winner.schedule, vec!["a2".to_string()]);
    }

    #[test]
    fn capacity_floor_and_ages() {
        let mut cache = PlanCache::new(0);
        assert_eq!(cache.capacity(), 1);
        assert!(cache.is_empty());
        cache.insert(key(1), candidate("a"));
        cache.insert(key(2), candidate("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.ages().len(), 1);
    }

    #[test]
    fn distinct_key_components_miss() {
        let mut cache = PlanCache::new(4);
        let base = PlanKey {
            program: 1,
            cluster: 2,
            grid: 3,
        };
        cache.insert(base, candidate("a"));
        for changed in [
            PlanKey { program: 9, ..base },
            PlanKey { cluster: 9, ..base },
            PlanKey { grid: 9, ..base },
        ] {
            assert!(cache.get(&changed).is_none());
        }
        assert!(cache.get(&base).is_some());
    }
}
