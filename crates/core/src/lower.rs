//! Lowering: scheduled programs to executable plans.
//!
//! Walks the DFG in topological order, turning fusion groups into
//! single kernel/fused-collective steps, overlap groups into pipeline
//! steps, and everything else into one step per operation — which is
//! exactly how launch counts and memory round-trips differ between the
//! paper's schedules (an unfused optimizer is a long sequence of
//! kernel launches; `fuse(RS-Opt-AG)` is one).

use std::collections::{HashMap, HashSet};

use crate::{
    Binding, CollAlgo, CollKind, CommConfig, CoreError, ExecPlan, FuseKind, FusedCollectiveStep,
    KernelStep, Layout, MatMulStep, OpKind, OverlapStage, OverlappedStep, Program, SendRecvStep,
    SliceDim, Step, VarId,
};

#[derive(Clone, Debug, PartialEq, Eq)]
enum UnitKind {
    Single,
    Fused(FuseKind),
}

#[derive(Clone, Debug)]
struct Unit {
    kind: UnitKind,
    members: Vec<VarId>,
}

/// Lowers a validated program to an executable plan under a binding
/// and communication configuration. The configuration's collective
/// algorithm is stamped into every collective step it emits.
///
/// # Errors
///
/// Propagates validation/binding errors, and returns
/// [`CoreError::InvalidTransform`] when an overlap group contains a
/// stage that cannot be pipelined (plain pointwise kernels must be
/// fused into a collective before overlapping).
pub fn lower(p: &Program, binding: &Binding, config: CommConfig) -> Result<ExecPlan, CoreError> {
    p.validate()?;
    let topo = p.topo_order();
    let position: HashMap<VarId, usize> = topo.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // ---- build units -----------------------------------------------------
    let mut unit_of: HashMap<VarId, usize> = HashMap::new();
    let mut units: Vec<Unit> = Vec::new();
    for g in p.fusion_groups() {
        let idx = units.len();
        units.push(Unit {
            kind: UnitKind::Fused(g.kind),
            members: g.members.clone(),
        });
        for &m in &g.members {
            unit_of.insert(m, idx);
        }
    }
    for &v in &topo {
        if unit_of.contains_key(&v) {
            continue;
        }
        let op = p.op(v)?;
        if matches!(
            op,
            OpKind::Input | OpKind::ConstScalar(_) | OpKind::Slice(_)
        ) {
            continue;
        }
        let idx = units.len();
        units.push(Unit {
            kind: UnitKind::Single,
            members: vec![v],
        });
        unit_of.insert(v, idx);
    }

    // Execution order: by first member position in topo order.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&u| {
        units[u]
            .members
            .iter()
            .map(|m| position[m])
            .min()
            .unwrap_or(usize::MAX)
    });

    // Overlap groups -> sets of unit indices.
    let mut overlap_units: Vec<Vec<usize>> = Vec::new();
    let mut unit_overlap: HashMap<usize, usize> = HashMap::new();
    for og in p.overlap_groups() {
        let mut covered: Vec<usize> = Vec::new();
        for m in &og.members {
            if let Some(&u) = unit_of.get(m) {
                if !covered.contains(&u) {
                    covered.push(u);
                }
            }
        }
        covered.sort_by_key(|&u| {
            units[u]
                .members
                .iter()
                .map(|m| position[m])
                .min()
                .unwrap_or(usize::MAX)
        });
        let idx = overlap_units.len();
        for &u in &covered {
            unit_overlap.insert(u, idx);
        }
        overlap_units.push(covered);
    }

    // ---- emit steps -------------------------------------------------------
    let mut steps: Vec<Step> = Vec::new();
    let mut emitted_overlaps: HashSet<usize> = HashSet::new();
    for &u in &order {
        if let Some(&og) = unit_overlap.get(&u) {
            if emitted_overlaps.insert(og) {
                let mut stages = Vec::new();
                let mut labels = Vec::new();
                for &cu in &overlap_units[og] {
                    let sub = lower_unit(p, binding, config.algo, &units[cu])?;
                    for s in sub {
                        labels.push(s.label().to_string());
                        stages.push(step_to_stage(s)?);
                    }
                }
                steps.push(Step::Overlapped(OverlappedStep {
                    label: format!("overlap({})", labels.join(", ")),
                    stages,
                }));
            }
            continue;
        }
        steps.extend(lower_unit(p, binding, config.algo, &units[u])?);
    }

    Ok(ExecPlan {
        name: p.name().to_string(),
        steps,
        config,
    })
}

fn step_to_stage(step: Step) -> Result<OverlapStage, CoreError> {
    match step {
        Step::MatMul(s) => Ok(OverlapStage::MatMul(s)),
        Step::Collective(s) => Ok(OverlapStage::Collective(s)),
        Step::FusedCollective(s) => Ok(OverlapStage::FusedCollective(s)),
        Step::SendRecv(s) => Ok(OverlapStage::SendRecv(s)),
        other => Err(CoreError::InvalidTransform {
            transform: "overlap".into(),
            detail: format!(
                "stage `{}` cannot be pipelined; fuse computations into a \
                 collective before overlapping",
                other.label()
            ),
        }),
    }
}

/// Per-rank extents of a (possibly sliced) operand.
fn local_dims(p: &Program, v: VarId, binding: &Binding) -> Result<Vec<u64>, CoreError> {
    let ty = p.ty(v)?;
    let shape = ty.shape.eval(binding)?;
    let mut dims: Vec<u64> = shape.dims().iter().map(|&d| d as u64).collect();
    let k = binding.group_size as u64;
    match ty.layout {
        Layout::Sliced(SliceDim::Dim(d)) => {
            if !dims[d].is_multiple_of(k) {
                return Err(CoreError::IndivisibleSize {
                    what: format!("dimension {d} of {}", ty.shape),
                    total: dims[d],
                    parts: k,
                });
            }
            dims[d] /= k;
        }
        Layout::Sliced(SliceDim::Flat) => {
            let total: u64 = dims.iter().product();
            if !total.is_multiple_of(k) {
                return Err(CoreError::IndivisibleSize {
                    what: format!("tensor {}", ty.shape),
                    total,
                    parts: k,
                });
            }
            dims = vec![total / k];
        }
        Layout::Replicated | Layout::Local => {}
    }
    Ok(dims)
}

/// External reads of a member set, deduplicated, in bytes per rank.
fn external_read_bytes(
    p: &Program,
    members: &HashSet<VarId>,
    binding: &Binding,
    exclude: &HashSet<VarId>,
) -> Result<u64, CoreError> {
    let mut seen = HashSet::new();
    let mut bytes = 0u64;
    for &m in members {
        for dep in p.op(m)?.inputs() {
            if members.contains(&dep) || exclude.contains(&dep) || !seen.insert(dep) {
                continue;
            }
            if matches!(p.op(dep)?, OpKind::ConstScalar(_)) {
                continue;
            }
            bytes += p.ty(dep)?.local_bytes(binding)?;
        }
    }
    Ok(bytes)
}

/// Bytes written by members whose values escape the set (plus all
/// in-place updates), excluding `exclude` members.
fn external_write_bytes(
    p: &Program,
    members: &HashSet<VarId>,
    binding: &Binding,
    exclude: &HashSet<VarId>,
) -> Result<u64, CoreError> {
    let mut bytes = 0u64;
    for &m in members {
        if exclude.contains(&m) {
            continue;
        }
        let escapes = p.outputs().contains(&m)
            || matches!(p.op(m)?, OpKind::Update(..))
            || p.consumers(m).iter().any(|c| !members.contains(c));
        if escapes {
            bytes += p.ty(m)?.local_bytes(binding)?;
        }
    }
    Ok(bytes)
}

fn compute_flops(
    p: &Program,
    members: &HashSet<VarId>,
    binding: &Binding,
) -> Result<u64, CoreError> {
    let mut flops = 0u64;
    for &m in members {
        let op = p.op(m)?;
        if op.is_pointwise() && !matches!(op, OpKind::ConstScalar(_) | OpKind::Slice(_)) {
            // Norm reads its input's elements; others produce them.
            let n = match op {
                OpKind::Norm(x) | OpKind::ReduceTensor(_, x) => p.ty(*x)?.local_numel(binding)?,
                _ => p.ty(m)?.local_numel(binding)?,
            };
            flops += n;
        }
    }
    Ok(flops)
}

fn count_norms(p: &Program, members: &[VarId]) -> Result<usize, CoreError> {
    let mut n = 0;
    for &m in members {
        if matches!(p.op(m)?, OpKind::Norm(_) | OpKind::ReduceTensor(..)) {
            n += 1;
        }
    }
    Ok(n)
}

fn label_of(p: &Program, members: &[VarId]) -> String {
    members
        .iter()
        .filter_map(|&m| p.node(m).ok())
        .map(|n| n.name().to_string())
        .collect::<Vec<_>>()
        .join("+")
}

fn lower_unit(
    p: &Program,
    binding: &Binding,
    algo: CollAlgo,
    unit: &Unit,
) -> Result<Vec<Step>, CoreError> {
    let member_set: HashSet<VarId> = unit.members.iter().copied().collect();
    match unit.kind {
        UnitKind::Single => lower_single(p, binding, algo, unit.members[0]),
        UnitKind::Fused(FuseKind::Compute) => {
            let reads = external_read_bytes(p, &member_set, binding, &HashSet::new())?;
            let writes = external_write_bytes(p, &member_set, binding, &HashSet::new())?;
            let flops = compute_flops(p, &member_set, binding)?;
            let n_ops = unit
                .members
                .iter()
                .filter(|&&m| !matches!(p.op(m), Ok(OpKind::ConstScalar(_)) | Ok(OpKind::Slice(_))))
                .count();
            let mut steps = vec![Step::Kernel(KernelStep {
                label: format!("fused[{}]", label_of(p, &unit.members)),
                bytes_read: reads,
                bytes_written: writes,
                flops,
                n_ops,
            })];
            // Sliced norms need a scalar AllReduce between kernels.
            for &m in &unit.members {
                if let OpKind::Norm(x) | OpKind::ReduceTensor(_, x) = p.op(m)? {
                    if p.ty(*x)?.layout.is_sliced() {
                        steps.push(Step::Collective(crate::CollectiveStep {
                            label: format!("norm-allreduce[{}]", p.node(m)?.name()),
                            kind: CollKind::AllReduce,
                            op: crate::ReduceOp::Sum,
                            algo,
                            elems: 1,
                            dtype: crate::DType::F32,
                            scattered: None,
                        }));
                    }
                }
            }
            Ok(steps)
        }
        UnitKind::Fused(FuseKind::AllReduce) => {
            let rs = unit
                .members
                .iter()
                .find(|&&m| matches!(p.op(m), Ok(OpKind::ReduceScatter(..))))
                .copied()
                .ok_or_else(|| {
                    CoreError::MalformedProgram(
                        "FusedAllReduce group without a ReduceScatter".into(),
                    )
                })?;
            let rs_input = p.op(rs)?.inputs()[0];
            let ags: HashSet<VarId> = unit
                .members
                .iter()
                .filter(|&&m| matches!(p.op(m), Ok(OpKind::AllGather(_))))
                .copied()
                .collect();
            let mut exclude_reads = HashSet::new();
            exclude_reads.insert(rs_input);
            let extra_reads = external_read_bytes(p, &member_set, binding, &exclude_reads)?;
            let extra_writes = external_write_bytes(p, &member_set, binding, &ags)?;
            let flops = compute_flops(p, &member_set, binding)?;
            let compute_members: Vec<VarId> = unit
                .members
                .iter()
                .filter(|&&m| m != rs && !ags.contains(&m))
                .copied()
                .collect();
            Ok(vec![Step::FusedCollective(FusedCollectiveStep {
                label: format!("fusedAR[{}]", label_of(p, &unit.members)),
                algo,
                elems: p.ty(rs_input)?.numel(binding)?,
                dtype: p.ty(rs_input)?.dtype,
                extra_bytes_read: extra_reads,
                extra_bytes_written: extra_writes,
                flops,
                embedded_scalar_allreduces: count_norms(p, &compute_members)?,
                n_fused_ops: compute_members.len(),
                scattered: None,
            })])
        }
        UnitKind::Fused(FuseKind::Send) => {
            let send = unit
                .members
                .iter()
                .find(|&&m| matches!(p.op(m), Ok(OpKind::Send(..))))
                .copied()
                .ok_or_else(|| {
                    CoreError::MalformedProgram("Send fusion group without a Send".into())
                })?;
            let send_input = p.op(send)?.inputs()[0];
            let extra_reads = external_read_bytes(p, &member_set, binding, &HashSet::new())?;
            let flops = compute_flops(p, &member_set, binding)?;
            Ok(vec![Step::SendRecv(SendRecvStep {
                label: format!("fusedSend[{}]", label_of(p, &unit.members)),
                elems_per_rank: p.ty(send_input)?.local_numel(binding)?,
                dtype: p.ty(send_input)?.dtype,
                extra_bytes_read: extra_reads,
                flops,
                n_fused_ops: unit.members.len() - 1,
            })])
        }
    }
}

fn lower_single(
    p: &Program,
    binding: &Binding,
    algo: CollAlgo,
    v: VarId,
) -> Result<Vec<Step>, CoreError> {
    let node = p.node(v)?;
    let ty = node.ty().clone();
    let name = node.name().to_string();
    let member_set: HashSet<VarId> = [v].into_iter().collect();
    match node.op().clone() {
        OpKind::MatMul(a, w) => {
            let a_dims = local_dims(p, a, binding)?;
            let w_dims = local_dims(p, w, binding)?;
            let m: u64 = a_dims[..a_dims.len() - 1].iter().product();
            let k = a_dims[a_dims.len() - 1];
            let n = w_dims[1];
            Ok(vec![Step::MatMul(MatMulStep {
                label: name,
                m,
                k,
                n,
                dtype: ty.dtype,
            })])
        }
        OpKind::Conv2d(x, w, params) => {
            // Implicit GEMM: m = N'*H_out*W_out, k = C*R*S, n = K.
            let x_dims = local_dims(p, x, binding)?;
            let w_dims = local_dims(p, w, binding)?;
            let out_dims = local_dims(p, v, binding)?;
            let m = out_dims[0] * out_dims[2] * out_dims[3];
            let kk = x_dims[1] * w_dims[2] * w_dims[3];
            let n = w_dims[0];
            let _ = params;
            Ok(vec![Step::MatMul(MatMulStep {
                label: name,
                m,
                k: kk,
                n,
                dtype: ty.dtype,
            })])
        }
        OpKind::AllReduce(op, x) => Ok(vec![collective(
            p,
            binding,
            CollKind::AllReduce,
            op,
            algo,
            x,
            name,
        )?]),
        OpKind::ReduceScatter(op, x) => Ok(vec![collective(
            p,
            binding,
            CollKind::ReduceScatter,
            op,
            algo,
            x,
            name,
        )?]),
        OpKind::AllGather(x) => Ok(vec![collective(
            p,
            binding,
            CollKind::AllGather,
            crate::ReduceOp::Sum,
            algo,
            x,
            name,
        )?]),
        OpKind::Broadcast(x, _) => Ok(vec![collective(
            p,
            binding,
            CollKind::Broadcast,
            crate::ReduceOp::Sum,
            algo,
            x,
            name,
        )?]),
        OpKind::Reduce(op, x, _) => Ok(vec![collective(
            p,
            binding,
            CollKind::Reduce,
            op,
            algo,
            x,
            name,
        )?]),
        OpKind::Send(x, _) => Ok(vec![Step::SendRecv(SendRecvStep {
            label: name,
            elems_per_rank: p.ty(x)?.local_numel(binding)?,
            dtype: p.ty(x)?.dtype,
            extra_bytes_read: 0,
            flops: 0,
            n_fused_ops: 0,
        })]),
        op if op.is_pointwise() => {
            let reads = external_read_bytes(p, &member_set, binding, &HashSet::new())?;
            let writes = ty.local_bytes(binding)?;
            let flops = compute_flops(p, &member_set, binding)?;
            let mut steps = vec![Step::Kernel(KernelStep {
                label: name.clone(),
                bytes_read: reads,
                bytes_written: writes,
                flops,
                n_ops: 1,
            })];
            if let OpKind::Norm(x) | OpKind::ReduceTensor(_, x) = op {
                if p.ty(x)?.layout.is_sliced() {
                    steps.push(Step::Collective(crate::CollectiveStep {
                        label: format!("norm-allreduce[{name}]"),
                        kind: CollKind::AllReduce,
                        op: crate::ReduceOp::Sum,
                        algo,
                        elems: 1,
                        dtype: crate::DType::F32,
                        scattered: None,
                    }));
                }
            }
            Ok(steps)
        }
        other => Err(CoreError::MalformedProgram(format!(
            "cannot lower {} as a standalone step",
            other.mnemonic()
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn collective(
    p: &Program,
    binding: &Binding,
    kind: CollKind,
    op: crate::ReduceOp,
    algo: CollAlgo,
    input: VarId,
    label: String,
) -> Result<Step, CoreError> {
    Ok(Step::Collective(crate::CollectiveStep {
        label,
        kind,
        op,
        algo,
        elems: p.ty(input)?.numel(binding)?,
        dtype: p.ty(input)?.dtype,
        scattered: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::{fuse_all_reduce, overlap, reorder_all_gather, split_all_reduce};
    use crate::{DType, Program, ReduceOp};

    fn binding() -> Binding {
        Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 1024)
    }

    fn figure3() -> (Program, Vec<VarId>) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        (p, vec![layer, sum, biased, d, out])
    }

    #[test]
    fn baseline_lowering_is_one_step_per_op() {
        let (p, _) = figure3();
        let plan = lower(&p, &binding(), CommConfig::default()).unwrap();
        // MatMul + AllReduce + add + dropout + add = 5 launches.
        assert_eq!(plan.steps.len(), 5);
        assert_eq!(plan.total_launches(), 5);
        assert!(matches!(plan.steps[0], Step::MatMul(_)));
        assert!(matches!(plan.steps[1], Step::Collective(_)));
        if let Step::MatMul(mm) = &plan.steps[0] {
            // Per-rank GEMM: [B*S, H/16] x [H/16, H].
            assert_eq!(mm.m, 8 * 1024);
            assert_eq!(mm.k, 1024 / 16);
            assert_eq!(mm.n, 1024);
        }
        if let Step::Collective(c) = &plan.steps[1] {
            assert_eq!(c.kind, CollKind::AllReduce);
            assert_eq!(c.elems, 8 * 1024 * 1024);
        }
    }

    #[test]
    fn overlapped_schedule_lowers_to_one_pipeline() {
        let (mut p, vars) = figure3();
        let (layer, sum, biased, d, out) = (vars[0], vars[1], vars[2], vars[3], vars[4]);
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag]).unwrap();
        overlap(&mut p, &[layer, rs]).unwrap();
        let plan = lower(&p, &binding(), CommConfig::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        if let Step::Overlapped(ol) = &plan.steps[0] {
            assert_eq!(ol.stages.len(), 2);
            assert!(matches!(ol.stages[0], OverlapStage::MatMul(_)));
            assert!(matches!(ol.stages[1], OverlapStage::FusedCollective(_)));
            if let OverlapStage::FusedCollective(f) = &ol.stages[1] {
                assert_eq!(f.elems, 8 * 1024 * 1024);
                assert!(f.n_fused_ops >= 3);
                // Fused compute reads b and Slice(r).
                assert!(f.extra_bytes_read > 0);
            }
        } else {
            panic!("expected an overlapped step, got {:?}", plan.steps[0]);
        }
        // One launch per stage: 2 total (vs 5 for the baseline).
        assert_eq!(plan.total_launches(), 2);
    }

    #[test]
    fn overlap_of_unfused_kernels_fails_at_lowering() {
        let (mut p, vars) = figure3();
        let (layer, sum) = (vars[0], vars[1]);
        overlap(&mut p, &[layer, sum]).unwrap();
        // AllReduce alone can overlap with MatMul -- but the following
        // unfused adds cannot be stages; this plan is still fine since
        // the adds are outside the overlap group.
        let plan = lower(&p, &binding(), CommConfig::default()).unwrap();
        assert!(matches!(plan.steps[0], Step::Overlapped(_)));

        // Overlapping a raw pointwise op is rejected at lowering.
        let (mut p2, vars2) = figure3();
        let (sum2, biased2) = (vars2[1], vars2[2]);
        overlap(&mut p2, &[sum2, biased2]).unwrap();
        assert!(matches!(
            lower(&p2, &binding(), CommConfig::default()),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn send_lowering() {
        let mut p = Program::new("pipe");
        let x = p.input("in", DType::F16, ["B", "H"], Layout::Local);
        let sum = p.all_reduce(ReduceOp::Sum, x).unwrap();
        let out = p.send(sum, crate::PeerSelector::NextGroupSameRank).unwrap();
        p.set_io(&[x], &[out]).unwrap();
        let b = Binding::new(4).with_groups(2).bind("B", 8).bind("H", 64);
        let plan = lower(&p, &b, CommConfig::default()).unwrap();
        assert_eq!(plan.steps.len(), 2);
        if let Step::SendRecv(s) = &plan.steps[1] {
            // Replicated send: the full tensor from every rank.
            assert_eq!(s.elems_per_rank, 8 * 64);
        } else {
            panic!("expected SendRecv");
        }
    }

    #[test]
    fn sliced_norm_emits_scalar_allreduce() {
        let mut p = Program::new("norms");
        let g = p.input("g", DType::F32, ["N"], Layout::Local);
        let rs = p.reduce_scatter(ReduceOp::Sum, g).unwrap();
        let n = p.norm(rs).unwrap();
        p.set_io(&[g], &[n]).unwrap();
        let b = Binding::new(4).bind("N", 64);
        let plan = lower(&p, &b, CommConfig::default()).unwrap();
        // RS + norm kernel + scalar AR.
        assert_eq!(plan.steps.len(), 3);
        assert!(plan.steps[2].label().contains("norm-allreduce"));
    }
}
