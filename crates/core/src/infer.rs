//! Shape, layout, and dtype inference rules (§2.2 of the paper).
//!
//! "A Var's shape and distribution layout are inferred based on the
//! operation and inputs to the operation." These functions implement
//! the per-operation rules; [`crate::Program`]'s builder methods call
//! them, so every constructed program is statically typed.

use coconet_tensor::DType;

use crate::{CoreError, Layout, SliceDim, SymShape, TensorType};

fn layout_err(op: &str, detail: impl Into<String>) -> CoreError {
    CoreError::LayoutIncompatible {
        op: op.to_string(),
        detail: detail.into(),
    }
}

fn check_same_group(op: &str, a: &TensorType, b: &TensorType) -> Result<(), CoreError> {
    if a.group_shift != b.group_shift {
        return Err(layout_err(
            op,
            format!(
                "operands live on different groups (+{} vs +{})",
                a.group_shift, b.group_shift
            ),
        ));
    }
    Ok(())
}

/// Infers the type of a binary pointwise operation with broadcasting.
///
/// Layout rules:
/// - `Replicated ⊕ Replicated → Replicated`
/// - `Local ⊕ {Local, Replicated} → Local`
/// - `Sliced(d) ⊕ Sliced(d) → Sliced(d)` (identical shapes)
/// - `Sliced(d) ⊕ Replicated → Sliced(d)` provided the replicated
///   operand broadcasts without covering the sliced dimension (a `[H]`
///   bias against a `[B,S,H]` tensor sliced on `B` or flat-sliced; a
///   full-shape replicated operand must be `Slice`d first — §3.2)
///
/// # Errors
///
/// Returns [`CoreError::ShapeIncompatible`] or
/// [`CoreError::LayoutIncompatible`] when the rule table has no entry.
pub fn infer_binary(op: &str, a: &TensorType, b: &TensorType) -> Result<TensorType, CoreError> {
    check_same_group(op, a, b)?;
    let shape = a.shape.broadcast(&b.shape)?;
    let dtype = DType::promote(a.dtype, b.dtype);
    let layout = match (a.layout, b.layout) {
        (Layout::Replicated, Layout::Replicated) => Layout::Replicated,
        (Layout::Local, Layout::Local)
        | (Layout::Local, Layout::Replicated)
        | (Layout::Replicated, Layout::Local) => Layout::Local,
        (Layout::Sliced(d), Layout::Sliced(e)) => {
            if d != e || a.shape != b.shape {
                return Err(layout_err(
                    op,
                    format!(
                        "sliced operands must match: {}({}) vs {}({})",
                        a.layout, a.shape, b.layout, b.shape
                    ),
                ));
            }
            Layout::Sliced(d)
        }
        (Layout::Sliced(d), Layout::Replicated) => sliced_replicated(op, d, &a.shape, &b.shape)?,
        (Layout::Replicated, Layout::Sliced(d)) => sliced_replicated(op, d, &b.shape, &a.shape)?,
        (Layout::Sliced(_), Layout::Local) | (Layout::Local, Layout::Sliced(_)) => {
            return Err(layout_err(op, "cannot combine sliced and local operands"));
        }
    };
    Ok(TensorType {
        dtype,
        shape,
        layout,
        group_shift: a.group_shift,
    })
}

/// `Sliced(d) ⊕ Replicated`: valid when the replicated operand does not
/// cover the sliced dimension under right-aligned broadcasting. For
/// flat slicing the replicated operand must broadcast strictly from
/// trailing dimensions (rank smaller than the sliced operand's).
fn sliced_replicated(
    op: &str,
    d: SliceDim,
    sliced_shape: &SymShape,
    repl_shape: &SymShape,
) -> Result<Layout, CoreError> {
    let target_rank = sliced_shape.rank();
    let covered = match d {
        SliceDim::Dim(dim) => repl_shape.covers_dim(target_rank, dim),
        SliceDim::Flat => {
            // Flat slicing cuts the leading dimension(s): any operand
            // covering dim 0 would straddle slice boundaries.
            repl_shape.rank() >= target_rank && repl_shape.covers_dim(target_rank, 0)
        }
    };
    if covered {
        return Err(layout_err(
            op,
            format!(
                "replicated operand {repl_shape} covers the sliced dimension ({d}); \
                 apply Slice() to it first"
            ),
        ));
    }
    Ok(Layout::Sliced(d))
}

/// Whether a replicated operand of this shape conflicts with a sliced
/// operand (i.e. would need a `Slice` inserted by `reorder`, §3.2).
pub(crate) fn replicated_conflicts(
    d: SliceDim,
    sliced_shape: &SymShape,
    repl_shape: &SymShape,
) -> bool {
    sliced_replicated("reorder-check", d, sliced_shape, repl_shape).is_err()
}

/// Infers the type of `a @ w` (`w` 2-D).
///
/// Layout rules (the model-parallel algebra of §2.2 / Figure 3):
/// - `Sliced(last) @ Sliced(0) → Local` (row-parallel partial sums)
/// - `Replicated @ Sliced(1) → Sliced(last)` (column-parallel)
/// - `Replicated @ Replicated → Replicated`
/// - `Local @ Replicated → Local`
/// - `Sliced(d<last) @ Replicated → Sliced(d)` (batch-parallel)
///
/// # Errors
///
/// Returns [`CoreError::ShapeIncompatible`] when the contraction
/// dimensions differ and [`CoreError::LayoutIncompatible`] when the
/// layouts have no rule.
pub fn infer_matmul(a: &TensorType, w: &TensorType) -> Result<TensorType, CoreError> {
    check_same_group("MatMul", a, w)?;
    if w.shape.rank() != 2 || a.shape.rank() < 1 {
        return Err(CoreError::ShapeIncompatible {
            lhs: a.shape.to_string(),
            rhs: w.shape.to_string(),
        });
    }
    let a_last = &a.shape.dims()[a.shape.rank() - 1];
    let w_first = &w.shape.dims()[0];
    // For row-parallel matmul the *global* contraction dims match and
    // both operands are sliced on them; otherwise they must be equal.
    if a_last != w_first {
        return Err(CoreError::ShapeIncompatible {
            lhs: a.shape.to_string(),
            rhs: w.shape.to_string(),
        });
    }
    let mut out_dims = a.shape.dims().to_vec();
    let out_rank = out_dims.len();
    out_dims[out_rank - 1] = w.shape.dims()[1].clone();
    let shape = SymShape::new(out_dims);
    let dtype = DType::promote(a.dtype, w.dtype);

    let a_rank = a.shape.rank();
    let layout = match (a.layout, w.layout) {
        (Layout::Sliced(SliceDim::Dim(d)), Layout::Sliced(SliceDim::Dim(0))) if d == a_rank - 1 => {
            Layout::Local
        }
        (Layout::Replicated, Layout::Sliced(SliceDim::Dim(1))) => {
            Layout::Sliced(SliceDim::Dim(out_rank - 1))
        }
        (Layout::Replicated, Layout::Replicated) => Layout::Replicated,
        (Layout::Local, Layout::Replicated) => Layout::Local,
        (Layout::Sliced(SliceDim::Dim(d)), Layout::Replicated) if d < a_rank - 1 => {
            Layout::Sliced(SliceDim::Dim(d))
        }
        (la, lw) => {
            return Err(layout_err("MatMul", format!("no rule for {la} @ {lw}")));
        }
    };
    Ok(TensorType {
        dtype,
        shape,
        layout,
        group_shift: a.group_shift,
    })
}

/// Infers the type of `conv2d(x, w)` (`x: [N,C,H,W]`, `w: [K,C,R,S]`).
///
/// Spatial and channel extents must be constants (the output extent
/// `(H + 2p - R)/stride + 1` is not expressible symbolically); the
/// batch dimension may be symbolic. Layout rules:
/// `Replicated conv Replicated -> Replicated`,
/// `Local conv Replicated -> Local`,
/// `Sliced(0) conv Replicated -> Sliced(0)` (batch-parallel).
///
/// # Errors
///
/// Returns shape/layout errors for anything else.
pub fn infer_conv2d(
    x: &TensorType,
    w: &TensorType,
    params: coconet_tensor::Conv2dParams,
) -> Result<TensorType, CoreError> {
    check_same_group("Conv2d", x, w)?;
    let err = || CoreError::ShapeIncompatible {
        lhs: x.shape.to_string(),
        rhs: w.shape.to_string(),
    };
    if x.shape.rank() != 4 || w.shape.rank() != 4 || params.stride == 0 {
        return Err(err());
    }
    let cdim = |d: &crate::Dim| match d {
        crate::Dim::Const(v) => Ok(*v as usize),
        crate::Dim::Sym(_) => Err(err()),
    };
    let (c_in, h, wd) = (
        cdim(&x.shape.dims()[1])?,
        cdim(&x.shape.dims()[2])?,
        cdim(&x.shape.dims()[3])?,
    );
    let (k, c_w, r, sdim) = (
        cdim(&w.shape.dims()[0])?,
        cdim(&w.shape.dims()[1])?,
        cdim(&w.shape.dims()[2])?,
        cdim(&w.shape.dims()[3])?,
    );
    if c_in != c_w {
        return Err(err());
    }
    let (Some(oh), Some(ow)) = (params.out_extent(h, r), params.out_extent(wd, sdim)) else {
        return Err(err());
    };
    if oh == 0 || ow == 0 {
        return Err(err());
    }
    let layout = match (x.layout, w.layout) {
        (Layout::Replicated, Layout::Replicated) => Layout::Replicated,
        (Layout::Local, Layout::Replicated) => Layout::Local,
        (Layout::Sliced(SliceDim::Dim(0)), Layout::Replicated) => Layout::Sliced(SliceDim::Dim(0)),
        (lx, lw) => {
            return Err(layout_err("Conv2d", format!("no rule for {lx} conv {lw}")));
        }
    };
    let shape = SymShape::new(vec![
        x.shape.dims()[0].clone(),
        crate::Dim::Const(k as u64),
        crate::Dim::Const(oh as u64),
        crate::Dim::Const(ow as u64),
    ]);
    Ok(TensorType {
        dtype: DType::promote(x.dtype, w.dtype),
        shape,
        layout,
        group_shift: x.group_shift,
    })
}

/// Infers the type of a norm/full-reduction: a replicated scalar.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] for `Local` operands (a
/// reduction over rank-dependent values is ambiguous; reduce after an
/// AllReduce instead).
pub fn infer_full_reduction(op: &str, a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout == Layout::Local {
        return Err(layout_err(
            op,
            "cannot reduce a Local tensor to a scalar; AllReduce it first",
        ));
    }
    let mut t = TensorType::scalar(DType::F32);
    t.group_shift = a.group_shift;
    Ok(t)
}

/// Infers the type of `Slice(a)`: this rank's flat share of a
/// replicated tensor.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] unless `a` is replicated.
pub fn infer_slice(a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout != Layout::Replicated {
        return Err(layout_err("Slice", "operand must be Replicated"));
    }
    Ok(TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: Layout::sliced_flat(),
        group_shift: a.group_shift,
    })
}

/// Infers the type of `AllReduce(op, a)`: local in, replicated out.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] unless `a` is `Local`.
pub fn infer_all_reduce(a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout != Layout::Local {
        return Err(layout_err(
            "AllReduce",
            format!("operand must be Local, got {}", a.layout),
        ));
    }
    Ok(TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: Layout::Replicated,
        group_shift: a.group_shift,
    })
}

/// Infers the type of `ReduceScatter(op, a)`: local in, flat-sliced out.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] unless `a` is `Local`.
pub fn infer_reduce_scatter(a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout != Layout::Local {
        return Err(layout_err(
            "ReduceScatter",
            format!("operand must be Local, got {}", a.layout),
        ));
    }
    Ok(TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: Layout::sliced_flat(),
        group_shift: a.group_shift,
    })
}

/// Infers the type of `AllGather(a)`: sliced in, replicated out.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] unless `a` is sliced.
pub fn infer_all_gather(a: &TensorType) -> Result<TensorType, CoreError> {
    if !a.layout.is_sliced() {
        return Err(layout_err(
            "AllGather",
            format!("operand must be Sliced, got {}", a.layout),
        ));
    }
    Ok(TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: Layout::Replicated,
        group_shift: a.group_shift,
    })
}

/// Infers the type of `Broadcast(a, root)`: replicated out.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] for sliced operands.
pub fn infer_broadcast(a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout.is_sliced() {
        return Err(layout_err(
            "Broadcast",
            "operand must be Local or Replicated",
        ));
    }
    Ok(TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: Layout::Replicated,
        group_shift: a.group_shift,
    })
}

/// Infers the type of `Reduce(op, a, root)`: the result is only
/// meaningful on the root, hence `Local`.
///
/// # Errors
///
/// Returns [`CoreError::LayoutIncompatible`] unless `a` is `Local`.
pub fn infer_reduce(a: &TensorType) -> Result<TensorType, CoreError> {
    if a.layout != Layout::Local {
        return Err(layout_err(
            "Reduce",
            format!("operand must be Local, got {}", a.layout),
        ));
    }
    Ok(a.clone())
}

/// Infers the type of `Send(a, peer)`: the same value, one group
/// downstream.
pub fn infer_send(a: &TensorType) -> TensorType {
    TensorType {
        dtype: a.dtype,
        shape: a.shape.clone(),
        layout: a.layout,
        group_shift: a.group_shift + 1,
    }
}

/// Infers the type of `Update(target, value)`.
///
/// Matching layouts update in place. A *sliced* value against a
/// *replicated* target is the state the `reorder` transformation
/// creates (each rank updates only its slice of the optimizer state,
/// §4): the result is sliced, and either an AllGather re-materializes
/// the replicated tensor or `asSlice` later commits the target to
/// staying sliced.
///
/// # Errors
///
/// Returns [`CoreError::ShapeIncompatible`] /
/// [`CoreError::LayoutIncompatible`] on mismatch.
pub fn infer_update(target: &TensorType, value: &TensorType) -> Result<TensorType, CoreError> {
    check_same_group("Update", target, value)?;
    if target.shape != value.shape {
        return Err(CoreError::ShapeIncompatible {
            lhs: target.shape.to_string(),
            rhs: value.shape.to_string(),
        });
    }
    let layout = match (target.layout, value.layout) {
        (a, b) if a == b => a,
        (Layout::Replicated, Layout::Sliced(d)) => Layout::Sliced(d),
        (t, v) => {
            return Err(layout_err("Update", format!("target is {t}, value is {v}")));
        }
    };
    Ok(TensorType {
        dtype: target.dtype,
        shape: target.shape.clone(),
        layout,
        group_shift: target.group_shift,
    })
}

/// Re-infers the type of any non-leaf operation from its operand types
/// (used after transformations rewire the graph).
///
/// # Errors
///
/// Propagates the per-operation inference errors; leaf operations
/// (`Input`, `ConstScalar`) return [`CoreError::MalformedProgram`].
pub fn infer_op(op: &crate::OpKind, tys: &[&TensorType]) -> Result<TensorType, CoreError> {
    use crate::OpKind;
    match op {
        OpKind::Input | OpKind::ConstScalar(_) => Err(CoreError::MalformedProgram(
            "cannot re-infer a leaf node".into(),
        )),
        OpKind::Unary(_, _) | OpKind::Dropout(_, _) => Ok(tys[0].clone()),
        OpKind::Binary(b, _, _) => infer_binary(b.symbol(), tys[0], tys[1]),
        OpKind::MatMul(_, _) => infer_matmul(tys[0], tys[1]),
        OpKind::Conv2d(_, _, params) => infer_conv2d(tys[0], tys[1], *params),
        OpKind::Update(_, _) => infer_update(tys[0], tys[1]),
        OpKind::Norm(_) => infer_full_reduction("Norm", tys[0]),
        OpKind::ReduceTensor(_, _) => infer_full_reduction("ReduceTensor", tys[0]),
        OpKind::Slice(_) => infer_slice(tys[0]),
        OpKind::AllReduce(_, _) => infer_all_reduce(tys[0]),
        OpKind::ReduceScatter(_, _) => infer_reduce_scatter(tys[0]),
        OpKind::AllGather(_) => infer_all_gather(tys[0]),
        OpKind::Broadcast(_, _) => infer_broadcast(tys[0]),
        OpKind::Reduce(_, _, _) => infer_reduce(tys[0]),
        OpKind::Send(_, _) => Ok(infer_send(tys[0])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dtype: DType, shape: SymShape, layout: Layout) -> TensorType {
        TensorType::new(dtype, shape, layout)
    }

    #[test]
    fn binary_layout_table() {
        let rep = t(DType::F16, ["B", "H"].into(), Layout::Replicated);
        let loc = t(DType::F16, ["B", "H"].into(), Layout::Local);
        let sl = t(DType::F16, ["B", "H"].into(), Layout::sliced_flat());
        assert_eq!(
            infer_binary("+", &rep, &rep).unwrap().layout,
            Layout::Replicated
        );
        assert_eq!(infer_binary("+", &loc, &rep).unwrap().layout, Layout::Local);
        assert_eq!(infer_binary("+", &rep, &loc).unwrap().layout, Layout::Local);
        assert_eq!(
            infer_binary("+", &sl, &sl).unwrap().layout,
            Layout::sliced_flat()
        );
        assert!(infer_binary("+", &sl, &loc).is_err());
    }

    #[test]
    fn sliced_plus_bias_is_ok_but_full_replicated_is_not() {
        // rsSum (flat-sliced [B,S,H]) + b ([H] replicated) is valid...
        let rs = t(DType::F16, ["B", "S", "H"].into(), Layout::sliced_flat());
        let bias = t(DType::F16, ["H"].into(), Layout::Replicated);
        let out = infer_binary("+", &rs, &bias).unwrap();
        assert_eq!(out.layout, Layout::sliced_flat());
        // ...but + r ([B,S,H] replicated) requires Slice(r) first (§3.2).
        let r = t(DType::F16, ["B", "S", "H"].into(), Layout::Replicated);
        assert!(infer_binary("+", &rs, &r).is_err());
        let r_sliced = infer_slice(&r).unwrap();
        assert!(infer_binary("+", &rs, &r_sliced).is_ok());
    }

    #[test]
    fn dim_sliced_plus_replicated() {
        // [B,S,H] sliced on dim 0 + [H] bias: fine.
        let s0 = t(DType::F16, ["B", "S", "H"].into(), Layout::sliced(0));
        let bias = t(DType::F16, ["H"].into(), Layout::Replicated);
        assert_eq!(
            infer_binary("+", &s0, &bias).unwrap().layout,
            Layout::sliced(0)
        );
        // [B,S,H] sliced on dim 2 + [H] bias: bias covers dim 2 -> error.
        let s2 = t(DType::F16, ["B", "S", "H"].into(), Layout::sliced(2));
        assert!(infer_binary("+", &s2, &bias).is_err());
    }

    #[test]
    fn binary_promotes_dtype_and_broadcasts() {
        let a = t(DType::F16, ["B", "H"].into(), Layout::Replicated);
        let b = t(DType::F32, ["H"].into(), Layout::Replicated);
        let out = infer_binary("*", &a, &b).unwrap();
        assert_eq!(out.dtype, DType::F32);
        assert_eq!(out.shape, ["B", "H"].into());
    }

    #[test]
    fn matmul_row_parallel_is_local() {
        // Figure 3: in [B,S,H] sliced(2) @ w [H,H] sliced(0) -> Local.
        let input = t(DType::F16, ["B", "S", "H"].into(), Layout::sliced(2));
        let w = t(DType::F16, ["H", "H2"].into(), Layout::sliced(0));
        let out = infer_matmul(&input, &w).unwrap();
        assert_eq!(out.layout, Layout::Local);
        assert_eq!(out.shape, ["B", "S", "H2"].into());
    }

    #[test]
    fn matmul_column_parallel_is_sliced() {
        let input = t(DType::F16, ["B", "S", "H"].into(), Layout::Replicated);
        let w = t(DType::F16, ["H", "H2"].into(), Layout::sliced(1));
        let out = infer_matmul(&input, &w).unwrap();
        assert_eq!(out.layout, Layout::sliced(2));
    }

    #[test]
    fn matmul_rejects_bad_shapes_and_layouts() {
        let a = t(DType::F16, ["B", "K"].into(), Layout::Replicated);
        let w_bad = t(DType::F16, ["X", "N"].into(), Layout::Replicated);
        assert!(infer_matmul(&a, &w_bad).is_err());
        let w_3d = t(DType::F16, ["K", "N", "N"].into(), Layout::Replicated);
        assert!(infer_matmul(&a, &w_3d).is_err());
        let w_local = t(DType::F16, ["K", "N"].into(), Layout::Local);
        assert!(infer_matmul(&a, &w_local).is_err());
    }

    #[test]
    fn collective_rules() {
        let loc = t(DType::F16, ["N"].into(), Layout::Local);
        let rep = t(DType::F16, ["N"].into(), Layout::Replicated);
        assert_eq!(infer_all_reduce(&loc).unwrap().layout, Layout::Replicated);
        assert!(infer_all_reduce(&rep).is_err());
        assert_eq!(
            infer_reduce_scatter(&loc).unwrap().layout,
            Layout::sliced_flat()
        );
        assert!(infer_reduce_scatter(&rep).is_err());
        let sl = infer_reduce_scatter(&loc).unwrap();
        assert_eq!(infer_all_gather(&sl).unwrap().layout, Layout::Replicated);
        assert!(infer_all_gather(&rep).is_err());
        assert_eq!(infer_broadcast(&loc).unwrap().layout, Layout::Replicated);
        assert!(infer_broadcast(&sl).is_err());
        assert_eq!(infer_reduce(&loc).unwrap().layout, Layout::Local);
        assert!(infer_reduce(&rep).is_err());
    }

    #[test]
    fn send_shifts_group() {
        let rep = t(DType::F16, ["N"].into(), Layout::Replicated);
        let sent = infer_send(&rep);
        assert_eq!(sent.group_shift, 1);
        let sent2 = infer_send(&sent);
        assert_eq!(sent2.group_shift, 2);
    }

    #[test]
    fn cross_group_binary_rejected() {
        let rep = t(DType::F16, ["N"].into(), Layout::Replicated);
        let sent = infer_send(&rep);
        assert!(infer_binary("+", &rep, &sent).is_err());
    }

    #[test]
    fn reductions_to_scalar() {
        let rep = t(DType::F16, ["N"].into(), Layout::Replicated);
        let sl = t(DType::F16, ["N"].into(), Layout::sliced_flat());
        let loc = t(DType::F16, ["N"].into(), Layout::Local);
        for input in [&rep, &sl] {
            let out = infer_full_reduction("Norm", input).unwrap();
            assert_eq!(out.layout, Layout::Replicated);
            assert_eq!(out.shape.rank(), 0);
            assert_eq!(out.dtype, DType::F32);
        }
        assert!(infer_full_reduction("Norm", &loc).is_err());
    }

    #[test]
    fn update_layout_rules() {
        let p = t(DType::F32, ["N"].into(), Layout::Replicated);
        let v = t(DType::F32, ["N"].into(), Layout::Replicated);
        assert_eq!(infer_update(&p, &v).unwrap().layout, Layout::Replicated);
        // Sliced value against replicated target: the reorder state.
        let v_sliced = t(DType::F32, ["N"].into(), Layout::sliced_flat());
        assert_eq!(
            infer_update(&p, &v_sliced).unwrap().layout,
            Layout::sliced_flat()
        );
        // Sliced target (after asSlice) takes sliced values only.
        let p_sliced = t(DType::F32, ["N"].into(), Layout::sliced_flat());
        assert!(infer_update(&p_sliced, &v_sliced).is_ok());
        assert!(infer_update(&p_sliced, &v).is_err());
        let v_wrong_shape = t(DType::F32, ["M"].into(), Layout::Replicated);
        assert!(infer_update(&p, &v_wrong_shape).is_err());
        // Local targets have no rule.
        let loc = t(DType::F32, ["N"].into(), Layout::Local);
        assert!(infer_update(&loc, &v_sliced).is_err());
    }
}
