//! The executable plan: what a scheduled program lowers to.
//!
//! A plan is a sequence of device *steps* — kernel launches, NCCL-style
//! collective calls, fused-collective kernels, P2P transfers, and
//! overlapped pipelines of those. The performance simulator
//! (`coconet-sim`) costs each step against a machine model; the code
//! generator emits CUDA-like source for each step.

use std::fmt;

use coconet_compress::WireFormat;
use coconet_tensor::{DType, ReduceOp};

/// NCCL communication protocol (§5.1). Protocols trade latency for
/// bandwidth: `LL` (low latency) sends 8-byte packs with inline flags
/// at half line rate; `LL128` stages through shared memory reaching
/// ~95 % of line rate; `Simple` reaches full line rate with the
/// highest synchronization latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Low-latency 8-byte packs (flag per 4 bytes), ~50 % bandwidth.
    LL,
    /// 128-byte shared-memory staging, ~95 % bandwidth.
    LL128,
    /// Full-bandwidth protocol with chunk-granularity synchronization.
    Simple,
}

impl Protocol {
    /// All protocols, for autotuner sweeps.
    pub const ALL: [Protocol; 3] = [Protocol::LL, Protocol::LL128, Protocol::Simple];
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::LL => write!(f, "LL"),
            Protocol::LL128 => write!(f, "LL128"),
            Protocol::Simple => write!(f, "Simple"),
        }
    }
}

/// Collective algorithm — the logical topology a collective runs over
/// (§5.1: "NCCL creates logical topologies, such as ring and tree,
/// over the underlying interconnect network"). Like the protocol, the
/// algorithm is a tuned schedule dimension: rings win bandwidth-bound
/// large messages, trees win latency-bound small ones, and the
/// two-level hierarchical variant splits the work into intra-node
/// NVLink rings plus an inter-node exchange across node leaders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollAlgo {
    /// Flat ring over all ranks: `2(k−1)` steps, `2(k−1)/k` volume for
    /// an AllReduce — the bandwidth-optimal choice.
    Ring,
    /// Binomial tree (reduce + broadcast): `2·log2(k)` rounds moving
    /// the full payload each — the latency-optimal choice.
    Tree,
    /// Two-level: intra-node ring over NVLink, inter-node exchange
    /// across node leaders over InfiniBand (the DGX-2 shape).
    Hierarchical,
    /// In-network aggregation (SwitchML-style): every worker streams
    /// fixed-point-quantized chunks to a programmable switch that
    /// aggregates them in flight and multicasts the result back.
    /// Per-worker AllReduce volume is exactly `2·n` wire words — two
    /// hops, *constant in the number of workers* — at the price of an
    /// integer-quantized wire.
    Switch,
}

impl CollAlgo {
    /// All algorithms, for autotuner sweeps.
    pub const ALL: [CollAlgo; 4] = [
        CollAlgo::Ring,
        CollAlgo::Tree,
        CollAlgo::Hierarchical,
        CollAlgo::Switch,
    ];

    /// Position of this algorithm in [`CollAlgo::ALL`] (for
    /// per-algorithm lookup tables).
    pub fn index(self) -> usize {
        match self {
            CollAlgo::Ring => 0,
            CollAlgo::Tree => 1,
            CollAlgo::Hierarchical => 2,
            CollAlgo::Switch => 3,
        }
    }
}

impl fmt::Display for CollAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollAlgo::Ring => write!(f, "Ring"),
            CollAlgo::Tree => write!(f, "Tree"),
            CollAlgo::Hierarchical => write!(f, "Hier"),
            CollAlgo::Switch => write!(f, "Switch"),
        }
    }
}

/// How iteration boundaries are scheduled onto the communication
/// fabric — the steady-state dimension (ROADMAP item 1, BytePS's
/// "cross global barrier"). Like the algorithm and protocol, the
/// scheduling discipline is a tuned dimension: the barriered loop
/// drains every collective before the next iteration starts, while
/// the priority scheduler keeps iteration *i*'s gradient collectives
/// draining under iteration *i+1*'s forward pass, servicing the
/// earliest-consumed tensors first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommSched {
    /// Global barrier between iterations: all collectives drain before
    /// the next iteration's first kernel.
    Barriered,
    /// Barrier-free streaming: collectives are tagged with the
    /// consuming step's position in the next iteration's forward order
    /// and the fabric services the highest-priority (earliest-consumed)
    /// tensors first, preempting between chunks.
    Priority,
}

impl CommSched {
    /// All scheduling disciplines, for autotuner sweeps. `Barriered`
    /// comes first so a tie (any comm-free plan) deterministically
    /// keeps the simpler discipline.
    pub const ALL: [CommSched; 2] = [CommSched::Barriered, CommSched::Priority];

    /// Position of this discipline in [`CommSched::ALL`].
    pub fn index(self) -> usize {
        match self {
            CommSched::Barriered => 0,
            CommSched::Priority => 1,
        }
    }
}

impl fmt::Display for CommSched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommSched::Barriered => write!(f, "Barriered"),
            CommSched::Priority => write!(f, "Priority"),
        }
    }
}

/// How cross-job transfers share a contended fabric — the
/// multi-tenant dimension (MLfabric's observation that *reordering*
/// transfers across concurrent jobs, instead of letting them fair-share
/// the links, is itself a first-class optimization). A solo program is
/// priced identically under both disciplines (no contention, nothing
/// to reorder), so the dimension is cost-neutral for single-job tuning
/// and the pruning floors stay admissible unchanged; the multi-tenant
/// simulator (`coconet-sim::multitenant`) and the runtime
/// `CommScheduler` are where the two disciplines diverge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum XferSched {
    /// Naive arrival-order sharing: overlapping transfers fair-share
    /// the contended links (generalized processor sharing).
    #[default]
    Fifo,
    /// Contention-aware reordering: the fabric serves whole transfers
    /// in shortest-remaining-work order across jobs, so small jobs
    /// stop convoying behind large ones.
    Aware,
}

impl XferSched {
    /// All transfer disciplines, for autotuner sweeps. `Fifo` comes
    /// first so a tie (every single-job plan — the dimension is
    /// cost-neutral without contention) deterministically keeps the
    /// simpler discipline.
    pub const ALL: [XferSched; 2] = [XferSched::Fifo, XferSched::Aware];

    /// Position of this discipline in [`XferSched::ALL`].
    pub fn index(self) -> usize {
        match self {
            XferSched::Fifo => 0,
            XferSched::Aware => 1,
        }
    }
}

impl fmt::Display for XferSched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XferSched::Fifo => write!(f, "Fifo"),
            XferSched::Aware => write!(f, "Aware"),
        }
    }
}

/// Communication configuration for a plan: collective algorithm,
/// protocol, channel count (each NCCL channel is one thread block
/// bound to one NIC/ring copy), the payload's wire format
/// (dense / FP16 / top-k sparsified — the `coconet-compress`
/// dimension), the iteration-scheduling discipline
/// (barriered / priority-streamed — the steady-state dimension), and
/// the cross-job transfer discipline (FIFO fair-sharing /
/// contention-aware — the multi-tenant dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommConfig {
    /// Collective algorithm (logical topology).
    pub algo: CollAlgo,
    /// Wire protocol.
    pub protocol: Protocol,
    /// Number of channels (2–64 in the paper's autotuner sweep).
    pub channels: usize,
    /// Payload representation on the wire.
    pub format: WireFormat,
    /// Iteration-boundary scheduling discipline.
    pub sched: CommSched,
    /// Cross-job transfer discipline on a shared fabric.
    pub xfer: XferSched,
}

impl CommConfig {
    /// The same configuration under a different algorithm.
    pub fn with_algo(self, algo: CollAlgo) -> CommConfig {
        CommConfig { algo, ..self }
    }

    /// The same configuration under a different wire format.
    pub fn with_format(self, format: WireFormat) -> CommConfig {
        CommConfig { format, ..self }
    }

    /// The same configuration under a different scheduling discipline.
    pub fn with_sched(self, sched: CommSched) -> CommConfig {
        CommConfig { sched, ..self }
    }

    /// The same configuration under a different transfer discipline.
    pub fn with_xfer(self, xfer: XferSched) -> CommConfig {
        CommConfig { xfer, ..self }
    }
}

impl Default for CommConfig {
    fn default() -> CommConfig {
        CommConfig {
            algo: CollAlgo::Ring,
            protocol: Protocol::Simple,
            channels: 16,
            format: WireFormat::Dense,
            sched: CommSched::Barriered,
            xfer: XferSched::Fifo,
        }
    }
}

impl fmt::Display for CommConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}ch/{}",
            self.algo, self.protocol, self.channels, self.format
        )?;
        // The default disciplines are elided, keeping single-iteration
        // single-job plan displays (and their pinned test strings)
        // unchanged.
        if self.sched != CommSched::Barriered {
            write!(f, "/{}", self.sched)?;
        }
        if self.xfer != XferSched::Fifo {
            write!(f, "/{}", self.xfer)?;
        }
        Ok(())
    }
}

/// Which collective a communication step performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// AllReduce (ring: 2(k−1)/k data volume per rank).
    AllReduce,
    /// ReduceScatter ((k−1)/k volume).
    ReduceScatter,
    /// AllGather ((k−1)/k volume).
    AllGather,
    /// Broadcast from a root.
    Broadcast,
    /// Reduce to a root.
    Reduce,
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollKind::AllReduce => write!(f, "AllReduce"),
            CollKind::ReduceScatter => write!(f, "ReduceScatter"),
            CollKind::AllGather => write!(f, "AllGather"),
            CollKind::Broadcast => write!(f, "Broadcast"),
            CollKind::Reduce => write!(f, "Reduce"),
        }
    }
}

/// Scattered-tensor execution info (§5.4): the collective walks many
/// non-contiguous tensors through a bucket table instead of one
/// contiguous buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterInfo {
    /// Number of distinct (non-contiguous) tensors.
    pub n_tensors: u64,
    /// Total number of 2^10-element buckets.
    pub n_buckets: u64,
}

/// A fused pointwise kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStep {
    /// Human-readable label (op names).
    pub label: String,
    /// Bytes read from device memory (per rank).
    pub bytes_read: u64,
    /// Bytes written to device memory (per rank).
    pub bytes_written: u64,
    /// Floating-point operations (per rank).
    pub flops: u64,
    /// Number of DSL operations fused into this kernel.
    pub n_ops: usize,
}

/// A GEMM launch with per-rank dimensions `[m, k] x [k, n]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MatMulStep {
    /// Human-readable label.
    pub label: String,
    /// Rows of the left operand (per rank).
    pub m: u64,
    /// Contraction dimension (per rank).
    pub k: u64,
    /// Columns of the right operand (per rank).
    pub n: u64,
    /// Element type.
    pub dtype: DType,
}

impl MatMulStep {
    /// Total floating-point operations (2·m·k·n).
    pub fn flops(&self) -> u64 {
        2 * self.m * self.k * self.n
    }

    /// Bytes touched (A + B read, C written).
    pub fn bytes(&self) -> u64 {
        let e = self.dtype.size_bytes() as u64;
        (self.m * self.k + self.k * self.n + self.m * self.n) * e
    }
}

/// A plain collective call (one NCCL kernel launch).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveStep {
    /// Human-readable label.
    pub label: String,
    /// Collective kind.
    pub kind: CollKind,
    /// The reduction operator, for the reducing kinds (`Sum` for the
    /// gather/broadcast kinds, where it is unused). The cost model
    /// needs it because the sparse top-k wire exists only for *sum*
    /// AllReduces — a Min/Max AllReduce must be priced on the wire the
    /// runtime will actually run.
    pub op: ReduceOp,
    /// Collective algorithm, stamped by lowering from the plan's
    /// [`CommConfig`].
    pub algo: CollAlgo,
    /// Global element count of the communicated tensor.
    pub elems: u64,
    /// Element type.
    pub dtype: DType,
    /// Scattered-tensor info, if operating on non-contiguous tensors.
    pub scattered: Option<ScatterInfo>,
}

/// A fused collective kernel: AllReduce-volume communication with
/// computation applied in registers between the ReduceScatter and
/// AllGather phases (§5.2).
#[derive(Clone, Debug, PartialEq)]
pub struct FusedCollectiveStep {
    /// Human-readable label.
    pub label: String,
    /// Collective algorithm, stamped by lowering from the plan's
    /// [`CommConfig`].
    pub algo: CollAlgo,
    /// Global element count of the reduced tensor.
    pub elems: u64,
    /// Element type of the communicated data.
    pub dtype: DType,
    /// Extra device-memory bytes read by the fused computation
    /// (optimizer state, residuals — per rank).
    pub extra_bytes_read: u64,
    /// Extra device-memory bytes written by the fused computation
    /// (state updates — per rank).
    pub extra_bytes_written: u64,
    /// Floating-point operations of the fused computation (per rank).
    pub flops: u64,
    /// Scalar AllReduces embedded for sliced tensor reductions
    /// (LAMB's norms, §5.2 "Tensor Reduction").
    pub embedded_scalar_allreduces: usize,
    /// Number of DSL operations fused in (register-pressure proxy:
    /// §6.1.1 observes fused kernels lose thread-level parallelism).
    pub n_fused_ops: usize,
    /// Scattered-tensor info, if operating on non-contiguous tensors.
    pub scattered: Option<ScatterInfo>,
}

/// A P2P transfer to the peer rank in the next group, optionally with
/// fused computation applied to the outgoing data (§4).
#[derive(Clone, Debug, PartialEq)]
pub struct SendRecvStep {
    /// Human-readable label.
    pub label: String,
    /// Elements sent by each rank.
    pub elems_per_rank: u64,
    /// Element type.
    pub dtype: DType,
    /// Extra bytes read by fused computation (per rank).
    pub extra_bytes_read: u64,
    /// Floating-point operations of fused computation (per rank).
    pub flops: u64,
    /// Number of DSL operations fused in.
    pub n_fused_ops: usize,
}

/// A fixed, documented cost (e.g. the baseline optimizers'
/// preprocessing, §6.1.1). Never produced by lowering DSL programs;
/// used by workload models for baseline bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedStep {
    /// What this cost models.
    pub label: String,
    /// The cost in seconds.
    pub seconds: f64,
}

/// One stage of an overlapped pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum OverlapStage {
    /// A chunk-producing GEMM.
    MatMul(MatMulStep),
    /// A plain collective consuming/producing chunks.
    Collective(CollectiveStep),
    /// A fused collective consuming/producing chunks.
    FusedCollective(FusedCollectiveStep),
    /// A chunked P2P transfer.
    SendRecv(SendRecvStep),
}

impl OverlapStage {
    /// The stage's label.
    pub fn label(&self) -> &str {
        match self {
            OverlapStage::MatMul(s) => &s.label,
            OverlapStage::Collective(s) => &s.label,
            OverlapStage::FusedCollective(s) => &s.label,
            OverlapStage::SendRecv(s) => &s.label,
        }
    }
}

/// A fine-grained overlapped pipeline (§5.3): all stages launch once
/// and stream buffer tiles through spin-lock synchronization.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlappedStep {
    /// Human-readable label.
    pub label: String,
    /// The pipeline stages in dependency order.
    pub stages: Vec<OverlapStage>,
}

/// One schedulable unit of an executable plan.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Fused pointwise kernel.
    Kernel(KernelStep),
    /// GEMM.
    MatMul(MatMulStep),
    /// Plain collective.
    Collective(CollectiveStep),
    /// Fused collective.
    FusedCollective(FusedCollectiveStep),
    /// P2P transfer.
    SendRecv(SendRecvStep),
    /// Overlapped pipeline.
    Overlapped(OverlappedStep),
    /// Fixed documented cost.
    Fixed(FixedStep),
}

impl Step {
    /// The step's label.
    pub fn label(&self) -> &str {
        match self {
            Step::Kernel(s) => &s.label,
            Step::MatMul(s) => &s.label,
            Step::Collective(s) => &s.label,
            Step::FusedCollective(s) => &s.label,
            Step::SendRecv(s) => &s.label,
            Step::Overlapped(s) => &s.label,
            Step::Fixed(s) => &s.label,
        }
    }

    /// Number of device kernel launches this step costs (an overlapped
    /// pipeline launches each stage exactly once, §5.3).
    pub fn launches(&self) -> usize {
        match self {
            Step::Overlapped(s) => s.stages.len(),
            Step::Fixed(_) => 0,
            _ => 1,
        }
    }
}

/// An executable plan: ordered steps plus the communication
/// configuration they run under.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecPlan {
    /// Name (usually `program.name() + schedule label`).
    pub name: String,
    /// The steps, in execution order.
    pub steps: Vec<Step>,
    /// Communication configuration.
    pub config: CommConfig,
}

impl ExecPlan {
    /// Total kernel launches across all steps.
    pub fn total_launches(&self) -> usize {
        self.steps.iter().map(Step::launches).sum()
    }

    /// Whether every collective and fused-collective step (including
    /// overlap stages) carries the plan configuration's algorithm —
    /// the invariant [`set_config`](ExecPlan::set_config) maintains
    /// and evaluator lower bounds assume (a mismatched hand-built
    /// plan would be bounded under one algorithm but timed under
    /// another).
    pub fn algo_stamps_consistent(&self) -> bool {
        let algo = self.config.algo;
        self.steps.iter().all(|step| match step {
            Step::Collective(c) => c.algo == algo,
            Step::FusedCollective(f) => f.algo == algo,
            Step::Overlapped(ol) => ol.stages.iter().all(|stage| match stage {
                OverlapStage::Collective(c) => c.algo == algo,
                OverlapStage::FusedCollective(f) => f.algo == algo,
                OverlapStage::MatMul(_) | OverlapStage::SendRecv(_) => true,
            }),
            Step::Kernel(_) | Step::MatMul(_) | Step::SendRecv(_) | Step::Fixed(_) => true,
        })
    }

    /// Re-tags the plan with `config`, restamping the algorithm into
    /// every collective and fused-collective step (including overlap
    /// stages). Lowering is configuration-independent apart from the
    /// stamp, so this is how the autotuner sweeps one lowered plan
    /// across the whole `algo × protocol × channels` grid.
    pub fn set_config(&mut self, config: CommConfig) {
        self.config = config;
        for step in &mut self.steps {
            match step {
                Step::Collective(c) => c.algo = config.algo,
                Step::FusedCollective(f) => f.algo = config.algo,
                Step::Overlapped(ol) => {
                    for stage in &mut ol.stages {
                        match stage {
                            OverlapStage::Collective(c) => c.algo = config.algo,
                            OverlapStage::FusedCollective(f) => f.algo = config.algo,
                            OverlapStage::MatMul(_) | OverlapStage::SendRecv(_) => {}
                        }
                    }
                }
                Step::Kernel(_) | Step::MatMul(_) | Step::SendRecv(_) | Step::Fixed(_) => {}
            }
        }
    }
}

impl fmt::Display for ExecPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {} [{}]", self.name, self.config)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {}", s.label())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_step_math() {
        let s = MatMulStep {
            label: "mm".into(),
            m: 4,
            k: 8,
            n: 2,
            dtype: DType::F16,
        };
        assert_eq!(s.flops(), 2 * 4 * 8 * 2);
        assert_eq!(s.bytes(), (32 + 16 + 8) * 2);
    }

    #[test]
    fn launches() {
        let mm = MatMulStep {
            label: "mm".into(),
            m: 1,
            k: 1,
            n: 1,
            dtype: DType::F16,
        };
        let coll = CollectiveStep {
            label: "ar".into(),
            kind: CollKind::AllReduce,
            op: ReduceOp::Sum,
            algo: CollAlgo::Ring,
            elems: 8,
            dtype: DType::F16,
            scattered: None,
        };
        let overlapped = Step::Overlapped(OverlappedStep {
            label: "ol".into(),
            stages: vec![
                OverlapStage::MatMul(mm.clone()),
                OverlapStage::Collective(coll.clone()),
            ],
        });
        assert_eq!(overlapped.launches(), 2);
        assert_eq!(Step::MatMul(mm).launches(), 1);
        let plan = ExecPlan {
            name: "t".into(),
            steps: vec![
                Step::Collective(coll),
                overlapped,
                Step::Fixed(FixedStep {
                    label: "preproc".into(),
                    seconds: 1e-6,
                }),
            ],
            config: CommConfig::default(),
        };
        assert_eq!(plan.total_launches(), 3);
        let text = plan.to_string();
        assert!(text.contains("plan t [Ring/Simple/16ch/Dense]"));
        assert!(text.contains("ol"));
    }

    #[test]
    fn display_protocols() {
        assert_eq!(Protocol::LL.to_string(), "LL");
        assert_eq!(Protocol::LL128.to_string(), "LL128");
        assert_eq!(Protocol::Simple.to_string(), "Simple");
        assert_eq!(CollKind::ReduceScatter.to_string(), "ReduceScatter");
        assert_eq!(CollAlgo::Ring.to_string(), "Ring");
        assert_eq!(CollAlgo::Tree.to_string(), "Tree");
        assert_eq!(CollAlgo::Hierarchical.to_string(), "Hier");
        assert_eq!(CollAlgo::Switch.to_string(), "Switch");
    }

    #[test]
    fn algo_index_matches_position_in_all() {
        for (i, a) in CollAlgo::ALL.into_iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }

    #[test]
    fn sched_dimension_display_and_index() {
        assert_eq!(CommSched::Barriered.to_string(), "Barriered");
        assert_eq!(CommSched::Priority.to_string(), "Priority");
        for (i, s) in CommSched::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        // The default (barriered) discipline stays invisible in plan
        // displays; the streaming discipline is appended.
        let dense = CommConfig::default();
        assert_eq!(dense.to_string(), "Ring/Simple/16ch/Dense");
        let streamed = dense.with_sched(CommSched::Priority);
        assert_eq!(streamed.to_string(), "Ring/Simple/16ch/Dense/Priority");
    }

    #[test]
    fn xfer_dimension_display_and_index() {
        assert_eq!(XferSched::Fifo.to_string(), "Fifo");
        assert_eq!(XferSched::Aware.to_string(), "Aware");
        for (i, x) in XferSched::ALL.into_iter().enumerate() {
            assert_eq!(x.index(), i);
        }
        // The default (FIFO) discipline stays invisible in plan
        // displays; the contention-aware discipline is appended after
        // the scheduling discipline.
        let dense = CommConfig::default();
        assert_eq!(dense.to_string(), "Ring/Simple/16ch/Dense");
        let aware = dense.with_xfer(XferSched::Aware);
        assert_eq!(aware.to_string(), "Ring/Simple/16ch/Dense/Aware");
        let both = dense
            .with_sched(CommSched::Priority)
            .with_xfer(XferSched::Aware);
        assert_eq!(both.to_string(), "Ring/Simple/16ch/Dense/Priority/Aware");
    }

    #[test]
    fn set_config_restamps_every_collective() {
        let coll = CollectiveStep {
            label: "ar".into(),
            kind: CollKind::AllReduce,
            op: ReduceOp::Sum,
            algo: CollAlgo::Ring,
            elems: 8,
            dtype: DType::F16,
            scattered: None,
        };
        let fused = FusedCollectiveStep {
            label: "f".into(),
            algo: CollAlgo::Ring,
            elems: 8,
            dtype: DType::F16,
            extra_bytes_read: 0,
            extra_bytes_written: 0,
            flops: 0,
            embedded_scalar_allreduces: 0,
            n_fused_ops: 1,
            scattered: None,
        };
        let mut plan = ExecPlan {
            name: "t".into(),
            steps: vec![
                Step::Collective(coll.clone()),
                Step::Overlapped(OverlappedStep {
                    label: "ol".into(),
                    stages: vec![
                        OverlapStage::Collective(coll),
                        OverlapStage::FusedCollective(fused),
                    ],
                }),
            ],
            config: CommConfig::default(),
        };
        plan.set_config(CommConfig::default().with_algo(CollAlgo::Tree));
        assert_eq!(plan.config.algo, CollAlgo::Tree);
        match &plan.steps[0] {
            Step::Collective(c) => assert_eq!(c.algo, CollAlgo::Tree),
            other => panic!("unexpected step {other:?}"),
        }
        match &plan.steps[1] {
            Step::Overlapped(ol) => {
                for stage in &ol.stages {
                    match stage {
                        OverlapStage::Collective(c) => assert_eq!(c.algo, CollAlgo::Tree),
                        OverlapStage::FusedCollective(f) => assert_eq!(f.algo, CollAlgo::Tree),
                        other => panic!("unexpected stage {other:?}"),
                    }
                }
            }
            other => panic!("unexpected step {other:?}"),
        }
    }
}
