//! The autotuner (§3.5).
//!
//! "CoCoNet provides an autotuner to automatically explore the space
//! of all schedules of a program and return the schedule that provides
//! the best performance for the underlying architecture and input
//! sizes. First, the autotuner fuses all pointwise computations up to a
//! pre-defined threshold to decrease the search space and then
//! exhaustively explores the schedule space in a breadth first search
//! manner."
//!
//! The tuner is generic over a [`PlanEvaluator`] — `coconet-sim`
//! provides the machine model; tests can plug in synthetic evaluators.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::xform;
use crate::{lower, Binding, CommConfig, CoreError, ExecPlan, OpKind, Program, Protocol, VarId};

/// Evaluates the cost of an executable plan (lower is better).
/// Implemented by `coconet_sim::Simulator` over the machine model.
pub trait PlanEvaluator {
    /// Estimated execution time of the plan, in seconds.
    fn evaluate(&self, plan: &ExecPlan) -> f64;
}

impl<F: Fn(&ExecPlan) -> f64> PlanEvaluator for F {
    fn evaluate(&self, plan: &ExecPlan) -> f64 {
        self(plan)
    }
}

/// One explored schedule and its best configuration.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The transformation sequence applied, in order.
    pub schedule: Vec<String>,
    /// The scheduled program.
    pub program: Program,
    /// Best communication configuration found.
    pub config: CommConfig,
    /// Time under the best configuration, in seconds.
    pub time: f64,
}

impl Candidate {
    /// A short label for the schedule ("baseline" for the empty one).
    pub fn label(&self) -> String {
        if self.schedule.is_empty() {
            "baseline".to_string()
        } else {
            self.schedule.join("; ")
        }
    }
}

/// The autotuner's result: every explored schedule (sorted best-first)
/// plus bookkeeping for Table 3.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Explored schedules, best first.
    pub candidates: Vec<Candidate>,
    /// Number of distinct schedules explored.
    pub schedules_explored: usize,
    /// Number of (schedule, protocol, channels) evaluations.
    pub configs_evaluated: usize,
    /// Wall-clock time of the exploration.
    pub elapsed: Duration,
}

impl TuneReport {
    /// The winning candidate.
    ///
    /// # Panics
    ///
    /// Panics if no schedule could be lowered (cannot happen for valid
    /// programs: the baseline always lowers).
    pub fn best(&self) -> &Candidate {
        self.candidates
            .first()
            .expect("at least the baseline schedule")
    }
}

/// Breadth-first explorer over the transformation space.
#[derive(Clone, Debug)]
pub struct Autotuner {
    /// Maximum number of transformations in a schedule.
    pub max_depth: usize,
    /// Protocols to sweep.
    pub protocols: Vec<Protocol>,
    /// Channel counts to sweep (the paper sweeps 2..64).
    pub channels: Vec<usize>,
    /// Also branch into slicing optimizer state (`asSlice` + `dead`,
    /// §4) after reorders that leave dangling state gathers.
    pub slice_state: bool,
}

impl Default for Autotuner {
    fn default() -> Autotuner {
        Autotuner {
            max_depth: 6,
            protocols: Protocol::ALL.to_vec(),
            channels: vec![2, 4, 8, 16, 32, 64],
            slice_state: true,
        }
    }
}

/// A transformation move the explorer can apply.
#[derive(Clone, Debug)]
enum Move {
    Split(VarId),
    Reorder(VarId, Vec<VarId>),
    FuseAllReduce(VarId, Vec<VarId>, Vec<VarId>),
    FuseSend(Vec<VarId>, VarId),
    SliceState(VarId, VarId),
    Overlap(Vec<VarId>),
}

impl Move {
    fn describe(&self, p: &Program) -> String {
        let name = |v: VarId| {
            p.node(v)
                .map(|n| n.name().to_string())
                .unwrap_or_else(|_| v.to_string())
        };
        match self {
            Move::Split(v) => format!("split({}, ARSplitRSAG)", name(*v)),
            Move::Reorder(ag, _) => format!("reorder({}, comps)", name(*ag)),
            Move::FuseAllReduce(rs, _, _) => format!("fuse({}, AllReduceFuse)", name(*rs)),
            Move::FuseSend(_, s) => format!("fuse({}, SendFuse)", name(*s)),
            Move::SliceState(t, _) => format!("asSlice({})", name(*t)),
            Move::Overlap(stages) => {
                let names: Vec<String> = stages.iter().map(|&s| name(s)).collect();
                format!("overlap({})", names.join(", "))
            }
        }
    }

    fn apply(&self, p: &mut Program) -> Result<(), CoreError> {
        match self {
            Move::Split(v) => xform::split_all_reduce(p, *v).map(|_| ()),
            Move::Reorder(ag, comps) => xform::reorder_all_gather(p, *ag, comps).map(|_| ()),
            Move::FuseAllReduce(rs, comps, ags) => {
                xform::fuse_all_reduce(p, *rs, comps, ags).map(|_| ())
            }
            Move::FuseSend(comps, send) => xform::fuse_send(p, comps, *send).map(|_| ()),
            Move::SliceState(t, ag) => {
                xform::as_slice(p, *t)?;
                xform::dead(p, *ag)
            }
            Move::Overlap(stages) => xform::overlap(p, stages),
        }
    }
}

impl Autotuner {
    /// Explores the schedule space of `program` and evaluates every
    /// schedule under every protocol/channel configuration.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the input program.
    pub fn tune(
        &self,
        program: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
    ) -> Result<TuneReport, CoreError> {
        program.validate()?;
        let start = Instant::now();

        // Pre-pass: fuse all pointwise computation chains (§3.5).
        let mut base = program.clone();
        fuse_pointwise_chains(&mut base);

        // BFS over transformation sequences.
        let mut frontier: Vec<(Program, Vec<String>)> = vec![(base.clone(), Vec::new())];
        let mut seen: HashSet<String> = HashSet::new();
        seen.insert(canonical(&base));
        let mut explored: Vec<(Program, Vec<String>)> = Vec::new();

        let mut depth = 0;
        while !frontier.is_empty() && depth <= self.max_depth {
            let mut next = Vec::new();
            for (p, desc) in frontier.drain(..) {
                for mv in find_moves(&p, self.slice_state) {
                    let mut q = p.clone();
                    let label = mv.describe(&q);
                    if mv.apply(&mut q).is_err() {
                        continue;
                    }
                    let key = canonical(&q);
                    if seen.insert(key) {
                        let mut d = desc.clone();
                        d.push(label);
                        next.push((q, d));
                    }
                }
                explored.push((p, desc));
            }
            frontier = next;
            depth += 1;
        }
        explored.extend(frontier);

        // Evaluate every schedule under every configuration.
        let mut candidates = Vec::new();
        let mut configs_evaluated = 0usize;
        for (p, schedule) in &explored {
            let mut best: Option<(CommConfig, f64)> = None;
            for &protocol in &self.protocols {
                for &channels in &self.channels {
                    let config = CommConfig { protocol, channels };
                    let Ok(plan) = lower(p, binding, config) else {
                        continue;
                    };
                    let t = evaluator.evaluate(&plan);
                    configs_evaluated += 1;
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((config, t));
                    }
                }
            }
            if let Some((config, time)) = best {
                candidates.push(Candidate {
                    schedule: schedule.clone(),
                    program: p.clone(),
                    config,
                    time,
                });
            }
        }
        candidates.sort_by(|a, b| a.time.total_cmp(&b.time));

        Ok(TuneReport {
            schedules_explored: explored.len(),
            configs_evaluated,
            elapsed: start.elapsed(),
            candidates,
        })
    }
}

fn canonical(p: &Program) -> String {
    format!(
        "{}|{:?}|{:?}",
        p.to_dsl_string(),
        p.fusion_groups(),
        p.overlap_groups()
    )
}

/// Fuses every maximal chain of connected pointwise computations into a
/// compute fusion group (the autotuner's pre-pass, §3.5).
pub fn fuse_pointwise_chains(p: &mut Program) {
    let mut visited: HashSet<VarId> = HashSet::new();
    let order = p.topo_order();
    for &v in &order {
        if visited.contains(&v) || p.fusion_group_of(v).is_some() {
            continue;
        }
        let Ok(op) = p.op(v) else { continue };
        if !op.is_pointwise() || matches!(op, OpKind::ConstScalar(_) | OpKind::Slice(_)) {
            continue;
        }
        // Grow a connected pointwise region from v.
        let mut region: Vec<VarId> = vec![v];
        let mut stack = vec![v];
        let mut in_region: HashSet<VarId> = [v].into_iter().collect();
        while let Some(m) = stack.pop() {
            let mut neighbors: Vec<VarId> = p.op(m).map(|o| o.inputs()).unwrap_or_default();
            neighbors.extend(p.consumers(m));
            for n in neighbors {
                if in_region.contains(&n) || p.fusion_group_of(n).is_some() {
                    continue;
                }
                let Ok(nop) = p.op(n) else { continue };
                if nop.is_pointwise() && !matches!(nop, OpKind::ConstScalar(_) | OpKind::Slice(_)) {
                    in_region.insert(n);
                    region.push(n);
                    stack.push(n);
                }
            }
        }
        visited.extend(region.iter().copied());
        if region.len() >= 2 && xform::fuse_compute(p, &region).is_ok() {
            // recorded as a group
        }
    }
}

/// Enumerates the transformation moves applicable to a program.
fn find_moves(p: &Program, slice_state: bool) -> Vec<Move> {
    let mut moves = Vec::new();
    let topo = p.topo_order();

    for &v in &topo {
        let Ok(op) = p.op(v) else { continue };
        match op {
            // split: any AllReduce not yet fused.
            OpKind::AllReduce(..) if p.fusion_group_of(v).is_none() => {
                moves.push(Move::Split(v));
            }
            // reorder: an AllGather whose maximal pointwise/Send
            // consumer region swallows all its consumers.
            OpKind::AllGather(_) => {
                if let Some(region) = reorder_region(p, v) {
                    moves.push(Move::Reorder(v, region));
                }
            }
            // fuse(AllReduceFuse): RS -> sliced comps -> AG(s) pattern.
            OpKind::ReduceScatter(..) if p.fusion_group_of(v).is_none() => {
                if let Some((comps, ags)) = fused_ar_region(p, v) {
                    moves.push(Move::FuseAllReduce(v, comps, ags));
                }
            }
            // fuse(SendFuse): the pointwise region feeding a Send.
            OpKind::Send(input, _) if p.fusion_group_of(v).is_none() => {
                let comps = pointwise_region_feeding(p, *input, v);
                if !comps.is_empty() {
                    moves.push(Move::FuseSend(comps, v));
                }
            }
            _ => {}
        }
    }

    // asSlice + dead: a dangling AllGather over an Update of a
    // replicated input (the optimizer-state pattern of §4).
    if slice_state {
        for &v in &topo {
            if let Ok(OpKind::AllGather(x)) = p.op(v) {
                if !p.consumers(v).is_empty() || p.outputs().contains(&v) {
                    continue;
                }
                if let Ok(OpKind::Update(target, _)) = p.op(*x) {
                    if p.ty(*target).map(|t| t.layout == crate::Layout::Replicated) == Ok(true) {
                        moves.push(Move::SliceState(*target, v));
                    }
                }
            }
        }
    }

    // overlap: producer-consumer chains of stage-able units.
    moves.extend(overlap_moves(p));
    moves
}

/// The maximal connected region of pointwise/Send operations around an
/// AllGather's consumers, or `None` if some consumer cannot be
/// reordered.
///
/// The region grows in *both* directions: downstream through consumers
/// (they must all be sliceable, else the reorder is invalid) and
/// upstream through pointwise producers (the paper reorders the whole
/// pre-fused computation, so `m * beta1` joins even though it does not
/// read the gather — that is what lets `asSlice(m)` apply later, §4).
fn reorder_region(p: &Program, ag: VarId) -> Option<Vec<VarId>> {
    let mut region: Vec<VarId> = Vec::new();
    let mut in_region: HashSet<VarId> = HashSet::new();
    let direct: Vec<VarId> = p.consumers(ag);
    if direct.is_empty() {
        return None;
    }
    // Downstream consumers are mandatory; a non-sliceable one kills the
    // transformation.
    let mut stack = direct;
    while let Some(v) = stack.pop() {
        if in_region.contains(&v) {
            continue;
        }
        let op = p.op(v).ok()?;
        let ok = op.is_pointwise() || matches!(op, OpKind::Send(..));
        if !ok || matches!(op, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
            return None; // a consumer cannot be sliced: reorder invalid
        }
        in_region.insert(v);
        region.push(v);
        // Sends terminate the region on this branch (their output lives
        // on the next group); other members' consumers must join.
        if !matches!(op, OpKind::Send(..)) {
            stack.extend(p.consumers(v));
        }
    }
    // Upstream pointwise producers are optional: absorb any whose
    // consumers all lie in the region (keeps the region convex).
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if dep == ag || in_region.contains(&dep) {
                    continue;
                }
                let Ok(dop) = p.op(dep) else { continue };
                if !dop.is_pointwise() || matches!(dop, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Keep topological order.
    let order = p.topo_order();
    region.sort_by_key(|v| order.iter().position(|x| x == v));
    Some(region)
}

/// Finds the `RS -> sliced comps -> AllGather(s)` region rooted at a
/// ReduceScatter for `fuse(AllReduceFuse)`. Downstream consumers of the
/// ReduceScatter are collected first; upstream pointwise producers
/// whose consumers all lie inside (e.g. the `m * beta1` term the
/// reorder sliced) are then absorbed, so the fusion covers the whole
/// pre-fused computation group.
fn fused_ar_region(p: &Program, rs: VarId) -> Option<(Vec<VarId>, Vec<VarId>)> {
    let mut comps = Vec::new();
    let mut ags = Vec::new();
    let mut stack: Vec<VarId> = p.consumers(rs);
    let mut seen: HashSet<VarId> = HashSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        let op = p.op(v).ok()?;
        match op {
            OpKind::AllGather(_) => ags.push(v),
            OpKind::Send(..) => return None, // handled by SendFuse/overlap
            o if o.is_pointwise() => {
                if !matches!(o, OpKind::Slice(_)) {
                    comps.push(v);
                }
                stack.extend(p.consumers(v));
            }
            _ => return None,
        }
    }
    if ags.is_empty() || p.fusion_group_of(rs).is_some() {
        return None;
    }
    absorb_upstream_pointwise(p, &mut comps);
    let order = p.topo_order();
    comps.sort_by_key(|v| order.iter().position(|x| x == v));
    ags.sort_by_key(|v| order.iter().position(|x| x == v));
    Some((comps, ags))
}

/// Grows `region` upstream through pointwise producers whose consumers
/// all lie inside the region (keeps it convex).
fn absorb_upstream_pointwise(p: &Program, region: &mut Vec<VarId>) {
    let mut in_region: HashSet<VarId> = region.iter().copied().collect();
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if in_region.contains(&dep) {
                    continue;
                }
                let Ok(dop) = p.op(dep) else { continue };
                if !dop.is_pointwise() || matches!(dop, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
}

/// The maximal connected pointwise region whose value flows into
/// `sink_input` (feeding the Send at `sink`): the chain from the input
/// upward, closed over producers with all consumers inside.
fn pointwise_region_feeding(p: &Program, sink_input: VarId, sink: VarId) -> Vec<VarId> {
    let ok = |v: VarId| {
        p.op(v).is_ok_and(|op| {
            op.is_pointwise() && !matches!(op, OpKind::ConstScalar(_) | OpKind::Slice(_))
        })
    };
    if !ok(sink_input) {
        return Vec::new();
    }
    // The direct input must flow only into the Send.
    if p.consumers(sink_input).iter().any(|&c| c != sink) {
        return Vec::new();
    }
    let mut region = vec![sink_input];
    // Treat the sink as in-region for the closure test.
    let mut in_region: HashSet<VarId> = [sink_input, sink].into_iter().collect();
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if in_region.contains(&dep) || !ok(dep) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let order = p.topo_order();
    region.sort_by_key(|v| order.iter().position(|x| x == v));
    region
}

/// Enumerates overlappable producer-consumer chains.
fn overlap_moves(p: &Program) -> Vec<Move> {
    let mut moves = Vec::new();
    if !p.overlap_groups().is_empty() {
        return moves; // one overlap per program in the paper's schedules
    }
    for &v in &p.topo_order() {
        let Ok(op) = p.op(v) else { continue };
        match op {
            // MatMul -> collective (possibly fused).
            OpKind::MatMul(..) => {
                let consumers = p.consumers(v);
                if consumers.len() != 1 {
                    continue;
                }
                let c = consumers[0];
                let Ok(cop) = p.op(c) else { continue };
                let is_comm_stage =
                    matches!(cop, OpKind::AllReduce(..) | OpKind::ReduceScatter(..));
                if is_comm_stage {
                    moves.push(Move::Overlap(vec![v, c]));
                }
            }
            // RS -> (fused)Send -> AG: the pipeline-parallel chain.
            OpKind::ReduceScatter(..) => {
                // Walk forward: RS -> [send group] -> AG on next group.
                let mut send = None;
                for c in transitive_consumers(p, v) {
                    if matches!(p.op(c), Ok(OpKind::Send(..))) {
                        send = Some(c);
                        break;
                    }
                }
                let Some(send) = send else { continue };
                let ag = p
                    .consumers(send)
                    .into_iter()
                    .find(|&c| matches!(p.op(c), Ok(OpKind::AllGather(_))));
                let Some(ag) = ag else { continue };
                moves.push(Move::Overlap(vec![v, send, ag]));
            }
            _ => {}
        }
    }
    moves
}

fn transitive_consumers(p: &Program, v: VarId) -> Vec<VarId> {
    let mut out = Vec::new();
    let mut stack = p.consumers(v);
    let mut seen = HashSet::new();
    while let Some(c) = stack.pop() {
        if seen.insert(c) {
            out.push(c);
            stack.extend(p.consumers(c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, ExecPlan, Layout, ReduceOp, Step};

    /// A toy evaluator: counts launches plus bandwidth-proportional
    /// costs, rewarding fusion and overlap like the real machine does.
    fn toy_evaluator(plan: &ExecPlan) -> f64 {
        let mut t = 0.0;
        for s in &plan.steps {
            t += 5e-6 * s.launches() as f64;
            t += match s {
                Step::Kernel(k) => (k.bytes_read + k.bytes_written) as f64 / 700e9,
                Step::MatMul(mm) => mm.flops() as f64 / 80e12,
                Step::Collective(c) => c.elems as f64 * 2.0 / 100e9 * 1.9,
                Step::FusedCollective(f) => f.elems as f64 * 2.0 / 100e9 * 1.9,
                Step::SendRecv(sr) => sr.elems_per_rank as f64 * 2.0 / 6e9,
                Step::Overlapped(ol) => {
                    // Roughly the max stage.
                    ol.stages
                        .iter()
                        .map(|st| match st {
                            crate::OverlapStage::MatMul(mm) => mm.flops() as f64 / 80e12,
                            crate::OverlapStage::Collective(c) => {
                                c.elems as f64 * 2.0 / 100e9 * 1.9
                            }
                            crate::OverlapStage::FusedCollective(f) => {
                                f.elems as f64 * 2.0 / 100e9 * 1.9
                            }
                            crate::OverlapStage::SendRecv(sr) => {
                                sr.elems_per_rank as f64 * 2.0 / 6e9
                            }
                        })
                        .fold(0.0f64, f64::max)
                }
                Step::Fixed(f) => f.seconds,
            };
        }
        t
    }

    fn self_attention() -> Program {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        p
    }

    #[test]
    fn tuner_finds_overlap_schedule_for_large_sizes() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let tuner = Autotuner::default();
        let report = tuner.tune(&p, &binding, &toy_evaluator).unwrap();
        assert!(
            report.schedules_explored >= 4,
            "explored {}",
            report.schedules_explored
        );
        assert!(report.configs_evaluated > report.schedules_explored);
        let best = report.best();
        // The best schedule must contain an overlap (the paper's
        // winning ol(MM, fuse(RS-C-AG)) schedule).
        assert!(
            best.schedule.iter().any(|s| s.starts_with("overlap")),
            "best schedule = {:?}",
            best.schedule
        );
        // The best program has one overlap group covering the MatMul.
        assert_eq!(best.program.overlap_groups().len(), 1);
        // And the baseline is strictly worse.
        let baseline = report
            .candidates
            .iter()
            .find(|c| c.schedule.is_empty())
            .expect("baseline present");
        assert!(best.time < baseline.time);
    }

    #[test]
    fn pre_pass_fuses_pointwise_chains() {
        let mut p = self_attention();
        fuse_pointwise_chains(&mut p);
        assert_eq!(p.fusion_groups().len(), 1);
        assert_eq!(p.fusion_groups()[0].members.len(), 3); // add, dropout, add
    }

    #[test]
    fn tuner_explores_split_and_fuse_for_optimizer() {
        // Mini-Adam: AR + state update; the tuner should discover the
        // split -> reorder -> asSlice -> fuse chain.
        let mut p = Program::new("mini_adam");
        let g = p.input("g", DType::F32, ["N"], Layout::Local);
        let m = p.input("m", DType::F32, ["N"], Layout::Replicated);
        let param = p.input("p", DType::F32, ["N"], Layout::Replicated);
        let avg = p.all_reduce(ReduceOp::Sum, g).unwrap();
        p.set_name(avg, "avg").unwrap();
        let beta = p.constant(0.9);
        let m_new = p.mul(m, beta).unwrap();
        let m_new = p.add(m_new, avg).unwrap();
        let m_ = p.update(m, m_new).unwrap();
        let step = p.mul(m_, beta).unwrap();
        let p_new = p.sub(param, step).unwrap();
        let p_ = p.update(param, p_new).unwrap();
        p.set_io(&[g, m, param], &[p_]).unwrap();

        let binding = Binding::new(256).bind("N", 1 << 26);
        let report = Autotuner::default()
            .tune(&p, &binding, &toy_evaluator)
            .unwrap();
        let labels: Vec<String> = report.candidates.iter().map(Candidate::label).collect();
        assert!(
            labels.iter().any(|l| l.contains("split")),
            "no split schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("reorder")),
            "no reorder schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("AllReduceFuse")),
            "no fused schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("asSlice")),
            "no asSlice schedule in {labels:?}"
        );
    }

    #[test]
    fn report_orders_candidates_best_first() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let report = Autotuner::default()
            .tune(&p, &binding, &toy_evaluator)
            .unwrap();
        for w in report.candidates.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
