//! The autotuner (§3.5).
//!
//! "CoCoNet provides an autotuner to automatically explore the space
//! of all schedules of a program and return the schedule that provides
//! the best performance for the underlying architecture and input
//! sizes. First, the autotuner fuses all pointwise computations up to a
//! pre-defined threshold to decrease the search space and then
//! exhaustively explores the schedule space in a breadth first search
//! manner."
//!
//! The tuner is generic over a [`PlanEvaluator`] — `coconet-sim`
//! provides the machine model; tests can plug in synthetic evaluators.
//!
//! The search is parallel (candidate schedules of each BFS level are
//! costed on a scoped-thread worker pool), memoized (structurally
//! identical plans are costed once), and pruned (a branch whose
//! optimistic [`PlanEvaluator::lower_bound`] already exceeds the
//! incumbent best is dropped). [`Autotuner::exhaustive`] switches the
//! pruning off; the tier-1 tests prove both modes agree on the winner.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::plancache::{CacheStats, PlanCache, PlanKey};
use crate::xform;
use crate::{
    lower, Binding, CollAlgo, CommConfig, CommSched, CoreError, ExecPlan, OpKind, Program,
    Protocol, VarId, WireFormat, XferSched,
};

/// Evaluates the cost of an executable plan (lower is better).
/// Implemented by `coconet_sim::Simulator` over the machine model.
///
/// The trait is object-safe and `Sync` so a single evaluator can be
/// shared by the tuner's worker threads. Estimated times must be
/// non-negative and free of NaNs (the incumbent tracking compares raw
/// IEEE-754 bits).
pub trait PlanEvaluator: Sync {
    /// Estimated execution time of the plan, in seconds.
    fn evaluate(&self, plan: &ExecPlan) -> f64;

    /// A cheap optimistic lower bound on [`evaluate`](Self::evaluate)
    /// for *this plan* (over-estimating can change the winner; the
    /// bound need not cover derived schedules). Configurations whose
    /// bound already exceeds the incumbent best are skipped without
    /// full evaluation. The default of `0.0` disables the skip.
    fn lower_bound(&self, _plan: &ExecPlan) -> f64 {
        0.0
    }

    /// A lower bound that additionally covers *every schedule
    /// derivable from the plan's program by further transformations*
    /// under the same configuration — necessarily looser than
    /// [`lower_bound`](Self::lower_bound). A branch whose minimum
    /// descendant bound across configurations exceeds the incumbent
    /// best is not expanded. The default of `0.0` disables branch
    /// pruning.
    fn descendant_lower_bound(&self, _plan: &ExecPlan) -> f64 {
        0.0
    }

    /// Both bounds for one plan under many configurations in a single
    /// call, returned as `(tight, descendant)` vectors parallel to
    /// `configs`; entry `i` must equal the per-config methods with
    /// `plan.config = configs[i]`. Model-backed evaluators override
    /// this to amortize the walk over the plan's steps — the bounds
    /// are typically `fixed + wire / bandwidth(config)`, so one walk
    /// answers the whole sweep.
    fn lower_bound_sweep(&self, plan: &ExecPlan, configs: &[CommConfig]) -> (Vec<f64>, Vec<f64>) {
        let mut p = plan.clone();
        configs
            .iter()
            .map(|&config| {
                p.set_config(config);
                (self.lower_bound(&p), self.descendant_lower_bound(&p))
            })
            .unzip()
    }

    /// A stable fingerprint of everything in the evaluator's cost
    /// model that can change a plan's estimated time — the machine
    /// specification and the cluster geometry for a simulator-backed
    /// evaluator. Two evaluators with equal fingerprints must cost
    /// every plan identically: the fingerprint is the "cluster shape"
    /// component of the [`PlanCache`] key, so a collision across
    /// genuinely different machines would serve a stale winner. The
    /// default of `0` is safe only for evaluators never mixed in one
    /// cache (the cache is keyed per evaluator fingerprint, so two
    /// zero-fingerprint evaluators alias each other).
    fn fingerprint(&self) -> u64 {
        0
    }
}

impl<F: Fn(&ExecPlan) -> f64 + Sync> PlanEvaluator for F {
    fn evaluate(&self, plan: &ExecPlan) -> f64 {
        self(plan)
    }
}

/// One explored schedule and its best configuration.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The transformation sequence applied, in order.
    pub schedule: Vec<String>,
    /// The scheduled program.
    pub program: Program,
    /// Best communication configuration found.
    pub config: CommConfig,
    /// Time under the best configuration, in seconds.
    pub time: f64,
}

impl Candidate {
    /// A short label for the schedule ("baseline" for the empty one).
    pub fn label(&self) -> String {
        if self.schedule.is_empty() {
            "baseline".to_string()
        } else {
            self.schedule.join("; ")
        }
    }
}

/// The autotuner's result: every explored schedule (sorted best-first)
/// plus bookkeeping for Table 3.
///
/// The winning candidate is identical across worker counts and between
/// pruned and exhaustive runs (ties break on breadth-first discovery
/// order, and pruning only discards configurations that are provably
/// worse than the incumbent). Times recorded for *losing* candidates
/// may be coarser under pruning, since their cheapest configurations
/// can be skipped.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Explored schedules, best first.
    pub candidates: Vec<Candidate>,
    /// Number of distinct schedules explored.
    pub schedules_explored: usize,
    /// Number of (schedule, protocol, channels) cost lookups (memoized
    /// lookups included, pruned ones not).
    pub configs_evaluated: usize,
    /// Configurations skipped because their lower bound exceeded the
    /// incumbent best (zero when pruning is off).
    pub configs_pruned: usize,
    /// Schedules whose expansion was cut because even their optimistic
    /// lower bound exceeded the incumbent best.
    pub branches_pruned: usize,
    /// Cost lookups answered from the structural-hash memo table
    /// instead of the evaluator.
    pub memo_hits: usize,
    /// Plan-cache statistics for the consulted [`PlanCache`] — all
    /// zeros (the [`CacheStats`] default) when the report came from an
    /// uncached [`Autotuner::tune`] call.
    pub cache: CacheStats,
    /// Wall-clock time of the exploration.
    pub elapsed: Duration,
}

impl TuneReport {
    /// The winning candidate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoViableSchedule`] if no explored schedule
    /// lowered under any configuration (cannot happen for valid
    /// programs with a lowerable baseline).
    pub fn best(&self) -> Result<&Candidate, CoreError> {
        self.candidates.first().ok_or(CoreError::NoViableSchedule)
    }
}

/// Breadth-first explorer over the transformation space.
#[derive(Clone, Debug)]
pub struct Autotuner {
    /// Maximum number of transformations in a schedule.
    pub max_depth: usize,
    /// Collective algorithms to sweep (ring / tree / hierarchical /
    /// in-network switch — the logical topologies of §5.1 plus the
    /// SwitchML-style aggregation switch).
    pub algos: Vec<CollAlgo>,
    /// Protocols to sweep.
    pub protocols: Vec<Protocol>,
    /// Channel counts to sweep (the paper sweeps 2..64).
    pub channels: Vec<usize>,
    /// Wire formats to sweep (dense / FP16 / top-k — the
    /// `coconet-compress` dimension; SparCML's observation that the
    /// payload representation is a tunable too).
    pub formats: Vec<WireFormat>,
    /// Iteration-scheduling disciplines to sweep (barriered /
    /// priority-streamed — BytePS's observation that crossing the
    /// global barrier is a performance dimension worth costing).
    pub scheds: Vec<CommSched>,
    /// Cross-job transfer disciplines to sweep (FIFO fair-sharing /
    /// contention-aware — MLfabric's observation that reordering
    /// in-flight transfers across concurrent jobs is a performance
    /// dimension worth costing; cost-neutral for a solo program, so
    /// ties keep the simpler FIFO discipline).
    pub xfers: Vec<XferSched>,
    /// Also branch into slicing optimizer state (`asSlice` + `dead`,
    /// §4) after reorders that leave dangling state gathers.
    pub slice_state: bool,
    /// Worker threads costing candidates (`0` = one per available
    /// core). `1` keeps the whole search on the calling thread.
    pub workers: usize,
    /// Beam pruning: drop configurations and branches whose
    /// [`PlanEvaluator::lower_bound`] exceeds the incumbent best.
    pub prune: bool,
}

impl Default for Autotuner {
    fn default() -> Autotuner {
        Autotuner {
            max_depth: 6,
            algos: CollAlgo::ALL.to_vec(),
            protocols: Protocol::ALL.to_vec(),
            channels: vec![2, 4, 8, 16, 32, 64],
            formats: WireFormat::SWEEP.to_vec(),
            scheds: CommSched::ALL.to_vec(),
            xfers: XferSched::ALL.to_vec(),
            slice_state: true,
            workers: 0,
            prune: true,
        }
    }
}

/// A transformation move the explorer can apply.
#[derive(Clone, Debug)]
enum Move {
    Split(VarId),
    Reorder(VarId, Vec<VarId>),
    FuseAllReduce(VarId, Vec<VarId>, Vec<VarId>),
    FuseSend(Vec<VarId>, VarId),
    SliceState(VarId, VarId),
    Overlap(Vec<VarId>),
}

impl Move {
    fn describe(&self, p: &Program) -> String {
        let name = |v: VarId| {
            p.node(v)
                .map(|n| n.name().to_string())
                .unwrap_or_else(|_| v.to_string())
        };
        match self {
            Move::Split(v) => format!("split({}, ARSplitRSAG)", name(*v)),
            Move::Reorder(ag, _) => format!("reorder({}, comps)", name(*ag)),
            Move::FuseAllReduce(rs, _, _) => format!("fuse({}, AllReduceFuse)", name(*rs)),
            Move::FuseSend(_, s) => format!("fuse({}, SendFuse)", name(*s)),
            Move::SliceState(t, _) => format!("asSlice({})", name(*t)),
            Move::Overlap(stages) => {
                let names: Vec<String> = stages.iter().map(|&s| name(s)).collect();
                format!("overlap({})", names.join(", "))
            }
        }
    }

    fn apply(&self, p: &mut Program) -> Result<(), CoreError> {
        match self {
            Move::Split(v) => xform::split_all_reduce(p, *v).map(|_| ()),
            Move::Reorder(ag, comps) => xform::reorder_all_gather(p, *ag, comps).map(|_| ()),
            Move::FuseAllReduce(rs, comps, ags) => {
                xform::fuse_all_reduce(p, *rs, comps, ags).map(|_| ())
            }
            Move::FuseSend(comps, send) => xform::fuse_send(p, comps, *send).map(|_| ()),
            Move::SliceState(t, ag) => {
                xform::as_slice(p, *t)?;
                xform::dead(p, *ag)
            }
            Move::Overlap(stages) => xform::overlap(p, stages),
        }
    }
}

/// Outcome of sweeping one schedule over every configuration.
struct SweepOutcome {
    /// Best `(config, time)` among the configurations costed.
    best: Option<(CommConfig, f64)>,
    /// Minimum [`PlanEvaluator::descendant_lower_bound`] across all
    /// configurations — an optimistic floor for this schedule and its
    /// descendants (`0.0` when nothing lowered, so un-lowerable
    /// schedules keep expanding exactly as the exhaustive search
    /// does).
    floor: f64,
}

/// Shared, thread-safe bookkeeping for one `tune` run.
struct SearchState {
    /// Best time seen so far, stored as IEEE-754 bits (valid because
    /// times are non-negative, so the bit order is the numeric order).
    incumbent: AtomicU64,
    /// (plan-hash → time) memo across schedules and configurations.
    memo: Mutex<HashMap<u64, f64>>,
    configs_evaluated: AtomicUsize,
    configs_pruned: AtomicUsize,
    memo_hits: AtomicUsize,
}

impl SearchState {
    fn new() -> SearchState {
        SearchState {
            incumbent: AtomicU64::new(f64::INFINITY.to_bits()),
            memo: Mutex::new(HashMap::new()),
            configs_evaluated: AtomicUsize::new(0),
            configs_pruned: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
        }
    }

    fn incumbent(&self) -> f64 {
        f64::from_bits(self.incumbent.load(Ordering::Relaxed))
    }
}

impl Autotuner {
    /// Explores the schedule space of `program` and costs every
    /// schedule under every protocol/channel configuration, in
    /// parallel, memoizing structurally identical plans and (unless
    /// [`exhaustive`](Autotuner::exhaustive)) beam-pruning
    /// configurations and branches that provably cannot beat the
    /// incumbent best.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the input program.
    pub fn tune(
        &self,
        program: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
    ) -> Result<TuneReport, CoreError> {
        program.validate()?;
        let start = Instant::now();

        // Pre-pass: fuse all pointwise computation chains (§3.5).
        let mut base = program.clone();
        fuse_pointwise_chains(&mut base);

        let state = SearchState::new();
        let workers = self.worker_count();

        let (candidates, schedules_explored, branches_pruned) = if workers <= 1 {
            // Fully serial: sweep each schedule on the calling thread.
            self.search(base, &state, |jobs| {
                jobs.into_iter()
                    .map(|(p, d)| {
                        let outcome = self.sweep_configs(&p, binding, evaluator, &state);
                        (p, d, outcome)
                    })
                    .collect()
            })
        } else {
            // Persistent worker pool: spawned once for the whole
            // search (not per BFS level), fed contiguous chunks of
            // each level through an MPMC job queue (one message per
            // worker per level, not one per schedule), idle-blocking
            // between levels.
            type Chunk = Vec<(Program, Vec<String>)>;
            type DoneChunk = Vec<(Program, Vec<String>, SweepOutcome)>;
            // A chunk result is Err if the evaluator panicked while
            // sweeping it; the driver re-raises on its own thread. The
            // catch keeps the protocol alive — without it the dead
            // worker's chunk never arrives and the driver would block
            // on the result channel forever.
            type ChunkResult = Result<DoneChunk, String>;
            crossbeam::thread::scope(|s| {
                // The channels are owned by this closure so that a
                // panicking driver drops `job_tx` during unwind, the
                // idle workers see the closed queue and exit, and the
                // scope's join completes instead of deadlocking.
                let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, Chunk)>();
                let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, ChunkResult)>();
                let state_ref = &state;
                for _ in 0..workers {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    s.spawn(move |_| {
                        while let Ok((start, chunk)) = job_rx.recv() {
                            let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || -> DoneChunk {
                                    chunk
                                        .into_iter()
                                        .map(|(p, d)| {
                                            let outcome = self
                                                .sweep_configs(&p, binding, evaluator, state_ref);
                                            (p, d, outcome)
                                        })
                                        .collect()
                                },
                            ))
                            .map_err(|payload| {
                                payload
                                    .downcast_ref::<&str>()
                                    .map(|m| (*m).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".to_string())
                            });
                            let _ = res_tx.send((start, done));
                        }
                    });
                }
                drop(job_rx);
                drop(res_tx);
                let out = self.search(base, &state, |jobs| {
                    let chunk_size = jobs.len().div_ceil(workers).max(1);
                    let mut iter = jobs.into_iter();
                    let mut sent = 0usize;
                    let mut start = 0usize;
                    loop {
                        let chunk: Chunk = iter.by_ref().take(chunk_size).collect();
                        if chunk.is_empty() {
                            break;
                        }
                        let len = chunk.len();
                        job_tx.send((start, chunk)).expect("workers alive");
                        start += len;
                        sent += 1;
                    }
                    let mut done: Vec<(usize, DoneChunk)> = (0..sent)
                        .map(|_| {
                            let (start, result) = res_rx.recv().expect("worker result");
                            match result {
                                Ok(chunk) => (start, chunk),
                                Err(message) => {
                                    panic!("autotuner worker panicked: {message}")
                                }
                            }
                        })
                        .collect();
                    done.sort_by_key(|&(start, _)| start);
                    done.into_iter().flat_map(|(_, chunk)| chunk).collect()
                });
                drop(job_tx); // close the queue; scope joins the workers
                out
            })
            .expect("autotuner worker scope")
        };

        let mut candidates = candidates;
        candidates.sort_by(|a, b| a.1.time.total_cmp(&b.1.time).then(a.0.cmp(&b.0)));

        Ok(TuneReport {
            candidates: candidates.into_iter().map(|(_, c)| c).collect(),
            schedules_explored,
            configs_evaluated: state.configs_evaluated.load(Ordering::Relaxed),
            configs_pruned: state.configs_pruned.load(Ordering::Relaxed),
            branches_pruned,
            memo_hits: state.memo_hits.load(Ordering::Relaxed),
            cache: CacheStats::default(),
            elapsed: start.elapsed(),
        })
    }

    /// Like [`tune`](Autotuner::tune), but consults `cache` first: a
    /// warm hit at the same (structural program hash, evaluator
    /// fingerprint × binding, config-grid fingerprint) key returns the
    /// cached winning candidate — bit-identical to the cold winner —
    /// in ~0 time, reporting `configs_evaluated = 0` and
    /// `schedules_explored = 0` (no sweep ran). A miss runs the full
    /// search and installs the winner. Either way the report's
    /// [`TuneReport::cache`] carries the cache's cumulative
    /// hit/miss/eviction counters (plus the answering entry's age on a
    /// hit).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the input program, exactly as
    /// [`tune`](Autotuner::tune) does.
    pub fn tune_cached(
        &self,
        program: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
        cache: &mut PlanCache,
    ) -> Result<TuneReport, CoreError> {
        let start = Instant::now();
        let key = self.cache_key(program, binding, evaluator);
        if let Some((winner, age)) = cache.get(&key) {
            let mut stats = cache.stats();
            stats.hit_age = Some(age);
            return Ok(TuneReport {
                candidates: vec![winner],
                schedules_explored: 0,
                configs_evaluated: 0,
                configs_pruned: 0,
                branches_pruned: 0,
                memo_hits: 0,
                cache: stats,
                elapsed: start.elapsed(),
            });
        }
        let mut report = self.tune(program, binding, evaluator)?;
        if let Ok(best) = report.best() {
            cache.insert(key, best.clone());
        }
        report.cache = cache.stats();
        Ok(report)
    }

    /// The [`PlanCache`] key for one request: the structural program
    /// hash (isomorphism-invariant), the cluster-shape component
    /// (evaluator fingerprint mixed with the binding's geometry and
    /// symbol sizes — both change the winner), and this tuner's
    /// config-grid fingerprint.
    pub fn cache_key(
        &self,
        program: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
    ) -> PlanKey {
        let cluster = {
            let mut h = DefaultHasher::new();
            evaluator.fingerprint().hash(&mut h);
            binding.group_size.hash(&mut h);
            binding.num_groups.hash(&mut h);
            // Already sorted by name (the binding map is a BTreeMap).
            for (name, value) in binding.symbols() {
                name.hash(&mut h);
                value.hash(&mut h);
            }
            h.finish()
        };
        PlanKey {
            program: structural_hash(program),
            cluster,
            grid: self.grid_fingerprint(),
        }
    }

    /// A stable fingerprint of the search space this tuner sweeps:
    /// every grid dimension in order, plus the exploration knobs that
    /// change which schedules are reachable. Two tuners with equal
    /// fingerprints produce identical winners for identical inputs, so
    /// the fingerprint is the grid component of the [`PlanCache`] key.
    pub fn grid_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.max_depth.hash(&mut h);
        for a in &self.algos {
            a.index().hash(&mut h);
        }
        u64::MAX.hash(&mut h); // dimension separator
        for p in &self.protocols {
            p.hash(&mut h);
        }
        u64::MAX.hash(&mut h);
        self.channels.hash(&mut h);
        u64::MAX.hash(&mut h);
        for f in &self.formats {
            f.hash(&mut h);
        }
        u64::MAX.hash(&mut h);
        for s in &self.scheds {
            s.index().hash(&mut h);
        }
        u64::MAX.hash(&mut h);
        for x in &self.xfers {
            x.index().hash(&mut h);
        }
        self.slice_state.hash(&mut h);
        h.finish()
    }

    /// The BFS driver: explores level by level through `eval_level`
    /// (which owns how sweeps are executed — inline or on the pool and
    /// must preserve order), expanding surviving schedules on the
    /// calling thread. Each candidate carries its discovery sequence
    /// number so that ties sort identically regardless of worker count
    /// or pruning.
    fn search(
        &self,
        base: Program,
        state: &SearchState,
        mut eval_level: impl FnMut(
            Vec<(Program, Vec<String>)>,
        ) -> Vec<(Program, Vec<String>, SweepOutcome)>,
    ) -> (Vec<(usize, Candidate)>, usize, usize) {
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(structural_hash(&base));
        let mut frontier: Vec<(Program, Vec<String>)> = vec![(base, Vec::new())];
        let mut candidates: Vec<(usize, Candidate)> = Vec::new();
        let mut schedules_explored = 0usize;
        let mut branches_pruned = 0usize;
        let mut depth = 0usize;

        while !frontier.is_empty() {
            let evaluated = eval_level(std::mem::take(&mut frontier));
            for (i, (p, schedule, outcome)) in evaluated.iter().enumerate() {
                if let Some((config, time)) = outcome.best {
                    candidates.push((
                        schedules_explored + i,
                        Candidate {
                            schedule: schedule.clone(),
                            program: p.clone(),
                            config,
                            time,
                        },
                    ));
                }
            }
            schedules_explored += evaluated.len();

            if depth > self.max_depth {
                break;
            }
            let incumbent = state.incumbent();
            for (p, desc, outcome) in evaluated {
                if self.prune && outcome.floor > incumbent {
                    branches_pruned += 1;
                    continue;
                }
                for mv in find_moves(&p, self.slice_state) {
                    let mut q = p.clone();
                    let label = mv.describe(&q);
                    if mv.apply(&mut q).is_err() {
                        continue;
                    }
                    if seen.insert(structural_hash(&q)) {
                        let mut d = desc.clone();
                        d.push(label);
                        frontier.push((q, d));
                    }
                }
            }
            depth += 1;
        }
        (candidates, schedules_explored, branches_pruned)
    }

    /// Disables beam pruning (and keeps everything else), so every
    /// schedule is costed under every configuration — the reference
    /// mode the pruned search is tested against.
    pub fn exhaustive(mut self) -> Autotuner {
        self.prune = false;
        self
    }

    /// Sets the worker-thread count (`0` = one per available core,
    /// `1` = fully serial).
    pub fn with_workers(mut self, workers: usize) -> Autotuner {
        self.workers = workers;
        self
    }

    fn worker_count(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Sweeps every algorithm/protocol/channel/wire-format/scheduling
    /// configuration of one schedule.
    ///
    /// Lowering is configuration-independent up to the algorithm stamp
    /// (the steps' shapes never depend on the configuration), so the
    /// schedule is lowered once and re-tagged per configuration via
    /// [`ExecPlan::set_config`] — the dominant fixed cost of the old
    /// per-config lowering loop.
    fn sweep_configs(
        &self,
        p: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
        state: &SearchState,
    ) -> SweepOutcome {
        // The scheduling disciplines are the innermost loops with the
        // simpler variant enumerated first (`Barriered` before
        // `Priority`, `Fifo` before `Aware` — see [`CommSched::ALL`]
        // and [`XferSched::ALL`]), so a tie — any comm-free or
        // compute-free plan for the iteration discipline, *every* solo
        // plan for the cost-neutral transfer discipline —
        // deterministically keeps the simpler discipline (the sweep
        // keeps the *first* best).
        let configs: Vec<CommConfig> = self
            .algos
            .iter()
            .flat_map(|&algo| {
                self.protocols.iter().flat_map(move |&protocol| {
                    self.channels.iter().flat_map(move |&channels| {
                        self.formats.iter().flat_map(move |&format| {
                            self.scheds.iter().flat_map(move |&sched| {
                                self.xfers.iter().map(move |&xfer| CommConfig {
                                    algo,
                                    protocol,
                                    channels,
                                    format,
                                    sched,
                                    xfer,
                                })
                            })
                        })
                    })
                })
            })
            .collect();
        let Some(&first) = configs.first() else {
            return SweepOutcome {
                best: None,
                floor: 0.0,
            };
        };
        let Ok(mut plan) = lower(p, binding, first) else {
            return SweepOutcome {
                best: None,
                floor: 0.0,
            };
        };
        let steps_key = steps_hash(&plan);
        // Both bound vectors in one evaluator pass; when pruning is
        // off, neither is needed.
        let (tight, descendant) = if self.prune {
            evaluator.lower_bound_sweep(&plan, &configs)
        } else {
            (Vec::new(), Vec::new())
        };

        let mut best: Option<(CommConfig, f64)> = None;
        let mut floor = if self.prune { f64::INFINITY } else { 0.0 };
        for (i, &config) in configs.iter().enumerate() {
            if self.prune {
                floor = floor.min(descendant[i]);
                if tight[i] > state.incumbent() {
                    state.configs_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let key = {
                let mut h = DefaultHasher::new();
                steps_key.hash(&mut h);
                config.hash(&mut h);
                h.finish()
            };
            let memoized = state.memo.lock().expect("memo lock").get(&key).copied();
            let t = match memoized {
                Some(t) => {
                    state.memo_hits.fetch_add(1, Ordering::Relaxed);
                    t
                }
                None => {
                    // Restamp only when the evaluator will actually
                    // read the plan — pruned and memoized
                    // configurations skip the O(steps) walk.
                    plan.set_config(config);
                    let t = evaluator.evaluate(&plan);
                    state.memo.lock().expect("memo lock").insert(key, t);
                    t
                }
            };
            state.configs_evaluated.fetch_add(1, Ordering::Relaxed);
            state.incumbent.fetch_min(t.to_bits(), Ordering::Relaxed);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((config, t));
            }
        }
        SweepOutcome {
            best,
            floor: if floor.is_finite() { floor } else { 0.0 },
        }
    }
}

/// A structural hash of a program: node kinds, scalar payloads, types,
/// and group structure over topologically renumbered variables. Two
/// schedules that differ only in variable numbering or display names
/// (isomorphic programs) hash identically, which is what dedupes
/// transformation sequences that commute into the same program.
pub fn structural_hash(p: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    let order = p.topo_order();
    let rank: HashMap<VarId, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let r = |v: VarId| rank.get(&v).copied().unwrap_or(usize::MAX);
    for &v in &order {
        let Ok(op) = p.op(v) else { continue };
        std::mem::discriminant(op).hash(&mut h);
        for input in op.inputs() {
            r(input).hash(&mut h);
        }
        // Non-variable payloads, which the discriminant cannot see.
        match op {
            OpKind::ConstScalar(c) => c.to_bits().hash(&mut h),
            OpKind::Unary(u, _) => u.hash(&mut h),
            OpKind::Binary(b, ..) => b.hash(&mut h),
            OpKind::Conv2d(_, _, params) => params.hash(&mut h),
            OpKind::Dropout(_, prob) => prob.to_bits().hash(&mut h),
            OpKind::ReduceTensor(ro, _)
            | OpKind::AllReduce(ro, _)
            | OpKind::ReduceScatter(ro, _) => ro.hash(&mut h),
            OpKind::Broadcast(_, root) => root.hash(&mut h),
            OpKind::Reduce(ro, _, root) => {
                ro.hash(&mut h);
                root.hash(&mut h);
            }
            OpKind::Send(_, peer) => peer.hash(&mut h),
            _ => {}
        }
        if let Ok(t) = p.ty(v) {
            t.hash(&mut h);
        }
    }
    for &v in p.inputs() {
        r(v).hash(&mut h);
    }
    for &v in p.outputs() {
        r(v).hash(&mut h);
    }
    for g in p.fusion_groups() {
        g.kind.hash(&mut h);
        let mut members: Vec<usize> = g.members.iter().map(|&v| r(v)).collect();
        members.sort_unstable();
        members.hash(&mut h);
    }
    for g in p.overlap_groups() {
        // Stage order matters for overlap, so no sorting here.
        let members: Vec<usize> = g.members.iter().map(|&v| r(v)).collect();
        members.hash(&mut h);
    }
    h.finish()
}

/// A structural hash of a lowered plan's steps (the configuration is
/// hashed in separately per sweep iteration), keying the evaluation
/// memo: schedules that lower to the same executable steps are costed
/// once per configuration.
fn steps_hash(plan: &ExecPlan) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", plan.steps).hash(&mut h);
    h.finish()
}

/// Fuses every maximal chain of connected pointwise computations into a
/// compute fusion group (the autotuner's pre-pass, §3.5).
pub fn fuse_pointwise_chains(p: &mut Program) {
    let mut visited: HashSet<VarId> = HashSet::new();
    let order = p.topo_order();
    for &v in &order {
        if visited.contains(&v) || p.fusion_group_of(v).is_some() {
            continue;
        }
        let Ok(op) = p.op(v) else { continue };
        if !op.is_pointwise() || matches!(op, OpKind::ConstScalar(_) | OpKind::Slice(_)) {
            continue;
        }
        // Grow a connected pointwise region from v.
        let mut region: Vec<VarId> = vec![v];
        let mut stack = vec![v];
        let mut in_region: HashSet<VarId> = [v].into_iter().collect();
        while let Some(m) = stack.pop() {
            let mut neighbors: Vec<VarId> = p.op(m).map(|o| o.inputs()).unwrap_or_default();
            neighbors.extend(p.consumers(m));
            for n in neighbors {
                if in_region.contains(&n) || p.fusion_group_of(n).is_some() {
                    continue;
                }
                let Ok(nop) = p.op(n) else { continue };
                if nop.is_pointwise() && !matches!(nop, OpKind::ConstScalar(_) | OpKind::Slice(_)) {
                    in_region.insert(n);
                    region.push(n);
                    stack.push(n);
                }
            }
        }
        visited.extend(region.iter().copied());
        if region.len() >= 2 && xform::fuse_compute(p, &region).is_ok() {
            // recorded as a group
        }
    }
}

/// Enumerates the transformation moves applicable to a program.
fn find_moves(p: &Program, slice_state: bool) -> Vec<Move> {
    let mut moves = Vec::new();
    let topo = p.topo_order();

    for &v in &topo {
        let Ok(op) = p.op(v) else { continue };
        match op {
            // split: any AllReduce not yet fused.
            OpKind::AllReduce(..) if p.fusion_group_of(v).is_none() => {
                moves.push(Move::Split(v));
            }
            // reorder: an AllGather whose maximal pointwise/Send
            // consumer region swallows all its consumers.
            OpKind::AllGather(_) => {
                if let Some(region) = reorder_region(p, v) {
                    moves.push(Move::Reorder(v, region));
                }
            }
            // fuse(AllReduceFuse): RS -> sliced comps -> AG(s) pattern.
            OpKind::ReduceScatter(..) if p.fusion_group_of(v).is_none() => {
                if let Some((comps, ags)) = fused_ar_region(p, v) {
                    moves.push(Move::FuseAllReduce(v, comps, ags));
                }
            }
            // fuse(SendFuse): the pointwise region feeding a Send.
            OpKind::Send(input, _) if p.fusion_group_of(v).is_none() => {
                let comps = pointwise_region_feeding(p, *input, v);
                if !comps.is_empty() {
                    moves.push(Move::FuseSend(comps, v));
                }
            }
            _ => {}
        }
    }

    // asSlice + dead: a dangling AllGather over an Update of a
    // replicated input (the optimizer-state pattern of §4).
    if slice_state {
        for &v in &topo {
            if let Ok(OpKind::AllGather(x)) = p.op(v) {
                if !p.consumers(v).is_empty() || p.outputs().contains(&v) {
                    continue;
                }
                if let Ok(OpKind::Update(target, _)) = p.op(*x) {
                    if p.ty(*target).map(|t| t.layout == crate::Layout::Replicated) == Ok(true) {
                        moves.push(Move::SliceState(*target, v));
                    }
                }
            }
        }
    }

    // overlap: producer-consumer chains of stage-able units.
    moves.extend(overlap_moves(p));
    moves
}

/// The maximal connected region of pointwise/Send operations around an
/// AllGather's consumers, or `None` if some consumer cannot be
/// reordered.
///
/// The region grows in *both* directions: downstream through consumers
/// (they must all be sliceable, else the reorder is invalid) and
/// upstream through pointwise producers (the paper reorders the whole
/// pre-fused computation, so `m * beta1` joins even though it does not
/// read the gather — that is what lets `asSlice(m)` apply later, §4).
fn reorder_region(p: &Program, ag: VarId) -> Option<Vec<VarId>> {
    let mut region: Vec<VarId> = Vec::new();
    let mut in_region: HashSet<VarId> = HashSet::new();
    let direct: Vec<VarId> = p.consumers(ag);
    if direct.is_empty() {
        return None;
    }
    // Downstream consumers are mandatory; a non-sliceable one kills the
    // transformation.
    let mut stack = direct;
    while let Some(v) = stack.pop() {
        if in_region.contains(&v) {
            continue;
        }
        let op = p.op(v).ok()?;
        let ok = op.is_pointwise() || matches!(op, OpKind::Send(..));
        if !ok || matches!(op, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
            return None; // a consumer cannot be sliced: reorder invalid
        }
        in_region.insert(v);
        region.push(v);
        // Sends terminate the region on this branch (their output lives
        // on the next group); other members' consumers must join.
        if !matches!(op, OpKind::Send(..)) {
            stack.extend(p.consumers(v));
        }
    }
    // Upstream pointwise producers are optional: absorb any whose
    // consumers all lie in the region (keeps the region convex).
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if dep == ag || in_region.contains(&dep) {
                    continue;
                }
                let Ok(dop) = p.op(dep) else { continue };
                if !dop.is_pointwise() || matches!(dop, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Keep topological order.
    let order = p.topo_order();
    region.sort_by_key(|v| order.iter().position(|x| x == v));
    Some(region)
}

/// Finds the `RS -> sliced comps -> AllGather(s)` region rooted at a
/// ReduceScatter for `fuse(AllReduceFuse)`. Downstream consumers of the
/// ReduceScatter are collected first; upstream pointwise producers
/// whose consumers all lie inside (e.g. the `m * beta1` term the
/// reorder sliced) are then absorbed, so the fusion covers the whole
/// pre-fused computation group.
fn fused_ar_region(p: &Program, rs: VarId) -> Option<(Vec<VarId>, Vec<VarId>)> {
    let mut comps = Vec::new();
    let mut ags = Vec::new();
    let mut stack: Vec<VarId> = p.consumers(rs);
    let mut seen: HashSet<VarId> = HashSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        let op = p.op(v).ok()?;
        match op {
            OpKind::AllGather(_) => ags.push(v),
            OpKind::Send(..) => return None, // handled by SendFuse/overlap
            o if o.is_pointwise() => {
                if !matches!(o, OpKind::Slice(_)) {
                    comps.push(v);
                }
                stack.extend(p.consumers(v));
            }
            _ => return None,
        }
    }
    if ags.is_empty() || p.fusion_group_of(rs).is_some() {
        return None;
    }
    absorb_upstream_pointwise(p, &mut comps);
    let order = p.topo_order();
    comps.sort_by_key(|v| order.iter().position(|x| x == v));
    ags.sort_by_key(|v| order.iter().position(|x| x == v));
    Some((comps, ags))
}

/// Grows `region` upstream through pointwise producers whose consumers
/// all lie inside the region (keeps it convex).
fn absorb_upstream_pointwise(p: &Program, region: &mut Vec<VarId>) {
    let mut in_region: HashSet<VarId> = region.iter().copied().collect();
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if in_region.contains(&dep) {
                    continue;
                }
                let Ok(dop) = p.op(dep) else { continue };
                if !dop.is_pointwise() || matches!(dop, OpKind::Slice(_) | OpKind::ConstScalar(_)) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
}

/// The maximal connected pointwise region whose value flows into
/// `sink_input` (feeding the Send at `sink`): the chain from the input
/// upward, closed over producers with all consumers inside.
fn pointwise_region_feeding(p: &Program, sink_input: VarId, sink: VarId) -> Vec<VarId> {
    let ok = |v: VarId| {
        p.op(v).is_ok_and(|op| {
            op.is_pointwise() && !matches!(op, OpKind::ConstScalar(_) | OpKind::Slice(_))
        })
    };
    if !ok(sink_input) {
        return Vec::new();
    }
    // The direct input must flow only into the Send.
    if p.consumers(sink_input).iter().any(|&c| c != sink) {
        return Vec::new();
    }
    let mut region = vec![sink_input];
    // Treat the sink as in-region for the closure test.
    let mut in_region: HashSet<VarId> = [sink_input, sink].into_iter().collect();
    loop {
        let mut grew = false;
        for &m in &region.clone() {
            let Ok(op) = p.op(m) else { continue };
            for dep in op.inputs() {
                if in_region.contains(&dep) || !ok(dep) {
                    continue;
                }
                if p.consumers(dep).iter().all(|c| in_region.contains(c)) {
                    in_region.insert(dep);
                    region.push(dep);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let order = p.topo_order();
    region.sort_by_key(|v| order.iter().position(|x| x == v));
    region
}

/// Enumerates overlappable producer-consumer chains.
fn overlap_moves(p: &Program) -> Vec<Move> {
    let mut moves = Vec::new();
    if !p.overlap_groups().is_empty() {
        return moves; // one overlap per program in the paper's schedules
    }
    for &v in &p.topo_order() {
        let Ok(op) = p.op(v) else { continue };
        match op {
            // MatMul -> collective (possibly fused).
            OpKind::MatMul(..) => {
                let consumers = p.consumers(v);
                if consumers.len() != 1 {
                    continue;
                }
                let c = consumers[0];
                let Ok(cop) = p.op(c) else { continue };
                let is_comm_stage =
                    matches!(cop, OpKind::AllReduce(..) | OpKind::ReduceScatter(..));
                if is_comm_stage {
                    moves.push(Move::Overlap(vec![v, c]));
                }
            }
            // RS -> (fused)Send -> AG: the pipeline-parallel chain.
            OpKind::ReduceScatter(..) => {
                // Walk forward: RS -> [send group] -> AG on next group.
                let mut send = None;
                for c in transitive_consumers(p, v) {
                    if matches!(p.op(c), Ok(OpKind::Send(..))) {
                        send = Some(c);
                        break;
                    }
                }
                let Some(send) = send else { continue };
                let ag = p
                    .consumers(send)
                    .into_iter()
                    .find(|&c| matches!(p.op(c), Ok(OpKind::AllGather(_))));
                let Some(ag) = ag else { continue };
                moves.push(Move::Overlap(vec![v, send, ag]));
            }
            _ => {}
        }
    }
    moves
}

fn transitive_consumers(p: &Program, v: VarId) -> Vec<VarId> {
    let mut out = Vec::new();
    let mut stack = p.consumers(v);
    let mut seen = HashSet::new();
    while let Some(c) = stack.pop() {
        if seen.insert(c) {
            out.push(c);
            stack.extend(p.consumers(c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, ExecPlan, Layout, ReduceOp, Step};

    /// A toy evaluator: counts launches plus bandwidth-proportional
    /// costs, rewarding fusion and overlap like the real machine does.
    fn toy_evaluator(plan: &ExecPlan) -> f64 {
        let mut t = 0.0;
        for s in &plan.steps {
            t += 5e-6 * s.launches() as f64;
            t += match s {
                Step::Kernel(k) => (k.bytes_read + k.bytes_written) as f64 / 700e9,
                Step::MatMul(mm) => mm.flops() as f64 / 80e12,
                Step::Collective(c) => c.elems as f64 * 2.0 / 100e9 * 1.9,
                Step::FusedCollective(f) => f.elems as f64 * 2.0 / 100e9 * 1.9,
                Step::SendRecv(sr) => sr.elems_per_rank as f64 * 2.0 / 6e9,
                Step::Overlapped(ol) => {
                    // Roughly the max stage.
                    ol.stages
                        .iter()
                        .map(|st| match st {
                            crate::OverlapStage::MatMul(mm) => mm.flops() as f64 / 80e12,
                            crate::OverlapStage::Collective(c) => {
                                c.elems as f64 * 2.0 / 100e9 * 1.9
                            }
                            crate::OverlapStage::FusedCollective(f) => {
                                f.elems as f64 * 2.0 / 100e9 * 1.9
                            }
                            crate::OverlapStage::SendRecv(sr) => {
                                sr.elems_per_rank as f64 * 2.0 / 6e9
                            }
                        })
                        .fold(0.0f64, f64::max)
                }
                Step::Fixed(f) => f.seconds,
            };
        }
        t
    }

    fn self_attention() -> Program {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        p
    }

    #[test]
    fn tuner_finds_overlap_schedule_for_large_sizes() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let tuner = Autotuner::default();
        let report = tuner.tune(&p, &binding, &toy_evaluator).unwrap();
        assert!(
            report.schedules_explored >= 4,
            "explored {}",
            report.schedules_explored
        );
        assert!(report.configs_evaluated > report.schedules_explored);
        let best = report.best().unwrap();
        // The best schedule must contain an overlap (the paper's
        // winning ol(MM, fuse(RS-C-AG)) schedule).
        assert!(
            best.schedule.iter().any(|s| s.starts_with("overlap")),
            "best schedule = {:?}",
            best.schedule
        );
        // The best program has one overlap group covering the MatMul.
        assert_eq!(best.program.overlap_groups().len(), 1);
        // And the baseline is strictly worse.
        let baseline = report
            .candidates
            .iter()
            .find(|c| c.schedule.is_empty())
            .expect("baseline present");
        assert!(best.time < baseline.time);
    }

    #[test]
    fn pre_pass_fuses_pointwise_chains() {
        let mut p = self_attention();
        fuse_pointwise_chains(&mut p);
        assert_eq!(p.fusion_groups().len(), 1);
        assert_eq!(p.fusion_groups()[0].members.len(), 3); // add, dropout, add
    }

    #[test]
    fn tuner_explores_split_and_fuse_for_optimizer() {
        // Mini-Adam: AR + state update; the tuner should discover the
        // split -> reorder -> asSlice -> fuse chain.
        let mut p = Program::new("mini_adam");
        let g = p.input("g", DType::F32, ["N"], Layout::Local);
        let m = p.input("m", DType::F32, ["N"], Layout::Replicated);
        let param = p.input("p", DType::F32, ["N"], Layout::Replicated);
        let avg = p.all_reduce(ReduceOp::Sum, g).unwrap();
        p.set_name(avg, "avg").unwrap();
        let beta = p.constant(0.9);
        let m_new = p.mul(m, beta).unwrap();
        let m_new = p.add(m_new, avg).unwrap();
        let m_ = p.update(m, m_new).unwrap();
        let step = p.mul(m_, beta).unwrap();
        let p_new = p.sub(param, step).unwrap();
        let p_ = p.update(param, p_new).unwrap();
        p.set_io(&[g, m, param], &[p_]).unwrap();

        let binding = Binding::new(256).bind("N", 1 << 26);
        let report = Autotuner::default()
            .tune(&p, &binding, &toy_evaluator)
            .unwrap();
        let labels: Vec<String> = report.candidates.iter().map(Candidate::label).collect();
        assert!(
            labels.iter().any(|l| l.contains("split")),
            "no split schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("reorder")),
            "no reorder schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("AllReduceFuse")),
            "no fused schedule in {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("asSlice")),
            "no asSlice schedule in {labels:?}"
        );
    }

    #[test]
    fn report_orders_candidates_best_first() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let report = Autotuner::default()
            .tune(&p, &binding, &toy_evaluator)
            .unwrap();
        for w in report.candidates.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn empty_report_best_is_an_error() {
        let report = TuneReport {
            candidates: Vec::new(),
            schedules_explored: 0,
            configs_evaluated: 0,
            configs_pruned: 0,
            branches_pruned: 0,
            memo_hits: 0,
            cache: CacheStats::default(),
            elapsed: Duration::ZERO,
        };
        assert_eq!(report.best().unwrap_err(), CoreError::NoViableSchedule);
    }

    #[test]
    fn tune_cached_warm_hit_is_bit_identical_and_costs_nothing() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let tuner = Autotuner::default().with_workers(1);
        let mut cache = PlanCache::new(4);

        let cold = tuner
            .tune_cached(&p, &binding, &toy_evaluator, &mut cache)
            .unwrap();
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses, 1);
        assert!(cold.configs_evaluated > 0);
        assert_eq!(cache.len(), 1);

        let warm = tuner
            .tune_cached(&p, &binding, &toy_evaluator, &mut cache)
            .unwrap();
        // A cache hit reports zero configurations costed and zero
        // schedules explored — nothing was swept.
        assert_eq!(warm.configs_evaluated, 0);
        assert_eq!(warm.schedules_explored, 0);
        assert_eq!(warm.cache.hits, 1);
        assert!(warm.cache.hit_age.is_some());
        let c = cold.best().unwrap();
        let w = warm.best().unwrap();
        assert_eq!(c.schedule, w.schedule);
        assert_eq!(c.config, w.config);
        assert_eq!(c.time.to_bits(), w.time.to_bits());

        // Any key component change misses: program structure...
        let mut extended = p.clone();
        let out = *extended.outputs().last().unwrap();
        extended.relu(out).unwrap();
        let r = tuner
            .tune_cached(&extended, &binding, &toy_evaluator, &mut cache)
            .unwrap();
        assert!(r.configs_evaluated > 0);
        // ...binding geometry...
        let smaller = Binding::new(8).bind("B", 8).bind("S", 1024).bind("H", 3072);
        let r = tuner
            .tune_cached(&p, &smaller, &toy_evaluator, &mut cache)
            .unwrap();
        assert!(r.configs_evaluated > 0);
        // ...and the config grid.
        let mut narrow = Autotuner::default().with_workers(1);
        narrow.channels = vec![16];
        let r = narrow
            .tune_cached(&p, &binding, &toy_evaluator, &mut cache)
            .unwrap();
        assert!(r.configs_evaluated > 0);
        assert_ne!(narrow.grid_fingerprint(), tuner.grid_fingerprint());
    }

    #[test]
    fn structural_hash_ignores_names_but_not_structure() {
        let a = self_attention();
        let mut renamed = a.clone();
        let v = renamed.topo_order()[0];
        renamed.set_name(v, "completely-different").unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&renamed));

        let mut extended = a.clone();
        let out = *extended.outputs().last().unwrap();
        extended.relu(out).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&extended));
    }

    /// An evaluator with a genuine (admissible) lower bound: the toy
    /// cost minus every launch/latency term it could ever shed.
    struct BoundedToy;

    impl PlanEvaluator for BoundedToy {
        fn evaluate(&self, plan: &ExecPlan) -> f64 {
            toy_evaluator(plan)
        }

        fn lower_bound(&self, plan: &ExecPlan) -> f64 {
            self.descendant_lower_bound(plan)
        }

        fn descendant_lower_bound(&self, plan: &ExecPlan) -> f64 {
            // Half the largest single communication payload at full
            // bandwidth: no descendant schedule can beat it, because
            // every transformation preserves at least the
            // ReduceScatter-volume wire traffic of the largest
            // collective.
            plan.steps
                .iter()
                .map(|s| match s {
                    Step::Collective(c) => c.elems as f64 / 100e9,
                    Step::FusedCollective(f) => f.elems as f64 / 100e9,
                    _ => 0.0,
                })
                .fold(0.0f64, f64::max)
        }
    }

    #[test]
    fn pruned_parallel_matches_exhaustive_serial() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let exhaustive = Autotuner::default()
            .exhaustive()
            .with_workers(1)
            .tune(&p, &binding, &BoundedToy)
            .unwrap();
        let pruned = Autotuner::default()
            .with_workers(2)
            .tune(&p, &binding, &BoundedToy)
            .unwrap();
        let e = exhaustive.best().unwrap();
        let b = pruned.best().unwrap();
        assert_eq!(e.schedule, b.schedule);
        assert_eq!(e.config, b.config);
        assert!((e.time - b.time).abs() < 1e-15);
        assert!(pruned.configs_evaluated <= exhaustive.configs_evaluated);
        assert_eq!(exhaustive.configs_pruned, 0);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // A panicking evaluator on the worker pool must fail the tune
        // call (on the calling thread), not deadlock the result
        // channel. Run with a watchdog so a regression fails fast
        // instead of hanging the suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let p = self_attention();
            let binding = Binding::new(16)
                .bind("B", 8)
                .bind("S", 1024)
                .bind("H", 3072);
            let bomb = |_: &ExecPlan| -> f64 { panic!("evaluator exploded") };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Autotuner::default()
                    .with_workers(2)
                    .tune(&p, &binding, &bomb)
            }));
            let _ = tx.send(result.is_err());
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("tune() must finish (panic), not hang");
        assert!(panicked, "the evaluator panic must propagate");
    }

    #[test]
    fn memo_and_counts_are_consistent() {
        let p = self_attention();
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072);
        let report = Autotuner::default()
            .exhaustive()
            .tune(&p, &binding, &toy_evaluator)
            .unwrap();
        // Every counted lookup is either fresh or memoized; pruning is
        // off so nothing was skipped.
        assert!(report.memo_hits <= report.configs_evaluated);
        assert_eq!(report.configs_pruned, 0);
        assert_eq!(report.branches_pruned, 0);
    }
}
