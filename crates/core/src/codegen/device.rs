//! Device-kernel emission: fused pointwise kernels, fused collectives
//! (per NCCL protocol, §5.2), and fused sends.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{BinaryOp, CoreError, OpKind, Program, UnaryOp, VarId};

use super::cuda_type;

type FileAndCall = ((String, String), String);

/// The C expression for one pointwise member, writing into `x_{name}`.
fn op_expression(p: &Program, v: VarId) -> Result<String, CoreError> {
    let node = p.node(v)?;
    let name = node.name();
    let arg = |x: VarId| -> Result<String, CoreError> {
        let n = p.node(x)?;
        Ok(match n.op() {
            OpKind::ConstScalar(c) => format!("{c}f"),
            _ => format!("x_{}", n.name()),
        })
    };
    Ok(match node.op() {
        OpKind::Unary(op, a) => {
            let f = match op {
                UnaryOp::Sqrt => "sqrtf",
                UnaryOp::Tanh => "tanhf",
                UnaryOp::Relu => "reluf",
                UnaryOp::Neg => "-",
            };
            format!("float x_{name} = {f}({});", arg(*a)?)
        }
        OpKind::Binary(op, a, b) => match op {
            BinaryOp::Pow => format!("float x_{name} = powf({}, {});", arg(*a)?, arg(*b)?),
            _ => format!(
                "float x_{name} = {} {} {};",
                arg(*a)?,
                op.symbol(),
                arg(*b)?
            ),
        },
        OpKind::Dropout(a, prob) => format!(
            "float x_{name} = coconet_keep(seed, gidx, {prob}f) ? {} * {:.6}f : 0.0f;",
            arg(*a)?,
            1.0 / (1.0 - prob)
        ),
        OpKind::Update(t, x) => format!(
            "float x_{name} = {1}; {0}[idx] = ({2})x_{name};",
            p.node(*t)?.name(),
            arg(*x)?,
            cuda_type(p, *t)?
        ),
        OpKind::Norm(a) => format!(
            "float x_{name} = blockReduceSum({0} * {0}); // norm partial",
            arg(*a)?
        ),
        OpKind::ReduceTensor(op, a) => {
            format!("float x_{name} = blockReduce({:?}, {});", op, arg(*a)?)
        }
        OpKind::Slice(a) => format!(
            "float x_{name} = (float){}[sliceOffset(rank, idx)];",
            p.node(*a)?.name()
        ),
        other => {
            return Err(CoreError::MalformedProgram(format!(
                "cannot emit device expression for {}",
                other.mnemonic()
            )));
        }
    })
}

/// External values a member set loads from device memory.
fn external_loads(p: &Program, members: &[VarId]) -> Result<Vec<VarId>, CoreError> {
    let set: HashSet<VarId> = members.iter().copied().collect();
    let mut loads = Vec::new();
    let mut seen = HashSet::new();
    for &m in members {
        for dep in p.op(m)?.inputs() {
            if set.contains(&dep) || !seen.insert(dep) {
                continue;
            }
            match p.op(dep)? {
                OpKind::ConstScalar(_) => {}
                OpKind::Slice(inner) => {
                    if seen.insert(*inner) {
                        loads.push(dep); // load via slice offset
                    }
                }
                _ => loads.push(dep),
            }
        }
    }
    Ok(loads)
}

/// Members whose value escapes the set (stored to memory).
fn external_stores(p: &Program, members: &[VarId]) -> Result<Vec<VarId>, CoreError> {
    let set: HashSet<VarId> = members.iter().copied().collect();
    let mut stores = Vec::new();
    for &m in members {
        let escapes = p.outputs().contains(&m) || p.consumers(m).iter().any(|c| !set.contains(c));
        if escapes && !matches!(p.op(m)?, OpKind::Update(..)) {
            stores.push(m);
        }
    }
    Ok(stores)
}

fn compute_body(p: &Program, members: &[VarId], indent: &str) -> Result<String, CoreError> {
    let mut body = String::new();
    let order = p.topo_order();
    let mut sorted: Vec<VarId> = members.to_vec();
    sorted.sort_by_key(|v| order.iter().position(|x| x == v));
    for &m in &sorted {
        if matches!(p.op(m)?, OpKind::ConstScalar(_)) {
            continue;
        }
        let _ = writeln!(body, "{indent}{}", op_expression(p, m)?);
    }
    Ok(body)
}

/// Emits a fused pointwise kernel plus its host launch call.
pub(crate) fn emit_pointwise_kernel(
    p: &Program,
    members: &[VarId],
    idx: usize,
) -> Result<FileAndCall, CoreError> {
    let kernel_name = format!("fused_compute_{idx}");
    let loads = external_loads(p, members)?;
    let stores = external_stores(p, members)?;
    let mut src = String::new();
    let _ = writeln!(src, "// Fused pointwise kernel ({} ops).", members.len());
    let mut params: Vec<String> =
        vec!["size_t n".into(), "int rank".into(), "uint64_t seed".into()];
    for &l in &loads {
        let node = p.node(l)?;
        params.push(format!("const {}* {}", cuda_type(p, l)?, node.name()));
    }
    for &s in &stores {
        params.push(format!("{}* out_{}", cuda_type(p, s)?, p.node(s)?.name()));
    }
    // Update targets are in-out parameters.
    for &m in members {
        if let OpKind::Update(t, _) = p.op(m)? {
            params.push(format!("{}* {}", cuda_type(p, *t)?, p.node(*t)?.name()));
        }
    }
    let _ = writeln!(
        src,
        "__global__ void {kernel_name}({}) {{",
        params.join(", ")
    );
    let _ = writeln!(
        src,
        "  size_t idx = blockIdx.x * (size_t)blockDim.x + threadIdx.x;"
    );
    let _ = writeln!(src, "  if (idx >= n) return;");
    let _ = writeln!(src, "  size_t gidx = globalOffset(rank, n) + idx;");
    for &l in &loads {
        let node = p.node(l)?;
        if matches!(node.op(), OpKind::Slice(_)) {
            let _ = writeln!(src, "  {}", op_expression(p, l)?);
        } else {
            let _ = writeln!(src, "  float x_{0} = (float){0}[idx];", node.name());
        }
    }
    src.push_str(&compute_body(p, members, "  ")?);
    for &s in &stores {
        let name = p.node(s)?.name();
        let _ = writeln!(src, "  out_{name}[idx] = ({})x_{name};", cuda_type(p, s)?);
    }
    let _ = writeln!(src, "}}");
    let call = format!(
        "{kernel_name}<<<cdiv(n, 256), 256, 0, ctx->stream>>>(/* {} args */);",
        params.len()
    );
    Ok(((format!("{kernel_name}.cu"), src), call))
}

/// Emits a FusedAllReduce kernel specialized for all three NCCL
/// protocols (§5.2), plus its host launch call.
pub(crate) fn emit_fused_collective(
    p: &Program,
    members: &[VarId],
    idx: usize,
) -> Result<FileAndCall, CoreError> {
    let compute_members: Vec<VarId> = members
        .iter()
        .filter(|&&m| {
            !matches!(
                p.op(m),
                Ok(OpKind::ReduceScatter(..)) | Ok(OpKind::AllGather(_))
            )
        })
        .copied()
        .collect();
    let norms: Vec<VarId> = compute_members
        .iter()
        .filter(|&&m| matches!(p.op(m), Ok(OpKind::Norm(_)) | Ok(OpKind::ReduceTensor(..))))
        .copied()
        .collect();
    let kernel = format!("fusedAllReduce_{idx}");
    let mut src = String::new();
    let _ = writeln!(
        src,
        "// FusedAllReduce (§5.2): ReduceScatter + {} fused ops + AllGather",
        compute_members.len()
    );
    let _ = writeln!(src, "// in one kernel, specialized per NCCL protocol.");
    let _ = writeln!(src, "#include \"nccl_device_glue.cuh\"");

    // The shared compute epilogue applied to each rank's slice.
    let _ = writeln!(src, "template <typename T, typename PackT>");
    let _ = writeln!(
        src,
        "__device__ __forceinline__ void computeEpilogue_{idx}(PackT* pack, FusedArgs_{idx}* a, size_t idx, size_t gidx, int rank, uint64_t seed) {{"
    );
    let _ = writeln!(
        src,
        "  constexpr int kEltsPerPack = sizeof(PackT) / sizeof(T);"
    );
    let _ = writeln!(src, "  #pragma unroll");
    let _ = writeln!(src, "  for (int e = 0; e < kEltsPerPack; ++e) {{");
    let loads = external_loads(p, &compute_members)?;
    for &l in &loads {
        let node = p.node(l)?;
        if matches!(node.op(), OpKind::Slice(_)) {
            let _ = writeln!(src, "    {}", op_expression(p, l)?);
        } else {
            let _ = writeln!(
                src,
                "    float x_{0} = toFloat(a->{0}[idx + e]);",
                node.name()
            );
        }
    }
    let _ = writeln!(
        src,
        "    float x_{} = toFloat(unpack<T>(pack, e));",
        rs_name(p, members)?
    );
    src.push_str(&compute_body(p, &compute_members, "    ")?);
    for &s in &external_stores(p, &compute_members)? {
        let name = p.node(s)?.name();
        let _ = writeln!(src, "    repack<T>(pack, e, fromFloat<T>(x_{name}));");
    }
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}");

    // Mixed-precision pack handling (§5.2): find the largest element
    // type among the fused computation's operands and derive how many
    // elements one protocol pack carries.
    let _ = writeln!(
        src,
        "// Mixed precision (§5.2): packs carry kEltsPerPack elements of the"
    );
    let _ = writeln!(
        src,
        "// widest participating type; narrower tensors are converted on load."
    );
    let _ = writeln!(
        src,
        "template <typename TWide, typename TNarrow, typename PackT>"
    );
    let _ = writeln!(src, "__device__ __forceinline__ void loadMixed_{idx}(const TNarrow* src, size_t idx, float* out) {{");
    let _ = writeln!(
        src,
        "  constexpr int kEltsPerPack = sizeof(PackT) / sizeof(TWide);"
    );
    let _ = writeln!(src, "  #pragma unroll");
    let _ = writeln!(src, "  for (int e = 0; e < kEltsPerPack; ++e) {{");
    let _ = writeln!(src, "    out[e] = toFloat(src[idx + e]);");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}");

    // Sliced-tensor index mapping (§5.2): accesses inside the fused
    // kernel map to elements of the rank's slice; the AllGather phase
    // uses the inverse mapping.
    let _ = writeln!(
        src,
        "// Sliced tensors (§5.2): map a global element index to this rank's"
    );
    let _ = writeln!(src, "// slice, and back for the AllGather phase.");
    let _ = writeln!(src, "__device__ __forceinline__ size_t sliceIndex_{idx}(size_t gidx, int rank, size_t sliceElems) {{");
    let _ = writeln!(src, "  return gidx - (size_t)rank * sliceElems;");
    let _ = writeln!(src, "}}");
    let _ = writeln!(src, "__device__ __forceinline__ size_t inverseSliceIndex_{idx}(size_t lidx, int rank, size_t sliceElems) {{");
    let _ = writeln!(src, "  return (size_t)rank * sliceElems + lidx;");
    let _ = writeln!(src, "}}");

    // Embedded scalar all-reduces for sliced tensor reductions.
    for (i, &n) in norms.iter().enumerate() {
        let name = p.node(n)?.name();
        let _ = writeln!(
            src,
            "// Embedded scalar AllReduce for {name} (§5.2 Tensor Reduction):"
        );
        let _ = writeln!(
            src,
            "// each rank reduces its slice locally, then an in-kernel AllReduce"
        );
        let _ = writeln!(
            src,
            "// over the already-established ring connections combines partials."
        );
        let _ = writeln!(
            src,
            "__device__ float embeddedAllReduce_{idx}_{i}(float partial, CommHandle* h) {{"
        );
        let _ = writeln!(src, "  partial = warpReduceSum(partial);");
        let _ = writeln!(src, "  __shared__ float warpPartials_{i}[32];");
        let _ = writeln!(
            src,
            "  if (laneId() == 0) warpPartials_{i}[warpId()] = partial;"
        );
        let _ = writeln!(src, "  __syncthreads();");
        let _ = writeln!(src, "  if (warpId() == 0) {{");
        let _ = writeln!(
            src,
            "    partial = warpReduceSum(warpPartials_{i}[laneId()]);"
        );
        let _ = writeln!(
            src,
            "    if (laneId() == 0) atomicAdd(&h->scratch[{i}], partial);"
        );
        let _ = writeln!(src, "  }}");
        let _ = writeln!(src, "  ringBarrier(h); // reuses established connections");
        let _ = writeln!(src, "  scalarRingAllReduce(h, &h->scratch[{i}]);");
        let _ = writeln!(src, "  ringBarrier(h);");
        let _ = writeln!(src, "  return h->scratch[{i}];");
        let _ = writeln!(src, "}}");
    }

    // Per-protocol run functions.
    for proto in ["LL", "LL128", "Simple"] {
        emit_protocol_runner(&mut src, idx, proto);
    }

    // The dispatching kernel.
    let _ = writeln!(src, "template <typename T>");
    let _ = writeln!(src, "__global__ void {kernel}(FusedArgs_{idx} args) {{");
    let _ = writeln!(src, "  CommHandle* h = commHandle(args.comm, blockIdx.x);");
    let _ = writeln!(src, "  const int nranks = h->nranks;");
    let _ = writeln!(src, "  // Phase 1: ring ReduceScatter over 2(k-1) steps;");
    let _ = writeln!(src, "  // Phase 2: fused computation on the owned slice;");
    let _ = writeln!(src, "  // Phase 3: ring AllGather of computed slices.");
    let _ = writeln!(src, "  switch (args.protocol) {{");
    for proto in ["LL", "LL128", "Simple"] {
        let _ = writeln!(
            src,
            "    case Proto{proto}: runProto{proto}_{idx}<T>(args, h, nranks); break;"
        );
    }
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}");

    let call = format!(
        "{kernel}<half><<<ctx->channels, NCCL_NTHREADS, 0, ctx->stream>>>(makeFusedArgs_{idx}(ctx, args));"
    );
    Ok(((format!("{kernel}.cu"), src), call))
}

/// A protocol-specific run function: the load/store access pattern and
/// pack type differ per protocol (§5.2: 64-bit packs for LL, 128-byte
/// shared-memory staging for LL128, direct global access for Simple).
fn emit_protocol_runner(src: &mut String, idx: usize, proto: &str) {
    let (pack, lines) = match proto {
        "LL" => ("uint64_t", "ll"),
        "LL128" => ("ulong2", "ll128"),
        _ => ("uint4", "simple"),
    };
    let _ = writeln!(src, "template <typename T>");
    let _ = writeln!(
        src,
        "__device__ void runProto{proto}_{idx}(FusedArgs_{idx}& args, CommHandle* h, int nranks) {{"
    );
    let _ = writeln!(src, "  using PackT = {pack};");
    let _ = writeln!(src, "  const int chunkSize = h->{lines}ChunkSize;");
    let _ = writeln!(
        src,
        "  // Connection setup: advance the flag epoch and wait for peers."
    );
    let _ = writeln!(src, "  if (threadIdx.x == 0) {{");
    let _ = writeln!(src, "    h->flag = h->opCount + 1;");
    let _ = writeln!(src, "    barrierArrive(h->peerBarrier);");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "  __syncthreads();");
    let _ = writeln!(
        src,
        "  for (int step = 0; step < 2 * (nranks - 1); ++step) {{"
    );
    let _ = writeln!(src, "    int chunk = ringChunk(h->ringPos, step, nranks);");
    let _ = writeln!(src, "    size_t off = (size_t)chunk * chunkSize;");
    match proto {
        "LL" => {
            let _ = writeln!(
                src,
                "    // LL: 8-byte packs, 4B data + 4B flag, no fences."
            );
            let _ = writeln!(
                src,
                "    for (size_t i = tid(); i < chunkSize; i += nthreads()) {{"
            );
            let _ = writeln!(
                src,
                "      PackT v = readLL(h->recvBuff, off + i, h->flag);"
            );
            let _ = writeln!(
                src,
                "      v = reduceLL<T>(v, loadLocal<PackT>(args.input, off + i));"
            );
            let _ = writeln!(src, "      if (step >= nranks - 1) {{");
            let _ = writeln!(src, "        computeEpilogue_{idx}<T, PackT>(&v, &args, off + i, h->gOff + off + i, h->rank, args.seed);");
            let _ = writeln!(src, "      }}");
            let _ = writeln!(src, "      writeLL(h->sendBuff, off + i, v, h->flag);");
            let _ = writeln!(src, "    }}");
        }
        "LL128" => {
            let _ = writeln!(
                src,
                "    // LL128: 128-byte lines staged through shared memory."
            );
            let _ = writeln!(src, "    __shared__ PackT stage[NCCL_LL128_SHMEM_ELEMS];");
            let _ = writeln!(
                src,
                "    for (size_t i = warpTile(); i < chunkSize; i += warpStride()) {{"
            );
            let _ = writeln!(src, "      loadLine128(h->recvBuff, off + i, stage);");
            let _ = writeln!(src, "      reduceLine128<T>(stage, args.input, off + i);");
            let _ = writeln!(src, "      if (step >= nranks - 1) {{");
            let _ = writeln!(src, "        computeEpilogue_{idx}<T, PackT>(stage, &args, off + i, h->gOff + off + i, h->rank, args.seed);");
            let _ = writeln!(src, "      }}");
            let _ = writeln!(
                src,
                "      storeLine128(h->sendBuff, off + i, stage, h->flag);"
            );
            let _ = writeln!(src, "    }}");
        }
        _ => {
            let _ = writeln!(
                src,
                "    // Simple: full-rate global loads/stores, fence per chunk."
            );
            let _ = writeln!(src, "    waitPeer(h, step);");
            let _ = writeln!(
                src,
                "    for (size_t i = tid(); i < chunkSize; i += nthreads()) {{"
            );
            let _ = writeln!(
                src,
                "      PackT v = loadGlobal<PackT>(h->recvBuff, off + i);"
            );
            let _ = writeln!(
                src,
                "      v = reduceSimple<T>(v, loadLocal<PackT>(args.input, off + i));"
            );
            let _ = writeln!(src, "      if (step >= nranks - 1) {{");
            let _ = writeln!(src, "        computeEpilogue_{idx}<T, PackT>(&v, &args, off + i, h->gOff + off + i, h->rank, args.seed);");
            let _ = writeln!(src, "      }}");
            let _ = writeln!(src, "      storeGlobal<PackT>(h->sendBuff, off + i, v);");
            let _ = writeln!(src, "    }}");
            let _ = writeln!(src, "    postPeer(h, step);");
        }
    }
    let _ = writeln!(src, "  }}");
    let _ = writeln!(
        src,
        "  // Drain: make the final AllGather stores visible system-wide."
    );
    let _ = writeln!(src, "  __threadfence_system();");
    let _ = writeln!(src, "  if (threadIdx.x == 0) {{");
    let _ = writeln!(src, "    h->opCount += 1;");
    let _ = writeln!(src, "    barrierWait(h->peerBarrier);");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}");
}

fn rs_name(p: &Program, members: &[VarId]) -> Result<String, CoreError> {
    for &m in members {
        if matches!(p.op(m)?, OpKind::ReduceScatter(..)) {
            return Ok(p.node(m)?.name().to_string());
        }
    }
    Err(CoreError::MalformedProgram(
        "fused collective without ReduceScatter".into(),
    ))
}

/// Emits a fused P2P send kernel (computation applied as data leaves,
/// §4) plus its host call.
pub(crate) fn emit_fused_send(
    p: &Program,
    members: &[VarId],
    idx: usize,
) -> Result<FileAndCall, CoreError> {
    let compute_members: Vec<VarId> = members
        .iter()
        .filter(|&&m| !matches!(p.op(m), Ok(OpKind::Send(..))))
        .copied()
        .collect();
    let kernel = format!("fusedSend_{idx}");
    let mut src = String::new();
    let _ = writeln!(
        src,
        "// Fused P2P send (§4): {} ops applied to outgoing data.",
        compute_members.len()
    );
    let _ = writeln!(src, "template <typename T>");
    let _ = writeln!(src, "__global__ void {kernel}(SendArgs_{idx} args) {{");
    let _ = writeln!(src, "  CommHandle* h = p2pHandle(args.comm, blockIdx.x);");
    let _ = writeln!(
        src,
        "  for (size_t idx = tid(); idx < args.count; idx += nthreads()) {{"
    );
    let _ = writeln!(src, "    size_t gidx = args.sliceOff + idx;");
    let loads = external_loads(p, &compute_members)?;
    for &l in &loads {
        let node = p.node(l)?;
        if matches!(node.op(), OpKind::Slice(_)) {
            let _ = writeln!(src, "    {}", op_expression(p, l)?);
        } else {
            let _ = writeln!(
                src,
                "    float x_{0} = toFloat(args.{0}[idx]);",
                node.name()
            );
        }
    }
    src.push_str(&compute_body(p, &compute_members, "    ")?);
    let last = compute_members
        .last()
        .copied()
        .ok_or_else(|| CoreError::MalformedProgram("fused send with no computation".into()))?;
    let _ = writeln!(
        src,
        "    sendElement<T>(h, idx, fromFloat<T>(x_{}));",
        p.node(last)?.name()
    );
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "  flushSend(h);");
    let _ = writeln!(src, "}}");
    let call = format!(
        "{kernel}<half><<<ctx->channels, NCCL_NTHREADS, 0, ctx->stream>>>(makeSendArgs_{idx}(ctx, args));"
    );
    Ok(((format!("{kernel}.cu"), src), call))
}
