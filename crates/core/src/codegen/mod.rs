//! The CUDA code generator (§5).
//!
//! CoCoNet's compiler emits, per scheduled program: (i) host calls to
//! collective/cuBLAS libraries for unfused operations, (ii) fused
//! pointwise kernels, (iii) fused-collective kernels specialized for
//! each NCCL protocol (§5.2), and (iv) overlapped CUTLASS-style
//! MatMul + chunked-collective kernel pairs with spin-lock
//! synchronization (§5.3).
//!
//! This reproduction emits the same *structure* as real CUDA source
//! text. The code is not compiled (there is no CUDA toolchain in the
//! loop); it exists because the paper's Table 3 measures generated
//! lines of code per schedule, and because the emitted text documents
//! precisely what each schedule's kernels do.

mod device;
mod overlap_gen;

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{Binding, CoreError, FuseKind, OpKind, Program, VarId};

pub(crate) use device::{emit_fused_collective, emit_fused_send, emit_pointwise_kernel};
pub(crate) use overlap_gen::emit_overlapped;

/// Generated CUDA source for a scheduled program.
#[derive(Clone, Debug)]
pub struct GeneratedCode {
    /// `(file name, source text)` pairs.
    pub files: Vec<(String, String)>,
}

impl GeneratedCode {
    /// Total non-empty source lines across all files (Table 3's
    /// "Generated CUDA" column).
    pub fn total_loc(&self) -> usize {
        self.files
            .iter()
            .map(|(_, src)| src.lines().filter(|l| !l.trim().is_empty()).count())
            .sum()
    }

    /// Concatenated source text.
    pub fn source(&self) -> String {
        let mut out = String::new();
        for (name, src) in &self.files {
            let _ = writeln!(out, "// ===== {name} =====");
            out.push_str(src);
            out.push('\n');
        }
        out
    }
}

/// Emits CUDA source for a scheduled program.
///
/// # Errors
///
/// Propagates program validation errors.
pub fn generate_cuda(p: &Program, binding: &Binding) -> Result<GeneratedCode, CoreError> {
    p.validate()?;
    let _ = binding; // sizes are runtime kernel arguments in the emitted code
    let mut files: Vec<(String, String)> = Vec::new();
    let mut host = String::new();
    let _ = writeln!(host, "// Host orchestration for `{}`.", p.name());
    let _ = writeln!(host, "#include \"coconet_runtime.cuh\"");
    let _ = writeln!(
        host,
        "void {}(CoconetContext* ctx, TensorArgs* args) {{",
        p.name()
    );

    let topo = p.topo_order();
    let in_fusion: HashSet<VarId> = p
        .fusion_groups()
        .iter()
        .flat_map(|g| g.members.iter().copied())
        .collect();
    let in_overlap: HashSet<VarId> = p
        .overlap_groups()
        .iter()
        .flat_map(|g| g.members.iter().copied())
        .collect();

    // Overlap groups emit one orchestration file each.
    for (i, og) in p.overlap_groups().iter().enumerate() {
        let (file, call) = emit_overlapped(p, og, i)?;
        files.push(file);
        let _ = writeln!(host, "  {call}");
    }

    // Fusion groups not consumed by an overlap emit kernels.
    for (i, g) in p.fusion_groups().iter().enumerate() {
        if g.members.iter().any(|m| in_overlap.contains(m)) {
            continue;
        }
        let (file, call) = match g.kind {
            FuseKind::Compute => emit_pointwise_kernel(p, &g.members, i)?,
            FuseKind::AllReduce => emit_fused_collective(p, &g.members, i)?,
            FuseKind::Send => emit_fused_send(p, &g.members, i)?,
        };
        files.push(file);
        let _ = writeln!(host, "  {call}");
    }

    // Remaining singletons: host library calls or tiny kernels.
    for &v in &topo {
        if in_fusion.contains(&v) || in_overlap.contains(&v) {
            continue;
        }
        let node = p.node(v)?;
        let name = node.name();
        match node.op() {
            OpKind::Input | OpKind::ConstScalar(_) | OpKind::Slice(_) => {}
            OpKind::Conv2d(a, w, params) => {
                let _ = writeln!(
                    host,
                    "  CUDNNCHECK(cudnnConvolutionForward(ctx->cudnn, {}, {}, /*stride=*/{}, /*pad=*/{}, out_{name}));",
                    p.node(*a)?.name(),
                    p.node(*w)?.name(),
                    params.stride,
                    params.padding
                );
            }
            OpKind::MatMul(a, w) => {
                let _ = writeln!(
                    host,
                    "  CUBLASCHECK(cublasGemmEx(ctx->cublas, {}, {}, out_{name}));",
                    p.node(*a)?.name(),
                    p.node(*w)?.name()
                );
            }
            OpKind::AllReduce(op, x) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclAllReduce({0}, out_{name}, count_{name}, {1}, ncclOp({2:?}), ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?,
                    op
                );
            }
            OpKind::ReduceScatter(op, x) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclReduceScatter({0}, out_{name}, count_{name}, {1}, ncclOp({2:?}), ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?,
                    op
                );
            }
            OpKind::AllGather(x) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclAllGather({0}, out_{name}, count_{name}, {1}, ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?
                );
            }
            OpKind::Broadcast(x, root) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclBroadcast({0}, out_{name}, count_{name}, {1}, {root}, ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?
                );
            }
            OpKind::Reduce(op, x, root) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclReduce({0}, out_{name}, count_{name}, {1}, ncclOp({2:?}), {root}, ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?,
                    op
                );
            }
            OpKind::Send(x, _) => {
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclSend({0}, count_{name}, {1}, peerRank(ctx), ctx->comm, ctx->stream));",
                    p.node(*x)?.name(),
                    dtype_name(p, v)?
                );
                let _ = writeln!(
                    host,
                    "  NCCLCHECK(ncclRecv(out_{name}, count_{name}, {}, prevPeerRank(ctx), ctx->comm, ctx->stream));",
                    dtype_name(p, v)?
                );
            }
            op if op.is_pointwise() => {
                let (file, call) = emit_pointwise_kernel(p, &[v], 1000 + v.index())?;
                files.push(file);
                let _ = writeln!(host, "  {call}");
            }
            _ => {}
        }
    }
    let _ = writeln!(host, "  CUDACHECK(cudaStreamSynchronize(ctx->stream));");
    let _ = writeln!(host, "}}");
    files.push((format!("{}_host.cu", p.name()), host));
    Ok(GeneratedCode { files })
}

pub(crate) fn dtype_name(p: &Program, v: VarId) -> Result<&'static str, CoreError> {
    Ok(match p.ty(v)?.dtype {
        crate::DType::F16 => "ncclFloat16",
        crate::DType::F32 => "ncclFloat32",
    })
}

pub(crate) fn cuda_type(p: &Program, v: VarId) -> Result<&'static str, CoreError> {
    Ok(match p.ty(v)?.dtype {
        crate::DType::F16 => "half",
        crate::DType::F32 => "float",
    })
}

/// Checks that `{` and `}` balance in a source string (structural
/// sanity of generated code; exercised by tests).
pub fn braces_balanced(src: &str) -> bool {
    let mut depth: i64 = 0;
    for c in src.chars() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::{fuse_all_reduce, overlap, reorder_all_gather, split_all_reduce};
    use crate::{DType, Layout, ReduceOp};

    fn figure3() -> (Program, Vec<VarId>) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.1).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        (p, vec![layer, sum, biased, d, out])
    }

    fn binding() -> Binding {
        Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072)
    }

    #[test]
    fn baseline_generates_host_calls_and_small_kernels() {
        let (p, _) = figure3();
        let code = generate_cuda(&p, &binding()).unwrap();
        let src = code.source();
        assert!(src.contains("cublasGemmEx"));
        assert!(src.contains("ncclAllReduce"));
        assert!(braces_balanced(&src), "unbalanced braces:\n{src}");
        // Baseline: small glue + three pointwise kernels.
        let loc = code.total_loc();
        assert!((20..200).contains(&loc), "loc = {loc}");
    }

    #[test]
    fn fused_schedule_generates_more_code_than_unfused() {
        let (p_base, _) = figure3();
        let base_loc = generate_cuda(&p_base, &binding()).unwrap().total_loc();

        let (mut p, vars) = figure3();
        let (sum, biased, d, out) = (vars[1], vars[2], vars[3], vars[4]);
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag]).unwrap();
        let fused = generate_cuda(&p, &binding()).unwrap();
        let src = fused.source();
        // The fused collective specializes all three protocols (§5.2).
        assert!(src.contains("ProtoLL"));
        assert!(src.contains("ProtoLL128"));
        assert!(src.contains("ProtoSimple"));
        assert!(braces_balanced(&src));
        assert!(
            fused.total_loc() > base_loc,
            "fused {} !> base {base_loc}",
            fused.total_loc()
        );
        // Table 3's fused kernels are in the 100-250 LoC range.
        assert!(
            (100..400).contains(&fused.total_loc()),
            "loc = {}",
            fused.total_loc()
        );
    }

    #[test]
    fn overlapped_schedule_generates_about_2k_lines() {
        let (mut p, vars) = figure3();
        let (layer, sum, biased, d, out) = (vars[0], vars[1], vars[2], vars[3], vars[4]);
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag]).unwrap();
        overlap(&mut p, &[layer, rs]).unwrap();
        let code = generate_cuda(&p, &binding()).unwrap();
        let src = code.source();
        assert!(braces_balanced(&src), "unbalanced braces");
        assert!(src.contains("cutlass"), "missing CUTLASS-style GEMM");
        assert!(src.contains("spin_wait"), "missing spin-lock sync (§5.3)");
        // "the implementation of above overlapping optimization
        // contains ~2k lines of CUDA code" (§1) — the hand-written
        // version including NCCL-internal changes. Our generator emits
        // the same structure at the same order of magnitude.
        let loc = code.total_loc();
        assert!((1000..3000).contains(&loc), "loc = {loc}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (p, _) = figure3();
        let a = generate_cuda(&p, &binding()).unwrap().source();
        let b = generate_cuda(&p, &binding()).unwrap().source();
        assert_eq!(a, b);
    }

    #[test]
    fn braces_checker() {
        assert!(braces_balanced("int f() { if (x) { } }"));
        assert!(!braces_balanced("{ {"));
        assert!(!braces_balanced("} {"));
    }
}
