//! # coconet-core
//!
//! The CoCoNet DSL, transformations, autotuner, and code generator.

#![warn(missing_docs)]

pub mod autotune;
pub mod codegen;
mod dim;
mod error;
mod graph;
mod infer;
mod layout;
mod lower;
mod op;
mod plan;
pub mod plancache;
mod types;
pub mod xform;

pub use coconet_compress::WireFormat;
pub use coconet_tensor::{Conv2dParams, DType, ReduceOp};

pub use autotune::{structural_hash, Autotuner, Candidate, PlanEvaluator, TuneReport};
pub use codegen::{braces_balanced, generate_cuda, GeneratedCode};
pub use dim::{Binding, Dim, SymShape};
pub use error::CoreError;
pub use graph::{FuseKind, FusionGroup, Node, OverlapGroup, Program};
pub use layout::{Layout, SliceDim};
pub use lower::lower;
pub use op::{BinaryOp, OpKind, PeerSelector, UnaryOp, VarId};
pub use plan::{
    CollAlgo, CollKind, CollectiveStep, CommConfig, CommSched, ExecPlan, FixedStep,
    FusedCollectiveStep, KernelStep, MatMulStep, OverlapStage, OverlappedStep, Protocol,
    ScatterInfo, SendRecvStep, Step, XferSched,
};
pub use plancache::{CacheStats, PlanCache, PlanKey};
pub use types::TensorType;
