//! Distributed tensor layouts (§2.1 of the paper).
//!
//! A CoCoNet tensor extends a framework tensor with a *layout*
//! describing how its data is allocated across the ranks of a group:
//!
//! - **sliced** — equally distributed along a dimension, `RANK`
//!   identifying the slice;
//! - **replicated** — same full value on every rank;
//! - **local** — same shape on every rank but rank-specific values
//!   (e.g. the partial products of a model-parallel MatMul).

use std::fmt;

/// Which dimension a sliced tensor is distributed along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SliceDim {
    /// Sliced along a specific tensor dimension (weights in Figure 3
    /// are `Sliced(0)`, activations `Sliced(2)`).
    Dim(usize),
    /// Sliced along the flattened element range — the layout
    /// `ReduceScatter` produces (NCCL scatters contiguous element
    /// ranges regardless of logical shape).
    Flat,
}

impl fmt::Display for SliceDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceDim::Dim(d) => write!(f, "{d}"),
            SliceDim::Flat => write!(f, "flat"),
        }
    }
}

/// The distributed layout of a tensor across its group (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Equally distributed along a dimension; `RANK` identifies the
    /// slice.
    Sliced(SliceDim),
    /// Identical full copy on every rank.
    Replicated,
    /// Full shape on every rank, rank-specific values.
    Local,
}

impl Layout {
    /// Convenience constructor: sliced along tensor dimension `d`.
    pub const fn sliced(d: usize) -> Layout {
        Layout::Sliced(SliceDim::Dim(d))
    }

    /// Convenience constructor: sliced along the flat element range.
    pub const fn sliced_flat() -> Layout {
        Layout::Sliced(SliceDim::Flat)
    }

    /// Whether this layout stores only `1/group_size` of the elements
    /// per rank.
    pub const fn is_sliced(self) -> bool {
        matches!(self, Layout::Sliced(_))
    }

    /// Per-rank element count for a tensor of `numel` total elements
    /// on a group of `group_size` ranks.
    pub fn local_numel(self, numel: u64, group_size: u64) -> u64 {
        match self {
            Layout::Sliced(_) => numel / group_size,
            Layout::Replicated | Layout::Local => numel,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Sliced(d) => write!(f, "Sliced({d})"),
            Layout::Replicated => write!(f, "Replicated"),
            Layout::Local => write!(f, "Local"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert_eq!(Layout::sliced(2), Layout::Sliced(SliceDim::Dim(2)));
        assert_eq!(Layout::sliced_flat(), Layout::Sliced(SliceDim::Flat));
        assert!(Layout::sliced(0).is_sliced());
        assert!(!Layout::Replicated.is_sliced());
        assert!(!Layout::Local.is_sliced());
    }

    #[test]
    fn local_numel() {
        assert_eq!(Layout::sliced(0).local_numel(64, 4), 16);
        assert_eq!(Layout::Replicated.local_numel(64, 4), 64);
        assert_eq!(Layout::Local.local_numel(64, 4), 64);
    }

    #[test]
    fn display() {
        assert_eq!(Layout::sliced(2).to_string(), "Sliced(2)");
        assert_eq!(Layout::sliced_flat().to_string(), "Sliced(flat)");
        assert_eq!(Layout::Replicated.to_string(), "Replicated");
        assert_eq!(Layout::Local.to_string(), "Local");
    }
}
