//! Operations of the DSL (Table 1 of the paper).
//!
//! Operations are classified as *local computations* (pointwise ops,
//! MatMul, Dropout, norms) and *cross-rank communication operations*
//! (AllReduce, AllGather, ReduceScatter, Reduce, Broadcast, P2P
//! send-recv).

use std::fmt;

pub use coconet_tensor::{Conv2dParams, ReduceOp};

/// A handle to a node (an intermediate tensor, the paper's `Var`) in a
/// program's data-flow graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of this variable in its program's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Unary pointwise operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Elementwise square root (`Sqrt` in Table 1).
    Sqrt,
    /// Elementwise hyperbolic tangent activation.
    Tanh,
    /// Elementwise rectified linear unit activation.
    Relu,
    /// Elementwise negation.
    Neg,
}

impl UnaryOp {
    /// Applies the operation to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Neg => -x,
        }
    }

    /// DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Sqrt => "Sqrt",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Relu => "ReLU",
            UnaryOp::Neg => "Neg",
        }
    }
}

/// Binary pointwise operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise power (`Pow` in Table 1).
    Pow,
}

impl BinaryOp {
    /// Applies the operation to a pair of values.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Pow => a.powf(b),
        }
    }

    /// Infix spelling for pretty-printing (`Pow` prints as a call).
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Pow => "Pow",
        }
    }
}

/// Destination selector for point-to-point sends.
///
/// Pipeline parallelism (§4) sends from rank `(g, i)` to rank
/// `(g+1, i)` — the paper's `GroupRank(GROUP + 1, RANK)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PeerSelector {
    /// The same group-relative rank in the next process group.
    NextGroupSameRank,
}

impl fmt::Display for PeerSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerSelector::NextGroupSameRank => write!(f, "GroupRank(GROUP+1, RANK)"),
        }
    }
}

/// An operation node in the data-flow graph.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// A declared input tensor (the leaves of the DFG).
    Input,
    /// A compile-time scalar constant (e.g. `1 - beta1`).
    ConstScalar(f64),
    /// Unary pointwise computation.
    Unary(UnaryOp, VarId),
    /// Binary pointwise computation with broadcasting.
    Binary(BinaryOp, VarId, VarId),
    /// Matrix multiplication `a @ w` (`w` must be 2-D).
    MatMul(VarId, VarId),
    /// 2-D convolution `conv2d(x, w)` with NCHW input and OIHW weights
    /// (Table 1 lists Convolution among the layers).
    Conv2d(VarId, VarId, Conv2dParams),
    /// Dropout activation with drop probability `p`.
    Dropout(VarId, f64),
    /// In-place update of a declared input tensor (Table 1's `Update`):
    /// the first operand is the target input, the second the new value.
    Update(VarId, VarId),
    /// L2 norm of the (possibly sliced) operand, yielding a replicated
    /// scalar. For sliced operands each rank reduces locally and the
    /// generated kernel embeds a scalar AllReduce (§5.2,
    /// "Tensor Reduction").
    Norm(VarId),
    /// Full reduction of the operand to a replicated scalar
    /// (Table 1's `ReduceTensor`).
    ReduceTensor(ReduceOp, VarId),
    /// Takes the executing rank's slice of a replicated tensor
    /// (introduced by the `reorder` transformation, e.g. `Slice(r)`).
    Slice(VarId),
    /// AllReduce collective: local tensors in, replicated tensor out.
    AllReduce(ReduceOp, VarId),
    /// ReduceScatter collective: local tensors in, flat-sliced out.
    ReduceScatter(ReduceOp, VarId),
    /// AllGather collective: sliced tensor in, replicated out.
    AllGather(VarId),
    /// Broadcast from a group-relative root rank.
    Broadcast(VarId, usize),
    /// Reduce to a group-relative root rank (output local to root).
    Reduce(ReduceOp, VarId, usize),
    /// P2P send to another group; the value materializes there.
    Send(VarId, PeerSelector),
}

impl OpKind {
    /// The operands this node reads.
    pub fn inputs(&self) -> Vec<VarId> {
        match self {
            OpKind::Input | OpKind::ConstScalar(_) => vec![],
            OpKind::Unary(_, a)
            | OpKind::Dropout(a, _)
            | OpKind::Norm(a)
            | OpKind::ReduceTensor(_, a)
            | OpKind::Slice(a)
            | OpKind::AllReduce(_, a)
            | OpKind::ReduceScatter(_, a)
            | OpKind::AllGather(a)
            | OpKind::Broadcast(a, _)
            | OpKind::Reduce(_, a, _)
            | OpKind::Send(a, _) => vec![*a],
            OpKind::Binary(_, a, b)
            | OpKind::MatMul(a, b)
            | OpKind::Conv2d(a, b, _)
            | OpKind::Update(a, b) => {
                vec![*a, *b]
            }
        }
    }

    /// Rewrites every operand equal to `from` into `to`.
    pub fn replace_input(&mut self, from: VarId, to: VarId) {
        let subst = |v: &mut VarId| {
            if *v == from {
                *v = to;
            }
        };
        match self {
            OpKind::Input | OpKind::ConstScalar(_) => {}
            OpKind::Unary(_, a)
            | OpKind::Dropout(a, _)
            | OpKind::Norm(a)
            | OpKind::ReduceTensor(_, a)
            | OpKind::Slice(a)
            | OpKind::AllReduce(_, a)
            | OpKind::ReduceScatter(_, a)
            | OpKind::AllGather(a)
            | OpKind::Broadcast(a, _)
            | OpKind::Reduce(_, a, _)
            | OpKind::Send(a, _) => subst(a),
            OpKind::Binary(_, a, b)
            | OpKind::MatMul(a, b)
            | OpKind::Conv2d(a, b, _)
            | OpKind::Update(a, b) => {
                subst(a);
                subst(b);
            }
        }
    }

    /// Whether this is a cross-rank communication operation.
    pub fn is_communication(&self) -> bool {
        matches!(
            self,
            OpKind::AllReduce(..)
                | OpKind::ReduceScatter(..)
                | OpKind::AllGather(..)
                | OpKind::Broadcast(..)
                | OpKind::Reduce(..)
                | OpKind::Send(..)
        )
    }

    /// Whether this is a pointwise local computation (fusable into a
    /// single kernel or into a fused collective).
    pub fn is_pointwise(&self) -> bool {
        matches!(
            self,
            OpKind::Unary(..)
                | OpKind::Binary(..)
                | OpKind::Dropout(..)
                | OpKind::Update(..)
                | OpKind::Slice(..)
                | OpKind::Norm(..)
                | OpKind::ReduceTensor(..)
                | OpKind::ConstScalar(_)
        )
    }

    /// Short mnemonic used in printouts and generated-code names.
    pub fn mnemonic(&self) -> String {
        match self {
            OpKind::Input => "Tensor".into(),
            OpKind::ConstScalar(v) => format!("Const({v})"),
            OpKind::Unary(op, _) => op.name().into(),
            OpKind::Binary(op, _, _) => op.symbol().into(),
            OpKind::MatMul(..) => "MatMul".into(),
            OpKind::Conv2d(..) => "Conv2d".into(),
            OpKind::Dropout(..) => "Dropout".into(),
            OpKind::Update(..) => "Update".into(),
            OpKind::Norm(_) => "Norm".into(),
            OpKind::ReduceTensor(op, _) => format!("ReduceTensor({op})"),
            OpKind::Slice(_) => "Slice".into(),
            OpKind::AllReduce(op, _) => format!("AllReduce({op})"),
            OpKind::ReduceScatter(op, _) => format!("ReduceScatter({op})"),
            OpKind::AllGather(_) => "AllGather".into(),
            OpKind::Broadcast(_, r) => format!("Broadcast(root={r})"),
            OpKind::Reduce(op, _, r) => format!("Reduce({op}, root={r})"),
            OpKind::Send(_, peer) => format!("Send({peer})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_apply() {
        assert_eq!(UnaryOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnaryOp::Relu.apply(-2.0), 0.0);
        assert_eq!(UnaryOp::Neg.apply(2.0), -2.0);
        assert!((UnaryOp::Tanh.apply(0.5) - 0.5f32.tanh()).abs() < 1e-7);
    }

    #[test]
    fn binary_apply() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinaryOp::Pow.apply(2.0, 3.0), 8.0);
    }

    #[test]
    fn inputs_and_replace() {
        let a = VarId(1);
        let b = VarId(2);
        let mut op = OpKind::Binary(BinaryOp::Add, a, b);
        assert_eq!(op.inputs(), vec![a, b]);
        op.replace_input(a, VarId(9));
        assert_eq!(op.inputs(), vec![VarId(9), b]);
        assert_eq!(OpKind::Input.inputs(), vec![]);
    }

    #[test]
    fn classification() {
        let v = VarId(0);
        assert!(OpKind::AllReduce(ReduceOp::Sum, v).is_communication());
        assert!(!OpKind::AllReduce(ReduceOp::Sum, v).is_pointwise());
        assert!(OpKind::Dropout(v, 0.1).is_pointwise());
        assert!(!OpKind::MatMul(v, v).is_pointwise());
        assert!(!OpKind::MatMul(v, v).is_communication());
        assert!(OpKind::Send(v, PeerSelector::NextGroupSameRank).is_communication());
    }

    #[test]
    fn mnemonics() {
        let v = VarId(0);
        assert_eq!(
            OpKind::AllReduce(ReduceOp::Sum, v).mnemonic(),
            "AllReduce(+)"
        );
        assert_eq!(OpKind::MatMul(v, v).mnemonic(), "MatMul");
        assert_eq!(
            OpKind::Send(v, PeerSelector::NextGroupSameRank).mnemonic(),
            "Send(GroupRank(GROUP+1, RANK))"
        );
    }
}
