//! Symbolic dimensions and bindings.
//!
//! Programs in the DSL are written against symbolic sizes (`B`, `S`,
//! `H` in Figure 3 of the paper) and bound to concrete values when a
//! schedule is evaluated or executed.

use std::collections::BTreeMap;
use std::fmt;

use coconet_tensor::Shape;

use crate::CoreError;

/// One extent of a symbolic shape: a constant or a named symbol.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A compile-time constant extent.
    Const(u64),
    /// A named symbolic extent resolved by a [`Binding`].
    Sym(String),
}

impl Dim {
    /// A symbolic dimension with the given name.
    pub fn sym(name: impl Into<String>) -> Dim {
        Dim::Sym(name.into())
    }

    /// Resolves the dimension against a binding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnboundSymbol`] if the symbol is missing.
    pub fn eval(&self, binding: &Binding) -> Result<u64, CoreError> {
        match self {
            Dim::Const(v) => Ok(*v),
            Dim::Sym(name) => binding
                .get(name)
                .ok_or_else(|| CoreError::UnboundSymbol(name.clone())),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Const(v) => write!(f, "{v}"),
            Dim::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Dim {
    fn from(v: u64) -> Dim {
        Dim::Const(v)
    }
}

impl From<&str> for Dim {
    fn from(s: &str) -> Dim {
        Dim::Sym(s.to_string())
    }
}

/// A symbolic tensor shape.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymShape {
    dims: Vec<Dim>,
}

impl SymShape {
    /// Creates a shape from symbolic dims.
    pub fn new(dims: Vec<Dim>) -> SymShape {
        SymShape { dims }
    }

    /// The scalar (rank 0) shape.
    pub fn scalar() -> SymShape {
        SymShape { dims: Vec::new() }
    }

    /// The symbolic dims.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Resolves to a concrete [`Shape`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnboundSymbol`] on a missing symbol.
    pub fn eval(&self, binding: &Binding) -> Result<Shape, CoreError> {
        let dims = self
            .dims
            .iter()
            .map(|d| d.eval(binding).map(|v| v as usize))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Shape::new(dims))
    }

    /// Total element count under a binding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnboundSymbol`] on a missing symbol.
    pub fn numel(&self, binding: &Binding) -> Result<u64, CoreError> {
        self.dims
            .iter()
            .map(|d| d.eval(binding))
            .try_fold(1u64, |acc, d| d.map(|d| acc * d))
    }

    /// Symbolic broadcast under PyTorch semantics. Symbols broadcast
    /// only against equal symbols, constants against constants or 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeIncompatible`] when a dimension pair
    /// cannot be reconciled symbolically.
    pub fn broadcast(&self, other: &SymShape) -> Result<SymShape, CoreError> {
        let rank = self.rank().max(other.rank());
        let one = Dim::Const(1);
        let mut dims = Vec::with_capacity(rank);
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                &one
            } else {
                &self.dims[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                &one
            } else {
                &other.dims[i - (rank - other.rank())]
            };
            let d = if a == b {
                a.clone()
            } else if *a == one {
                b.clone()
            } else if *b == one {
                a.clone()
            } else {
                return Err(CoreError::ShapeIncompatible {
                    lhs: self.to_string(),
                    rhs: other.to_string(),
                });
            };
            dims.push(d);
        }
        Ok(SymShape::new(dims))
    }

    /// Whether, right-aligned against `target`, this shape has an
    /// extent greater than 1 (or a symbol) at `target` dimension `dim`.
    /// Used to decide whether a replicated operand must be `Slice`d
    /// when computations are reordered past an AllGather (§3.2).
    pub fn covers_dim(&self, target_rank: usize, dim: usize) -> bool {
        let offset = target_rank.saturating_sub(self.rank());
        if dim < offset {
            // The operand has no extent here: it broadcasts (extent 1).
            return false;
        }
        self.dims
            .get(dim - offset)
            .is_some_and(|d| *d != Dim::Const(1))
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl<D: Into<Dim>, const N: usize> From<[D; N]> for SymShape {
    fn from(dims: [D; N]) -> SymShape {
        SymShape::new(dims.into_iter().map(Into::into).collect())
    }
}

/// Concrete values for symbols plus the execution geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    symbols: BTreeMap<String, u64>,
    /// Number of ranks in each process group executing the program.
    pub group_size: usize,
    /// Number of process groups (1 except for pipeline parallelism).
    pub num_groups: usize,
}

impl Binding {
    /// A binding for a single group of `group_size` ranks.
    pub fn new(group_size: usize) -> Binding {
        Binding {
            symbols: BTreeMap::new(),
            group_size,
            num_groups: 1,
        }
    }

    /// Sets the number of process groups.
    pub fn with_groups(mut self, num_groups: usize) -> Binding {
        self.num_groups = num_groups;
        self
    }

    /// Binds `name` to `value` (builder style).
    pub fn bind(mut self, name: impl Into<String>, value: u64) -> Binding {
        self.symbols.insert(name.into(), value);
        self
    }

    /// Looks up a symbol.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All bound symbols in name order (the map is sorted), for
    /// fingerprinting a binding into a plan-cache key.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Total number of ranks across all groups.
    pub fn world_size(&self) -> usize {
        self.group_size * self.num_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_eval() {
        let b = Binding::new(4).bind("H", 1024);
        assert_eq!(Dim::Const(8).eval(&b).unwrap(), 8);
        assert_eq!(Dim::sym("H").eval(&b).unwrap(), 1024);
        assert!(matches!(
            Dim::sym("missing").eval(&b),
            Err(CoreError::UnboundSymbol(_))
        ));
    }

    #[test]
    fn shape_eval_and_numel() {
        let b = Binding::new(4).bind("B", 8).bind("S", 128).bind("H", 64);
        let s: SymShape = ["B", "S", "H"].into();
        assert_eq!(s.eval(&b).unwrap().dims(), &[8, 128, 64]);
        assert_eq!(s.numel(&b).unwrap(), 8 * 128 * 64);
        assert_eq!(s.to_string(), "[B,S,H]");
        assert_eq!(SymShape::scalar().numel(&b).unwrap(), 1);
    }

    #[test]
    fn symbolic_broadcast() {
        let a: SymShape = ["B", "S", "H"].into();
        let bias: SymShape = ["H"].into();
        assert_eq!(a.broadcast(&bias).unwrap(), a);
        let one: SymShape = [Dim::Const(1)].into();
        assert_eq!(a.broadcast(&one).unwrap(), a);
        let other: SymShape = ["X"].into();
        assert!(a.broadcast(&other).is_err());
    }

    #[test]
    fn covers_dim_right_aligned() {
        let full: SymShape = ["B", "S", "H"].into();
        let bias: SymShape = ["H"].into();
        // Against a rank-3 target, [H] covers only dim 2.
        assert!(!bias.covers_dim(3, 0));
        assert!(!bias.covers_dim(3, 1));
        assert!(bias.covers_dim(3, 2));
        // The full shape covers every dim.
        for d in 0..3 {
            assert!(full.covers_dim(3, d));
        }
        // A [1] operand covers nothing.
        let one: SymShape = [Dim::Const(1)].into();
        assert!(!one.covers_dim(3, 2));
    }

    #[test]
    fn binding_geometry() {
        let b = Binding::new(8).with_groups(2);
        assert_eq!(b.group_size, 8);
        assert_eq!(b.world_size(), 16);
    }
}
