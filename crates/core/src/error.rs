//! Error type for the DSL, transformations, and lowering.

use std::error::Error;
use std::fmt;

use coconet_tensor::TensorError;

/// Errors produced while building, transforming, or lowering a program.
///
/// Transformation errors correspond to the validity rules of §3 of the
/// paper: `CoCoNet automatically checks the validity of each
/// transformation based on these rules and throws an error for an
/// invalid transformation.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A symbolic dimension had no value in the binding.
    UnboundSymbol(String),
    /// Two symbolic shapes could not be broadcast/unified.
    ShapeIncompatible {
        /// Left-hand shape (display form).
        lhs: String,
        /// Right-hand shape (display form).
        rhs: String,
    },
    /// The layouts of an operation's inputs are not compatible with the
    /// operation's layout rules (§2.2).
    LayoutIncompatible {
        /// The operation being typed.
        op: String,
        /// Explanation of the conflict.
        detail: String,
    },
    /// A variable id did not refer to a live node of this program.
    UnknownVar(u32),
    /// An operation that required a specific node kind got another.
    ExpectedOp {
        /// What was required (e.g. "AllReduce").
        expected: String,
        /// What was found.
        found: String,
    },
    /// A transformation's validity rule failed.
    InvalidTransform {
        /// The transformation (e.g. "reorder").
        transform: String,
        /// Why the rule failed.
        detail: String,
    },
    /// A dimension index was out of range.
    DimOutOfRange {
        /// Offending dimension.
        dim: usize,
        /// Rank of the shape.
        rank: usize,
    },
    /// Program inputs/outputs were inconsistent with the graph.
    MalformedProgram(String),
    /// A concrete size did not divide evenly across ranks.
    IndivisibleSize {
        /// What was being divided.
        what: String,
        /// Total elements/extent.
        total: u64,
        /// Number of parts required.
        parts: u64,
    },
    /// The autotuner finished without a single viable candidate (no
    /// explored schedule lowered under any configuration).
    NoViableSchedule,
    /// An underlying tensor operation failed (e.g. while folding
    /// constants or materializing a concrete shape).
    Tensor(TensorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnboundSymbol(name) => write!(f, "unbound symbolic dimension `{name}`"),
            CoreError::ShapeIncompatible { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} are not compatible")
            }
            CoreError::LayoutIncompatible { op, detail } => {
                write!(f, "layouts incompatible for {op}: {detail}")
            }
            CoreError::UnknownVar(id) => write!(f, "unknown or deleted variable v{id}"),
            CoreError::ExpectedOp { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            CoreError::InvalidTransform { transform, detail } => {
                write!(f, "invalid {transform} transformation: {detail}")
            }
            CoreError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank {rank}")
            }
            CoreError::MalformedProgram(detail) => write!(f, "malformed program: {detail}"),
            CoreError::IndivisibleSize { what, total, parts } => {
                write!(
                    f,
                    "{what} of size {total} does not divide into {parts} parts"
                )
            }
            CoreError::NoViableSchedule => {
                write!(f, "autotuner explored no viable schedule")
            }
            CoreError::Tensor(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CoreError {
    // Transparent wrapping: Display forwards to the tensor error, so
    // source() skips it to avoid double-reporting in walked chains.
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tensor(e) => e.source(),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> CoreError {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_well_formed() {
        let errors = [
            CoreError::UnboundSymbol("B".into()),
            CoreError::ShapeIncompatible {
                lhs: "[B]".into(),
                rhs: "[S]".into(),
            },
            CoreError::LayoutIncompatible {
                op: "MatMul".into(),
                detail: "local x sliced".into(),
            },
            CoreError::UnknownVar(3),
            CoreError::ExpectedOp {
                expected: "AllReduce".into(),
                found: "MatMul".into(),
            },
            CoreError::InvalidTransform {
                transform: "reorder".into(),
                detail: "operation is not sliceable".into(),
            },
            CoreError::DimOutOfRange { dim: 4, rank: 2 },
            CoreError::MalformedProgram("dangling output".into()),
            CoreError::IndivisibleSize {
                what: "tensor".into(),
                total: 10,
                parts: 3,
            },
            CoreError::NoViableSchedule,
            CoreError::from(TensorError::ConcatMismatch),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
