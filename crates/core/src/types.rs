//! The distributed tensor type of DSL values.

use std::fmt;

use coconet_tensor::DType;

use crate::{Binding, CoreError, Layout, SymShape};

/// The inferred type of a DSL value: element type, symbolic global
/// shape, distributed layout, and which process group it lives on
/// (expressed as a shift from the defining group — a `Send` moves a
/// value one group downstream).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TensorType {
    /// Element type.
    pub dtype: DType,
    /// *Global* (undistributed) symbolic shape. Sliced tensors store
    /// the full shape; the per-rank extent is derived from the layout.
    pub shape: SymShape,
    /// Distributed layout across the group.
    pub layout: Layout,
    /// How many groups downstream of the defining group this value
    /// lives (0 for everything except the results of P2P sends).
    pub group_shift: u32,
}

impl TensorType {
    /// A new type with zero group shift.
    pub fn new(dtype: DType, shape: SymShape, layout: Layout) -> TensorType {
        TensorType {
            dtype,
            shape,
            layout,
            group_shift: 0,
        }
    }

    /// A replicated scalar type.
    pub fn scalar(dtype: DType) -> TensorType {
        TensorType::new(dtype, SymShape::scalar(), Layout::Replicated)
    }

    /// Global element count under a binding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnboundSymbol`] on a missing symbol.
    pub fn numel(&self, binding: &Binding) -> Result<u64, CoreError> {
        self.shape.numel(binding)
    }

    /// Per-rank element count under a binding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnboundSymbol`] on a missing symbol and
    /// [`CoreError::IndivisibleSize`] when a sliced tensor does not
    /// divide evenly across the group.
    pub fn local_numel(&self, binding: &Binding) -> Result<u64, CoreError> {
        let total = self.numel(binding)?;
        let k = binding.group_size as u64;
        if self.layout.is_sliced() && total % k != 0 {
            return Err(CoreError::IndivisibleSize {
                what: format!("sliced tensor {}", self.shape),
                total,
                parts: k,
            });
        }
        Ok(self.layout.local_numel(total, k))
    }

    /// Per-rank storage in bytes under a binding.
    ///
    /// # Errors
    ///
    /// See [`TensorType::local_numel`].
    pub fn local_bytes(&self, binding: &Binding) -> Result<u64, CoreError> {
        Ok(self.local_numel(binding)? * self.dtype.size_bytes() as u64)
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.dtype, self.shape, self.layout)?;
        if self.group_shift > 0 {
            write!(f, "@GROUP+{}", self.group_shift)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_local() {
        let b = Binding::new(4).bind("H", 64);
        let t = TensorType::new(DType::F16, ["H", "H"].into(), Layout::sliced(0));
        assert_eq!(t.numel(&b).unwrap(), 4096);
        assert_eq!(t.local_numel(&b).unwrap(), 1024);
        assert_eq!(t.local_bytes(&b).unwrap(), 2048);

        let r = TensorType::new(DType::F32, ["H"].into(), Layout::Replicated);
        assert_eq!(r.local_numel(&b).unwrap(), 64);
        assert_eq!(r.local_bytes(&b).unwrap(), 256);
    }

    #[test]
    fn indivisible_slice_rejected() {
        let b = Binding::new(3).bind("H", 64);
        let t = TensorType::new(DType::F16, ["H"].into(), Layout::sliced(0));
        assert!(matches!(
            t.local_numel(&b),
            Err(CoreError::IndivisibleSize { .. })
        ));
    }

    #[test]
    fn display() {
        let t = TensorType::new(DType::F16, ["B", "H"].into(), Layout::Local);
        assert_eq!(t.to_string(), "(FP16, [B,H], Local)");
        let mut s = TensorType::scalar(DType::F32);
        s.group_shift = 1;
        assert_eq!(s.to_string(), "(FP32, [], Replicated)@GROUP+1");
    }
}
