//! The data-flow graph of a CoCoNet program and its builder API.
//!
//! "A CoCoNet program inherits the concept of a data-flow graph (DFG)
//! from existing machine learning frameworks with operations as
//! vertices and data dependencies as edges" (§2.2). The DSL is embedded
//! here in Rust the way the paper embeds it in C++: builder methods add
//! typed nodes, inference runs at construction, and `Execute` (here
//! [`Program::set_io`]) seals the program's interface.
//!
//! Transformations (the `xform` module) rewrite this graph; fusion and
//! overlap decisions are recorded as *groups* over node ids rather than
//! by mutating the ops themselves, so a transformed program remains a
//! flat DAG of elementary operations that the functional runtime can
//! execute directly.

use std::collections::HashSet;
use std::fmt::Write as _;

use coconet_tensor::{DType, ReduceOp};

use crate::infer;
use crate::{
    BinaryOp, CoreError, Layout, OpKind, PeerSelector, SymShape, TensorType, UnaryOp, VarId,
};

/// A node of the DFG: an operation plus its inferred type.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) op: OpKind,
    pub(crate) ty: TensorType,
    pub(crate) name: String,
    pub(crate) deleted: bool,
}

impl Node {
    /// The node's operation.
    pub fn op(&self) -> &OpKind {
        &self.op
    }

    /// The node's inferred type.
    pub fn ty(&self) -> &TensorType {
        &self.ty
    }

    /// The node's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// What a fusion group lowers to (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuseKind {
    /// A single kernel performing a series of pointwise computations
    /// ("Computation Fuse").
    Compute,
    /// A `FusedAllReduce`: ReduceScatter + sliced computations +
    /// AllGather in one kernel ("AllReduce Fuse", §2.3/5.2).
    AllReduce,
    /// A fused P2P send: computations applied as data is sent (§4).
    Send,
}

impl std::fmt::Display for FuseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseKind::Compute => write!(f, "ComputationFuse"),
            FuseKind::AllReduce => write!(f, "AllReduceFuse"),
            FuseKind::Send => write!(f, "SendFuse"),
        }
    }
}

/// A set of nodes lowered as one kernel.
#[derive(Clone, Debug)]
pub struct FusionGroup {
    /// What the group lowers to.
    pub kind: FuseKind,
    /// Member nodes, in topological order.
    pub members: Vec<VarId>,
}

/// A producer–consumer chain executed with fine-grained overlapping
/// (§3.4/5.3). Members are node ids; members belonging to the same
/// fusion group act as a single stage.
#[derive(Clone, Debug)]
pub struct OverlapGroup {
    /// Member nodes, in dependency order.
    pub members: Vec<VarId>,
}

/// A distributed machine-learning program: a typed DFG over
/// computation and communication operations, plus schedule annotations
/// (fusion and overlap groups) produced by transformations.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<VarId>,
    outputs: Vec<VarId>,
    fusion_groups: Vec<FusionGroup>,
    overlap_groups: Vec<OverlapGroup>,
    io_sealed: bool,
}

impl Program {
    /// Creates an empty program.
    ///
    /// # Examples
    ///
    /// ```
    /// use coconet_core::{DType, Layout, Program, ReduceOp};
    ///
    /// // Figure 3 of the paper, lines 1..13.
    /// let mut p = Program::new("self_attention");
    /// let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
    /// let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
    /// let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
    /// let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
    /// let layer = p.matmul(input, w)?;
    /// let sum = p.all_reduce(ReduceOp::Sum, layer)?;
    /// let biased = p.add(sum, b)?;
    /// let dropout = p.dropout(biased, 0.1)?;
    /// let out = p.add(dropout, r)?;
    /// p.set_io(&[w, input, b, r], &[out])?;
    /// # Ok::<(), coconet_core::CoreError>(())
    /// ```
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            fusion_groups: Vec::new(),
            overlap_groups: Vec::new(),
            io_sealed: false,
        }
    }

    /// The program name (the paper's `Execute` name).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, op: OpKind, ty: TensorType, name: String) -> VarId {
        let id = VarId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            ty,
            name,
            deleted: false,
        });
        id
    }

    fn auto_name(&self, prefix: &str) -> String {
        format!("{prefix}{}", self.nodes.len())
    }

    /// Looks up a live node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for ids of deleted or foreign
    /// nodes.
    pub fn node(&self, v: VarId) -> Result<&Node, CoreError> {
        self.nodes
            .get(v.index())
            .filter(|n| !n.deleted)
            .ok_or(CoreError::UnknownVar(v.0))
    }

    pub(crate) fn node_mut(&mut self, v: VarId) -> Result<&mut Node, CoreError> {
        self.nodes
            .get_mut(v.index())
            .filter(|n| !n.deleted)
            .ok_or(CoreError::UnknownVar(v.0))
    }

    /// The type of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead ids.
    pub fn ty(&self, v: VarId) -> Result<&TensorType, CoreError> {
        Ok(self.node(v)?.ty())
    }

    /// The operation of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead ids.
    pub fn op(&self, v: VarId) -> Result<&OpKind, CoreError> {
        Ok(self.node(v)?.op())
    }

    /// Renames a variable (used by workload builders so printed
    /// programs read like the paper's figures).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead ids.
    pub fn set_name(&mut self, v: VarId, name: impl Into<String>) -> Result<(), CoreError> {
        self.node_mut(v)?.name = name.into();
        Ok(())
    }

    // ----- declarations -------------------------------------------------

    /// Declares an input tensor with the given distributed layout.
    pub fn input(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        shape: impl Into<SymShape>,
        layout: Layout,
    ) -> VarId {
        let name = name.into();
        self.push(
            OpKind::Input,
            TensorType::new(dtype, shape.into(), layout),
            name,
        )
    }

    /// Declares a replicated scalar input (the paper's `Scalar`, e.g.
    /// learning rate).
    pub fn scalar_input(&mut self, name: impl Into<String>, dtype: DType) -> VarId {
        self.input(name, dtype, SymShape::scalar(), Layout::Replicated)
    }

    /// A scalar constant.
    pub fn constant(&mut self, value: f64) -> VarId {
        let name = self.auto_name("c");
        self.push(
            OpKind::ConstScalar(value),
            TensorType::scalar(DType::F32),
            name,
        )
    }

    // ----- pointwise computation ----------------------------------------

    fn unary(&mut self, op: UnaryOp, a: VarId) -> Result<VarId, CoreError> {
        let ty = self.ty(a)?.clone();
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Unary(op, a), ty, name))
    }

    /// Elementwise square root.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands.
    pub fn sqrt(&mut self, a: VarId) -> Result<VarId, CoreError> {
        self.unary(UnaryOp::Sqrt, a)
    }

    /// Elementwise hyperbolic tangent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands.
    pub fn tanh(&mut self, a: VarId) -> Result<VarId, CoreError> {
        self.unary(UnaryOp::Tanh, a)
    }

    /// Elementwise ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands.
    pub fn relu(&mut self, a: VarId) -> Result<VarId, CoreError> {
        self.unary(UnaryOp::Relu, a)
    }

    /// Elementwise negation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands.
    pub fn neg(&mut self, a: VarId) -> Result<VarId, CoreError> {
        self.unary(UnaryOp::Neg, a)
    }

    fn binary(&mut self, op: BinaryOp, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_binary(op.symbol(), self.ty(a)?, self.ty(b)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Binary(op, a, b), ty, name))
    }

    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn add(&mut self, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        self.binary(BinaryOp::Add, a, b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn sub(&mut self, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn mul(&mut self, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        self.binary(BinaryOp::Mul, a, b)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn div(&mut self, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        self.binary(BinaryOp::Div, a, b)
    }

    /// Elementwise power `a ^ b`.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn pow(&mut self, a: VarId, b: VarId) -> Result<VarId, CoreError> {
        self.binary(BinaryOp::Pow, a, b)
    }

    /// Matrix multiplication `a @ w`.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility).
    pub fn matmul(&mut self, a: VarId, w: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_matmul(self.ty(a)?, self.ty(w)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::MatMul(a, w), ty, name))
    }

    /// 2-D convolution `conv2d(x, w)` (Table 1's Convolution layer).
    ///
    /// # Errors
    ///
    /// Propagates inference errors (shape/layout incompatibility;
    /// spatial extents must be constant).
    pub fn conv2d(
        &mut self,
        x: VarId,
        w: VarId,
        params: coconet_tensor::Conv2dParams,
    ) -> Result<VarId, CoreError> {
        let ty = infer::infer_conv2d(self.ty(x)?, self.ty(w)?, params)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Conv2d(x, w, params), ty, name))
    }

    /// Dropout activation with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands and
    /// [`CoreError::MalformedProgram`] for `p` outside `[0, 1)`.
    pub fn dropout(&mut self, a: VarId, p: f64) -> Result<VarId, CoreError> {
        if !(0.0..1.0).contains(&p) {
            return Err(CoreError::MalformedProgram(format!(
                "dropout probability {p} outside [0, 1)"
            )));
        }
        let ty = self.ty(a)?.clone();
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Dropout(a, p), ty, name))
    }

    /// In-place update of a declared input tensor (`Update` in
    /// Table 1): `target` takes the value of `value` and the returned
    /// variable represents the updated tensor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ExpectedOp`] if `target` is not an input
    /// and inference errors on type mismatch.
    pub fn update(&mut self, target: VarId, value: VarId) -> Result<VarId, CoreError> {
        let target_node = self.node(target)?;
        if !matches!(target_node.op, OpKind::Input) {
            return Err(CoreError::ExpectedOp {
                expected: "Input tensor as Update target".into(),
                found: target_node.op.mnemonic(),
            });
        }
        let ty = infer::infer_update(self.ty(target)?, self.ty(value)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Update(target, value), ty, name))
    }

    /// L2 norm of a tensor, yielding a replicated FP32 scalar.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (`Local` operands are rejected).
    pub fn norm(&mut self, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_full_reduction("Norm", self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Norm(a), ty, name))
    }

    /// Full reduction of a tensor to a replicated FP32 scalar
    /// (`ReduceTensor` in Table 1).
    ///
    /// # Errors
    ///
    /// Propagates inference errors (`Local` operands are rejected).
    pub fn reduce_tensor(&mut self, op: ReduceOp, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_full_reduction("ReduceTensor", self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::ReduceTensor(op, a), ty, name))
    }

    /// This rank's flat slice of a replicated tensor (`Slice`).
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must be replicated).
    pub fn slice(&mut self, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_slice(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Slice(a), ty, name))
    }

    // ----- communication -------------------------------------------------

    /// AllReduce collective over the group.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must be `Local`).
    pub fn all_reduce(&mut self, op: ReduceOp, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_all_reduce(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::AllReduce(op, a), ty, name))
    }

    /// ReduceScatter collective over the group.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must be `Local`).
    pub fn reduce_scatter(&mut self, op: ReduceOp, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_reduce_scatter(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::ReduceScatter(op, a), ty, name))
    }

    /// AllGather collective over the group.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must be sliced).
    pub fn all_gather(&mut self, a: VarId) -> Result<VarId, CoreError> {
        let ty = infer::infer_all_gather(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::AllGather(a), ty, name))
    }

    /// Broadcast from the group-relative `root` rank.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must not be sliced).
    pub fn broadcast(&mut self, a: VarId, root: usize) -> Result<VarId, CoreError> {
        let ty = infer::infer_broadcast(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Broadcast(a, root), ty, name))
    }

    /// Reduce to the group-relative `root` rank.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (operand must be `Local`).
    pub fn reduce(&mut self, op: ReduceOp, a: VarId, root: usize) -> Result<VarId, CoreError> {
        let ty = infer::infer_reduce(self.ty(a)?)?;
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Reduce(op, a, root), ty, name))
    }

    /// P2P send to the selected peer; the returned variable is the
    /// value as it materializes on the destination group.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVar`] for dead operands.
    pub fn send(&mut self, a: VarId, peer: PeerSelector) -> Result<VarId, CoreError> {
        let ty = infer::infer_send(self.ty(a)?);
        let name = self.auto_name("v");
        Ok(self.push(OpKind::Send(a, peer), ty, name))
    }

    // ----- interface -----------------------------------------------------

    /// Seals the program interface (the paper's
    /// `Execute name({inputs}, {outputs})`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedProgram`] if an id is not a
    /// declared input, an output is dead, or the program was already
    /// sealed.
    pub fn set_io(&mut self, inputs: &[VarId], outputs: &[VarId]) -> Result<(), CoreError> {
        if self.io_sealed {
            return Err(CoreError::MalformedProgram(
                "program interface already sealed".into(),
            ));
        }
        for &v in inputs {
            let node = self.node(v)?;
            if !matches!(node.op, OpKind::Input) {
                return Err(CoreError::MalformedProgram(format!(
                    "{} is not a declared input tensor",
                    node.name
                )));
            }
        }
        for &v in outputs {
            self.node(v)?;
        }
        self.inputs = inputs.to_vec();
        self.outputs = outputs.to_vec();
        self.io_sealed = true;
        Ok(())
    }

    /// Declared program inputs.
    pub fn inputs(&self) -> &[VarId] {
        &self.inputs
    }

    /// Declared program outputs.
    pub fn outputs(&self) -> &[VarId] {
        &self.outputs
    }

    pub(crate) fn set_outputs(&mut self, outputs: Vec<VarId>) {
        self.outputs = outputs;
    }

    // ----- graph queries --------------------------------------------------

    /// Ids of all live nodes, in arena order.
    pub fn live_vars(&self) -> Vec<VarId> {
        (0..self.nodes.len() as u32)
            .map(VarId)
            .filter(|v| !self.nodes[v.index()].deleted)
            .collect()
    }

    /// Live nodes that read `v`.
    pub fn consumers(&self, v: VarId) -> Vec<VarId> {
        self.live_vars()
            .into_iter()
            .filter(|&c| self.nodes[c.index()].op.inputs().contains(&v))
            .collect()
    }

    /// A topological order over the live nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (impossible through the
    /// public API; transformations preserve acyclicity).
    pub fn topo_order(&self) -> Vec<VarId> {
        let live = self.live_vars();
        let live_set: HashSet<VarId> = live.iter().copied().collect();
        let mut order = Vec::with_capacity(live.len());
        let mut done: HashSet<VarId> = HashSet::new();
        // Nodes are appended referencing earlier ids, but transformations
        // may rewire forward; do a proper DFS.
        fn visit(
            p: &Program,
            v: VarId,
            live: &HashSet<VarId>,
            done: &mut HashSet<VarId>,
            visiting: &mut HashSet<VarId>,
            order: &mut Vec<VarId>,
        ) {
            if done.contains(&v) || !live.contains(&v) {
                return;
            }
            assert!(visiting.insert(v), "cycle through {v} in program DFG");
            for dep in p.nodes[v.index()].op.inputs() {
                visit(p, dep, live, done, visiting, order);
            }
            visiting.remove(&v);
            done.insert(v);
            order.push(v);
        }
        let mut visiting = HashSet::new();
        for v in live {
            visit(self, v, &live_set, &mut done, &mut visiting, &mut order);
        }
        order
    }

    /// Whether `to` is reachable from `from` along dataflow edges.
    pub fn reaches(&self, from: VarId, to: VarId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![to];
        let mut seen = HashSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            for dep in self.nodes[v.index()].op.inputs() {
                if dep == from {
                    return true;
                }
                stack.push(dep);
            }
        }
        false
    }

    pub(crate) fn mark_deleted(&mut self, v: VarId) {
        self.nodes[v.index()].deleted = true;
    }

    /// Rewires every consumer of `from` to read `to`, and replaces
    /// `from` in the program outputs.
    pub(crate) fn replace_uses(&mut self, from: VarId, to: VarId) {
        for i in 0..self.nodes.len() {
            if !self.nodes[i].deleted {
                self.nodes[i].op.replace_input(from, to);
            }
        }
        for out in &mut self.outputs {
            if *out == from {
                *out = to;
            }
        }
    }

    // ----- schedule annotations -------------------------------------------

    /// The fusion groups recorded by `fuse` transformations.
    pub fn fusion_groups(&self) -> &[FusionGroup] {
        &self.fusion_groups
    }

    /// The overlap groups recorded by `overlap` transformations.
    pub fn overlap_groups(&self) -> &[OverlapGroup] {
        &self.overlap_groups
    }

    pub(crate) fn add_fusion_group(&mut self, group: FusionGroup) -> usize {
        self.fusion_groups.push(group);
        self.fusion_groups.len() - 1
    }

    pub(crate) fn replace_fusion_groups(&mut self, groups: Vec<FusionGroup>) {
        self.fusion_groups = groups;
    }

    pub(crate) fn add_overlap_group(&mut self, group: OverlapGroup) {
        self.overlap_groups.push(group);
    }

    pub(crate) fn remove_from_groups(&mut self, v: VarId) {
        for g in &mut self.fusion_groups {
            g.members.retain(|&m| m != v);
        }
        self.fusion_groups.retain(|g| !g.members.is_empty());
        for g in &mut self.overlap_groups {
            g.members.retain(|&m| m != v);
        }
        self.overlap_groups.retain(|g| !g.members.is_empty());
    }

    /// The index of the fusion group containing `v`, if any.
    pub fn fusion_group_of(&self, v: VarId) -> Option<usize> {
        self.fusion_groups
            .iter()
            .position(|g| g.members.contains(&v))
    }

    /// Recomputes the type of every non-leaf node in topological order.
    /// Called by transformations after rewiring or changing a declared
    /// layout (`asSlice`); an inference failure means the rewrite was
    /// invalid.
    ///
    /// # Errors
    ///
    /// Propagates the first inference error.
    pub(crate) fn reinfer(&mut self) -> Result<(), CoreError> {
        for v in self.topo_order() {
            let op = self.nodes[v.index()].op.clone();
            if matches!(op, OpKind::Input | OpKind::ConstScalar(_)) {
                continue;
            }
            let tys: Vec<TensorType> = op
                .inputs()
                .iter()
                .map(|&d| self.ty(d).cloned())
                .collect::<Result<_, _>>()?;
            let refs: Vec<&TensorType> = tys.iter().collect();
            let new_ty = infer::infer_op(&op, &refs)?;
            self.nodes[v.index()].ty = new_ty;
        }
        Ok(())
    }

    // ----- validation and printing ----------------------------------------

    /// Checks structural invariants: sealed interface, acyclicity, all
    /// operands live, groups reference live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedProgram`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.io_sealed {
            return Err(CoreError::MalformedProgram(
                "program interface not sealed with set_io".into(),
            ));
        }
        for v in self.live_vars() {
            for dep in self.nodes[v.index()].op.inputs() {
                if self.nodes.get(dep.index()).is_none_or(|n| n.deleted) {
                    return Err(CoreError::MalformedProgram(format!(
                        "{v} reads dead variable {dep}"
                    )));
                }
            }
        }
        for out in &self.outputs {
            self.node(*out)?;
        }
        for g in &self.fusion_groups {
            for &m in &g.members {
                self.node(m)?;
            }
        }
        for g in &self.overlap_groups {
            for &m in &g.members {
                self.node(m)?;
            }
        }
        // Write-after-read hazards: every other reader of an Update's
        // target must execute before the update — i.e. it must be an
        // ancestor of the update's value. Otherwise a topological
        // schedule could observe the new value where the program meant
        // the old one.
        for v in self.live_vars() {
            if let OpKind::Update(target, _) = self.nodes[v.index()].op {
                for reader in self.consumers(target) {
                    if reader != v && !self.reaches(reader, v) {
                        return Err(CoreError::MalformedProgram(format!(
                            "{} reads {} but is not ordered before its Update {}",
                            self.nodes[reader.index()].name,
                            self.nodes[target.index()].name,
                            self.nodes[v.index()].name
                        )));
                    }
                }
            }
        }
        let _ = self.topo_order(); // panics on a cycle
        Ok(())
    }

    /// Renders the program as DSL source in the style of the paper's
    /// figures (one statement per line, `Execute` last). Table 3 counts
    /// these lines as "Program in CoCoNet".
    pub fn to_dsl_string(&self) -> String {
        let mut out = String::new();
        let name_of = |v: VarId| self.nodes[v.index()].name.clone();
        for v in self.topo_order() {
            let node = &self.nodes[v.index()];
            match &node.op {
                OpKind::Input => {
                    let _ = writeln!(
                        out,
                        "Tensor {}({}, {}, {}, WORLD);",
                        node.name, node.ty.dtype, node.ty.shape, node.ty.layout
                    );
                }
                OpKind::ConstScalar(c) => {
                    let _ = writeln!(out, "Scalar {} = {c};", node.name);
                }
                OpKind::Unary(op, a) => {
                    let _ = writeln!(out, "Var {} = {}({});", node.name, op.name(), name_of(*a));
                }
                OpKind::Binary(op, a, b) => {
                    if matches!(op, BinaryOp::Pow) {
                        let _ = writeln!(
                            out,
                            "Var {} = Pow({}, {});",
                            node.name,
                            name_of(*a),
                            name_of(*b)
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "Var {} = {} {} {};",
                            node.name,
                            name_of(*a),
                            op.symbol(),
                            name_of(*b)
                        );
                    }
                }
                OpKind::MatMul(a, b) => {
                    let _ = writeln!(
                        out,
                        "Var {} = MatMul({}, {});",
                        node.name,
                        name_of(*a),
                        name_of(*b)
                    );
                }
                OpKind::Conv2d(a, b, params) => {
                    let _ = writeln!(
                        out,
                        "Var {} = Conv2d({}, {}, stride={}, pad={});",
                        node.name,
                        name_of(*a),
                        name_of(*b),
                        params.stride,
                        params.padding
                    );
                }
                OpKind::Dropout(a, p) => {
                    let _ = writeln!(out, "Var {} = Dropout({}, {p});", node.name, name_of(*a));
                }
                OpKind::Update(t, x) => {
                    let _ = writeln!(
                        out,
                        "Var {} = Update({}, {});",
                        node.name,
                        name_of(*t),
                        name_of(*x)
                    );
                }
                OpKind::Norm(a) => {
                    let _ = writeln!(out, "Var {} = Norm({});", node.name, name_of(*a));
                }
                OpKind::ReduceTensor(op, a) => {
                    let _ = writeln!(
                        out,
                        "Var {} = ReduceTensor(\"{op}\", {});",
                        node.name,
                        name_of(*a)
                    );
                }
                OpKind::Slice(a) => {
                    let _ = writeln!(out, "Var {} = Slice({});", node.name, name_of(*a));
                }
                OpKind::AllReduce(op, a) => {
                    let _ = writeln!(
                        out,
                        "Var {} = AllReduce(\"{op}\", {});",
                        node.name,
                        name_of(*a)
                    );
                }
                OpKind::ReduceScatter(op, a) => {
                    let _ = writeln!(
                        out,
                        "Var {} = ReduceScatter(\"{op}\", {});",
                        node.name,
                        name_of(*a)
                    );
                }
                OpKind::AllGather(a) => {
                    let _ = writeln!(out, "Var {} = AllGather({});", node.name, name_of(*a));
                }
                OpKind::Broadcast(a, root) => {
                    let _ = writeln!(
                        out,
                        "Var {} = Broadcast({}, {root});",
                        node.name,
                        name_of(*a)
                    );
                }
                OpKind::Reduce(op, a, root) => {
                    let _ = writeln!(
                        out,
                        "Var {} = Reduce(\"{op}\", {}, {root});",
                        node.name,
                        name_of(*a)
                    );
                }
                OpKind::Send(a, peer) => {
                    let _ = writeln!(out, "Var {} = Send({}, {peer});", node.name, name_of(*a));
                }
            }
        }
        let ins: Vec<String> = self.inputs.iter().map(|&v| name_of(v)).collect();
        let outs: Vec<String> = self.outputs.iter().map(|&v| name_of(v)).collect();
        let _ = writeln!(
            out,
            "Execute {}({{{}}}, {{{}}});",
            self.name,
            ins.join(", "),
            outs.join(", ")
        );
        out
    }

    /// Number of DSL source lines (Table 3's "Program in CoCoNet").
    pub fn dsl_loc(&self) -> usize {
        self.to_dsl_string().lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;

    /// The running example of the paper (Figure 3).
    fn figure3() -> (Program, VarId) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        let biased = p.add(sum, b).unwrap();
        let dropout = p.dropout(biased, 0.1).unwrap();
        let out = p.add(dropout, r).unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        (p, out)
    }

    #[test]
    fn figure3_types() {
        let (p, out) = figure3();
        p.validate().unwrap();
        let out_ty = p.ty(out).unwrap();
        assert_eq!(out_ty.layout, Layout::Replicated);
        assert_eq!(out_ty.shape, ["B", "S", "H"].into());
        // layer is Local (Figure 3, line 6 comment).
        let layer = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), OpKind::MatMul(..)))
            .unwrap();
        assert_eq!(p.ty(layer).unwrap().layout, Layout::Local);
    }

    #[test]
    fn dsl_printout() {
        let (p, _) = figure3();
        let text = p.to_dsl_string();
        assert!(text.contains("Tensor w(FP16, [H,H], Sliced(0), WORLD);"));
        assert!(text.contains("AllReduce(\"+\""));
        assert!(text.contains("Dropout("));
        assert!(text.contains("Execute self_attention({w, in, b, r}"));
        // 4 tensors + 5 ops + Execute = 10 lines, matching the ~10-line
        // programs of Table 3.
        assert_eq!(p.dsl_loc(), 10);
    }

    #[test]
    fn consumers_and_topo() {
        let (p, out) = figure3();
        let order = p.topo_order();
        assert_eq!(order.len(), p.live_vars().len());
        // Every node appears after its inputs.
        for (idx, &v) in order.iter().enumerate() {
            for dep in p.op(v).unwrap().inputs() {
                let dep_idx = order.iter().position(|&x| x == dep).unwrap();
                assert!(dep_idx < idx);
            }
        }
        // `out` is consumed by nothing.
        assert!(p.consumers(out).is_empty());
    }

    #[test]
    fn reaches() {
        let (p, out) = figure3();
        let layer = p
            .live_vars()
            .into_iter()
            .find(|&v| matches!(p.op(v).unwrap(), OpKind::MatMul(..)))
            .unwrap();
        assert!(p.reaches(layer, out));
        assert!(!p.reaches(out, layer));
        assert!(p.reaches(out, out));
    }

    #[test]
    fn io_rules() {
        let mut p = Program::new("t");
        let a = p.input("a", DType::F32, ["N"], Layout::Local);
        let s = p.all_reduce(ReduceOp::Sum, a).unwrap();
        // Outputs must be live; non-input tensors cannot be inputs.
        assert!(p.set_io(&[s], &[s]).is_err());
        p.set_io(&[a], &[s]).unwrap();
        assert!(p.set_io(&[a], &[s]).is_err(), "sealing twice fails");
        assert_eq!(p.inputs(), &[a]);
        assert_eq!(p.outputs(), &[s]);
    }

    #[test]
    fn update_requires_input_target() {
        let mut p = Program::new("t");
        let a = p.input("a", DType::F32, ["N"], Layout::Replicated);
        let b = p.input("b", DType::F32, ["N"], Layout::Replicated);
        let sum = p.add(a, b).unwrap();
        assert!(p.update(a, sum).is_ok());
        assert!(matches!(
            p.update(sum, a),
            Err(CoreError::ExpectedOp { .. })
        ));
    }

    #[test]
    fn validate_rejects_unsealed() {
        let mut p = Program::new("t");
        let _ = p.input("a", DType::F32, ["N"], Layout::Local);
        assert!(p.validate().is_err());
    }

    #[test]
    fn scalars_and_constants() {
        let mut p = Program::new("t");
        let lr = p.scalar_input("lr", DType::F32);
        let c = p.constant(0.9);
        let x = p.mul(lr, c).unwrap();
        assert_eq!(p.ty(x).unwrap().shape.rank(), 0);
        assert_eq!(p.ty(x).unwrap().layout, Layout::Replicated);
    }

    #[test]
    fn validate_rejects_read_after_update_hazard() {
        // out2 = p + 1 is not ordered against Update(p, ...): a valid
        // topological order could run it after the update and observe
        // the new value.
        let mut prog = Program::new("hazard");
        let p0 = prog.input("p", DType::F32, ["N"], Layout::Replicated);
        let one = prog.constant(1.0);
        let newv = prog.mul(p0, one).unwrap();
        let upd = prog.update(p0, newv).unwrap();
        let out2 = prog.add(p0, one).unwrap();
        prog.set_io(&[p0], &[upd, out2]).unwrap();
        assert!(matches!(
            prog.validate(),
            Err(CoreError::MalformedProgram(_))
        ));

        // Reading p only *inside* the update expression is fine.
        let mut ok = Program::new("fine");
        let p0 = ok.input("p", DType::F32, ["N"], Layout::Replicated);
        let one = ok.constant(1.0);
        let read = ok.add(p0, one).unwrap();
        let upd = ok.update(p0, read).unwrap();
        ok.set_io(&[p0], &[upd]).unwrap();
        ok.validate().unwrap();
    }

    #[test]
    fn set_name_shows_in_dsl() {
        let mut p = Program::new("t");
        let a = p.input("g", DType::F32, ["N"], Layout::Local);
        let s = p.all_reduce(ReduceOp::Sum, a).unwrap();
        p.set_name(s, "avg").unwrap();
        p.set_io(&[a], &[s]).unwrap();
        assert!(p.to_dsl_string().contains("Var avg = AllReduce"));
    }
}
