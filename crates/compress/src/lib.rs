//! # coconet-compress
//!
//! The wire-compression subsystem: what a collective's payload looks
//! like *on the wire*, promoted to a tuned schedule dimension.
//!
//! The paper's thesis is that communication choices must be visible to
//! the optimizer instead of hidden behind an opaque `AllReduce`; NCCL's
//! protocol and logical topology are already tuned dimensions in this
//! reproduction, and SparCML (PAPERS.md) shows the *representation* of
//! the payload is one too: half-precision and top-k sparsified gradient
//! streams move a fraction of the dense volume, with a dense switchover
//! once density makes the sparse form larger. [`WireFormat`] is that
//! dimension; this crate holds the codecs, the deterministic top-k
//! selection with SparCML-style error-feedback residuals, the Q15.16
//! fixed-point quantizer the in-network aggregation path
//! (`CollAlgo::Switch`, SwitchML-style) rides, and the analytic
//! wire-volume formulas the bytes ledger and the simulator's
//! admissible pruning bounds share.
//!
//! Layering: `coconet-compress` sits between the tensor substrate and
//! `coconet-core` — the DSL's `CommConfig` carries a [`WireFormat`],
//! the simulator costs compressed bytes-on-wire with it, and the
//! runtime's collectives encode/decode real payloads with it.

#![warn(missing_docs)]

use std::fmt;

use coconet_tensor::{kernels, DType, ReduceOp, SparseChunk, Tensor, SPARSE_ENTRY_BYTES};

/// How a collective's payload is represented on the wire.
///
/// Like the protocol and the collective algorithm, the format is a
/// *schedule* choice: it never changes what a program computes (up to
/// the stated loss), only how many bytes the interconnect carries.
///
/// # Examples
///
/// ```
/// use coconet_compress::WireFormat;
/// use coconet_tensor::DType;
///
/// let topk = WireFormat::TopK { k_permille: 10 };
/// assert_eq!(topk.k_for(1000), 10);
/// // FP16 halves an F32 payload; Dense moves it whole.
/// assert_eq!(WireFormat::Fp16.payload_bytes(100, DType::F32), 200);
/// assert_eq!(WireFormat::Dense.payload_bytes(100, DType::F32), 400);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The payload travels in its own element type, uncompressed.
    #[default]
    Dense,
    /// Every element is rounded to IEEE 754 binary16 before the send
    /// and widened after the receive (lossless when the payload is
    /// already FP16; otherwise a half-ULP rounding per hop).
    Fp16,
    /// Only the `k = k_permille/1000 · n` largest-magnitude entries
    /// travel, as `(index, value)` pairs, with per-rank error-feedback
    /// residuals carrying the dropped mass into the next iteration
    /// (SparCML). Applies to sum AllReduces; everything else and any
    /// density past the switchover runs dense.
    TopK {
        /// Kept entries per thousand elements (1 ‰ – 1000 ‰).
        k_permille: u16,
    },
}

impl WireFormat {
    /// The default autotuner sweep: dense, FP16, and 10 ‰ top-k — the
    /// three points that expose the format crossovers without blowing
    /// up the grid.
    pub const SWEEP: [WireFormat; 3] = [
        WireFormat::Dense,
        WireFormat::Fp16,
        WireFormat::TopK { k_permille: 10 },
    ];

    /// Whether decoding can differ from the encoded input (FP16
    /// rounding, top-k truncation).
    pub fn is_lossy(self) -> bool {
        !matches!(self, WireFormat::Dense)
    }

    /// The top-k entry count for an `n`-element payload: at least one
    /// entry, at most all of them.
    pub fn k_for(self, n: u64) -> u64 {
        match self {
            WireFormat::TopK { k_permille } => {
                (n * u64::from(k_permille) / 1000).clamp(1.min(n), n)
            }
            _ => n,
        }
    }

    /// The bytes an `n`-element message of `dtype` occupies on the wire
    /// under this format. For [`WireFormat::TopK`] this is the *sparse
    /// chunk* size (`k` entries of [`SPARSE_ENTRY_BYTES`]); whether the
    /// sparse exchange pattern applies at all is the collective's
    /// decision (see [`sparse_all_reduce_wire_bytes`]).
    pub fn payload_bytes(self, elems: u64, dtype: DType) -> u64 {
        match self {
            WireFormat::Dense => elems * dtype.size_bytes() as u64,
            // Already-FP16 payloads are unchanged; F32 halves.
            WireFormat::Fp16 => elems * (dtype.size_bytes().min(2)) as u64,
            WireFormat::TopK { .. } => self.k_for(elems) * SPARSE_ENTRY_BYTES as u64,
        }
    }

    /// The element type payloads carry on the wire under this format
    /// (the sparse format's values are F32 entries).
    pub fn wire_dtype(self, dtype: DType) -> DType {
        match self {
            WireFormat::Dense | WireFormat::TopK { .. } => dtype,
            WireFormat::Fp16 => DType::F16,
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFormat::Dense => write!(f, "Dense"),
            WireFormat::Fp16 => write!(f, "FP16"),
            WireFormat::TopK { k_permille } => write!(f, "TopK{k_permille}"),
        }
    }
}

/// The analytic per-rank send volume of the *dense* ring AllReduce —
/// `2·(p−1)/p · n · dtype_size` — duplicated from the runtime ledger
/// (which sits above this crate) so the switchover rule can compare
/// against it without a dependency cycle.
pub fn dense_ring_all_reduce_wire_bytes(n: u64, p: u64, dtype: DType) -> u64 {
    if p <= 1 {
        return 0;
    }
    2 * (p - 1) * (n / p) * dtype.size_bytes() as u64
}

/// The analytic per-rank send volume of the sparse AllReduce of an
/// `n`-element tensor over `p` ranks with `k` kept entries:
///
/// - power-of-two groups run the SparCML recursive-doubling exchange
///   with fixed-`k` re-sparsification — `log2(p)` rounds of one
///   `k`-entry chunk each, `log2(p) · k · 8` bytes;
/// - other groups run the AllGather form — every rank's `k`-entry
///   chunk travels the ring, `(p−1) · k · 8` bytes per rank (the
///   aggregate is `p · (p−1) · k` entries, "`p · k` chunks on the
///   wire" in SparCML's accounting).
///
/// Both forms pad every chunk to exactly `k` entries, so the volume is
/// data-independent and the ledger can assert it exactly.
pub fn sparse_all_reduce_wire_bytes(n: u64, p: u64, k: u64) -> u64 {
    if p <= 1 {
        return 0;
    }
    let k = k.min(n);
    let entry = SPARSE_ENTRY_BYTES as u64;
    if p.is_power_of_two() {
        u64::from(p.ilog2()) * k * entry
    } else {
        (p - 1) * k * entry
    }
}

/// The dense switchover rule: the sparse AllReduce runs only while it
/// is *strictly smaller* than the dense ring AllReduce of the same
/// tensor — past that density the collective silently runs dense.
/// Shared verbatim by the runtime dispatch and the simulator's cost
/// model so the tuner always prices exactly what runs.
pub fn sparse_beats_dense(n: u64, p: u64, k: u64, dtype: DType) -> bool {
    p > 1 && sparse_all_reduce_wire_bytes(n, p, k) < dense_ring_all_reduce_wire_bytes(n, p, dtype)
}

/// The exchange rounds of the sparse AllReduce (for latency modeling):
/// `log2(p)` pairwise rounds on power-of-two groups, `p − 1` ring hops
/// on the AllGather form.
pub fn sparse_all_reduce_rounds(p: u64) -> u64 {
    if p <= 1 {
        0
    } else if p.is_power_of_two() {
        u64::from(p.ilog2())
    } else {
        p - 1
    }
}

/// Fractional bits of the switch wire's fixed-point format (Q15.16,
/// SwitchML-style): values are scaled by `2^16` and rounded to `i32`
/// words, so the switch can aggregate with plain saturating integer
/// adds. Chosen so gradient-scale magnitudes (`|v| ≲ 100`) round-trip
/// within `2^-16` while the integer range still reaches `±32768`.
pub const FIXED_POINT_FRAC_BITS: u32 = 16;

/// The fixed-point scale, `2^FIXED_POINT_FRAC_BITS` (exactly 65536.0).
pub const FIXED_POINT_SCALE: f32 = (1u32 << FIXED_POINT_FRAC_BITS) as f32;

/// Bytes of one fixed-point wire word (`i32`). The switch wire always
/// carries 4-byte words regardless of the payload's element type —
/// FP16 payloads widen on the switch wire.
pub const QUANT_WORD_BYTES: usize = 4;

/// Quantizes one value to a Q15.16 fixed-point word.
///
/// The round-trip contract ([`dequantize_value`] of this):
///
/// - for finite `|v| ≤ 128.0` the absolute error is at most
///   `1.0 / FIXED_POINT_SCALE` (half a quantization step from the
///   round-to-nearest, plus at most half an integer step of f32
///   multiply rounding — the product stays below `2^23` where the f32
///   ULP is 1);
/// - `|v| ≥ i32::MAX / FIXED_POINT_SCALE` (≈ 32768) saturates to
///   `i32::MAX` / `i32::MIN` — the SwitchML clamp, never a wrap;
/// - `+∞` / `−∞` saturate like out-of-range values; `NaN` maps to 0;
/// - subnormals (and everything below `0.5 / FIXED_POINT_SCALE` in
///   magnitude) quantize to exactly 0.
///
/// Quantization is monotone (non-strictly), so `Min`/`Max` reductions
/// commute with it and the switch can serve those ops too.
pub fn quantize_value(v: f32) -> i32 {
    // `as` saturates on overflow and maps NaN to 0 — exactly the
    // contract above, for free.
    (v * FIXED_POINT_SCALE).round() as i32
}

/// The inverse of [`quantize_value`]: `q / 2^16`. Exact for `|q| <
/// 2^24`; beyond that the f32 mantissa rounds (relative error ≤ 2^-24).
pub fn dequantize_value(q: i32) -> f32 {
    q as f32 / FIXED_POINT_SCALE
}

/// A fixed-point-quantized payload: the wire unit of the in-network
/// aggregation path (`CollAlgo::Switch`). Workers quantize their dense
/// tensors into `QuantChunk`s, the emulated switch folds them with
/// saturating integer arithmetic, and every worker dequantizes the
/// multicast result.
///
/// The scale travels with the chunk (as SwitchML's scaling exponent
/// does) and aggregation insists both sides agree, so a mixed-scale
/// fold can never silently produce garbage.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantChunk {
    values: Vec<i32>,
    scale: f32,
}

impl QuantChunk {
    /// Quantizes a tensor elementwise (see [`quantize_value`] for the
    /// round-trip contract).
    ///
    /// Both storage dtypes run through the kernel engine's slice codec
    /// — F16 tensors widen inside the monomorphic pass instead of
    /// degrading to per-element `Tensor::get` virtual indexing — and
    /// payloads above the engine's threshold quantize in parallel.
    pub fn quantize(t: &Tensor) -> QuantChunk {
        let mut values = vec![0i32; t.numel()];
        match (t.as_f32_slice(), t.as_f16_slice()) {
            (Some(vals), _) => kernels::par_map(vals, &mut values, |&v| quantize_value(v)),
            (_, Some(vals)) => kernels::par_map(vals, &mut values, |h| quantize_value(h.to_f32())),
            _ => unreachable!("tensor storage is F32 or F16"),
        }
        QuantChunk {
            values,
            scale: FIXED_POINT_SCALE,
        }
    }

    /// Number of fixed-point words.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The scale the values were quantized under.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw fixed-point words.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Bytes this chunk occupies on the wire: `len · 4` (the scale
    /// header is excluded, like every other wire header).
    pub fn wire_bytes(&self) -> u64 {
        self.values.len() as u64 * QUANT_WORD_BYTES as u64
    }

    /// Folds another worker's contribution into this one in the
    /// switch's integer domain: saturating adds for `Sum` (the
    /// SwitchML dataplane op), integer `min`/`max` otherwise (valid
    /// because quantization is monotone).
    ///
    /// # Panics
    ///
    /// When the chunks disagree on length or scale — a protocol error,
    /// not a data condition.
    pub fn accumulate(&mut self, other: &QuantChunk, op: ReduceOp) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "switch aggregation requires equal-length chunks"
        );
        assert_eq!(
            self.scale, other.scale,
            "switch aggregation requires a common fixed-point scale"
        );
        for (a, &b) in self.values.iter_mut().zip(&other.values) {
            *a = match op {
                ReduceOp::Sum => a.saturating_add(b),
                ReduceOp::Min => (*a).min(b),
                ReduceOp::Max => (*a).max(b),
            };
        }
    }

    /// Dequantizes into a flat tensor of `dtype` (the caller reshapes
    /// if the original payload was multi-dimensional). Runs through the
    /// kernel engine, so large chunks dequantize in parallel.
    pub fn dequantize(&self, dtype: DType) -> Tensor {
        let mut vals = vec![0.0f32; self.values.len()];
        kernels::par_map(&self.values, &mut vals, |&q| dequantize_value(q));
        Tensor::from_f32_vec([vals.len()], dtype, vals).expect("length matches shape")
    }
}

/// The analytic per-worker send volume of the switch AllReduce of an
/// `n`-element tensor: one quantized copy up to the switch and one
/// multicast copy back down — `2 · n · 4` bytes, *independent of the
/// worker count* (SwitchML's headline property, vs the ring's
/// `2(p−1)/p` factor). The word size is fixed at 4 bytes whatever the
/// payload dtype, so FP16 payloads pay a 2× wire widening for the
/// constant-in-`p` exchange.
pub fn switch_all_reduce_wire_bytes(n: u64) -> u64 {
    2 * n * QUANT_WORD_BYTES as u64
}

/// Deterministic top-k sparsification: the `k` largest-magnitude
/// elements (ties break toward the lower index) as a [`SparseChunk`].
/// `k` is clamped to the element count, so the chunk always holds
/// exactly `min(k, n)` entries — zero values included when the tensor
/// has that few large ones — which is what keeps the sparse wire
/// volume data-independent.
pub fn sparsify_top_k(t: &Tensor, k: usize) -> SparseChunk {
    let n = t.numel();
    let k = k.min(n);
    if k == 0 {
        return SparseChunk::empty(n);
    }
    // Precompute the magnitude keys once (the selection compares each
    // element O(1) times amortized, but the key closure would re-read
    // the tensor through its dtype dispatch on every comparison — this
    // is the per-iteration hot path of the 2^24-element benchmarks).
    // Key extraction is a pure elementwise map, so it runs through the
    // kernel engine — F16 tensors widen inside the monomorphic pass
    // instead of per-element `Tensor::get`, and large tensors extract
    // in parallel. The selection itself stays sequential: its exact
    // tie-breaking order is part of the determinism contract.
    let mut keys = vec![0u32; n];
    match (t.as_f32_slice(), t.as_f16_slice()) {
        (Some(vals), _) => kernels::par_map(vals, &mut keys, |v| ordered(v.abs())),
        (_, Some(vals)) => kernels::par_map(vals, &mut keys, |h| ordered(h.to_f32().abs())),
        _ => unreachable!("tensor storage is F32 or F16"),
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Partial selection: the k largest by |value|, ties to lower index.
    order.select_nth_unstable_by_key(k - 1, |i| (std::cmp::Reverse(keys[*i as usize]), *i));
    let mut selected: Vec<u32> = order[..k].to_vec();
    selected.sort_unstable();
    // Gather the kept values straight off the storage slice (k is tiny
    // next to n — the gather stays serial).
    let values: Vec<f32> = match (t.as_f32_slice(), t.as_f16_slice()) {
        (Some(vals), _) => selected.iter().map(|&i| vals[i as usize]).collect(),
        (_, Some(vals)) => selected
            .iter()
            .map(|&i| vals[i as usize].to_f32())
            .collect(),
        _ => unreachable!("tensor storage is F32 or F16"),
    };
    SparseChunk::new(n, selected, values).expect("sorted unique in-range indices")
}

/// Total-orders a non-NaN magnitude via its IEEE bits (non-negative
/// floats sort identically to their bit patterns).
fn ordered(v: f32) -> u32 {
    debug_assert!(!v.is_nan(), "gradients must be finite");
    v.to_bits()
}

/// The per-rank error-feedback residual of a top-k compressed gradient
/// stream (SparCML / 1-bit-SGD style): everything the wire dropped is
/// remembered and re-injected into the next iteration's gradient, which
/// is what makes top-k SGD converge to the dense trajectory.
///
/// One accumulator per logical tensor per rank; the runtime's one-shot
/// collectives take `Option<&mut ErrorFeedback>` and simply drop the
/// residual when none is supplied.
#[derive(Clone, Debug, Default)]
pub struct ErrorFeedback {
    residual: Option<Tensor>,
}

impl ErrorFeedback {
    /// A fresh residual (zero).
    pub fn new() -> ErrorFeedback {
        ErrorFeedback::default()
    }

    /// The gradient with the carried residual re-injected (`g + r`),
    /// in F32. The first call is a plain widening copy.
    pub fn inject(&self, grad: &Tensor) -> Tensor {
        let g = grad.cast(DType::F32);
        match &self.residual {
            None => g,
            Some(r) => g.add(r).expect("residual tracks the gradient shape"),
        }
    }

    /// Records what this iteration's wire dropped: `residual =
    /// corrected − sent`, where `corrected` is [`inject`]'s output and
    /// `sent` is the chunk that actually traveled.
    ///
    /// [`inject`]: ErrorFeedback::inject
    pub fn absorb(&mut self, corrected: &Tensor, sent: &SparseChunk) {
        // A handle copy; the first subtraction's copy-on-write detaches
        // it, so `corrected` is never observably mutated.
        let mut r = corrected.cast(DType::F32);
        for (i, v) in sent.entries() {
            let at = i as usize;
            r.set(at, r.get(at) - v);
        }
        self.residual = Some(r);
    }

    /// Folds additional dropped mass (e.g. a re-sparsification round's
    /// truncation, pre-scaled by the caller) into the residual.
    pub fn absorb_scaled(&mut self, dropped: &SparseChunk, scale: f32) {
        let r = match &mut self.residual {
            Some(r) => r,
            None => {
                self.residual = Some(Tensor::zeros([dropped.dense_len()], DType::F32));
                self.residual.as_mut().expect("just set")
            }
        };
        for (i, v) in dropped.entries() {
            let at = i as usize;
            r.set(at, r.get(at) + v * scale);
        }
    }

    /// The current residual, if any iteration has run.
    pub fn residual(&self) -> Option<&Tensor> {
        self.residual.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_and_sweep() {
        assert_eq!(WireFormat::Dense.to_string(), "Dense");
        assert_eq!(WireFormat::Fp16.to_string(), "FP16");
        assert_eq!(WireFormat::TopK { k_permille: 10 }.to_string(), "TopK10");
        assert_eq!(WireFormat::SWEEP.len(), 3);
        assert_eq!(WireFormat::default(), WireFormat::Dense);
        assert!(!WireFormat::Dense.is_lossy());
        assert!(WireFormat::Fp16.is_lossy());
    }

    #[test]
    fn k_clamps() {
        let f = WireFormat::TopK { k_permille: 10 };
        assert_eq!(f.k_for(1000), 10);
        assert_eq!(f.k_for(50), 1, "at least one entry");
        assert_eq!(f.k_for(0), 0, "empty tensors stay empty");
        assert_eq!(WireFormat::TopK { k_permille: 1000 }.k_for(64), 64);
        assert_eq!(WireFormat::Dense.k_for(64), 64);
    }

    #[test]
    fn payload_bytes_per_format() {
        assert_eq!(WireFormat::Dense.payload_bytes(64, DType::F32), 256);
        assert_eq!(WireFormat::Fp16.payload_bytes(64, DType::F32), 128);
        assert_eq!(
            WireFormat::Fp16.payload_bytes(64, DType::F16),
            64 * 2,
            "already-half payloads are unchanged"
        );
        let topk = WireFormat::TopK { k_permille: 125 };
        assert_eq!(topk.payload_bytes(64, DType::F32), 8 * 8);
    }

    #[test]
    fn analytic_volumes() {
        // Recursive doubling on 8 ranks: 3 rounds of k entries.
        assert_eq!(
            sparse_all_reduce_wire_bytes(1 << 20, 8, 1 << 10),
            3 * (1 << 10) * 8
        );
        // AllGather form on 6 ranks: 5 chunks of k entries.
        assert_eq!(sparse_all_reduce_wire_bytes(1 << 20, 6, 100), 5 * 100 * 8);
        assert_eq!(sparse_all_reduce_wire_bytes(64, 1, 10), 0);
        assert_eq!(
            dense_ring_all_reduce_wire_bytes(16, 4, DType::F32),
            96,
            "matches the runtime ledger formula"
        );
    }

    #[test]
    fn acceptance_volume_ratio() {
        // The acceptance criterion's numbers: a 2^24-element, 8-rank
        // F32 AllReduce at 10 ‰ moves under 5 % of the dense volume.
        let (n, p) = (1u64 << 24, 8u64);
        let k = WireFormat::TopK { k_permille: 10 }.k_for(n);
        let sparse = sparse_all_reduce_wire_bytes(n, p, k);
        let dense = dense_ring_all_reduce_wire_bytes(n, p, DType::F32);
        assert!(
            (sparse as f64) < 0.05 * dense as f64,
            "sparse {sparse} vs dense {dense}"
        );
        assert!(sparse_beats_dense(n, p, k, DType::F32));
    }

    #[test]
    fn switchover_trips_at_high_density() {
        // 100 ‰ on an FP16 tensor over 8 ranks: sparse = 3·0.1n·8 =
        // 2.4n, dense = 2·(7/8)·2n = 3.5n — still sparse. At 200 ‰
        // sparse is 4.8n > 3.5n: dense wins.
        let n = 1u64 << 16;
        let k100 = WireFormat::TopK { k_permille: 100 }.k_for(n);
        let k200 = WireFormat::TopK { k_permille: 200 }.k_for(n);
        assert!(sparse_beats_dense(n, 8, k100, DType::F16));
        assert!(!sparse_beats_dense(n, 8, k200, DType::F16));
        // Single rank never goes sparse.
        assert!(!sparse_beats_dense(n, 1, 1, DType::F32));
    }

    #[test]
    fn sparsify_selects_magnitudes_deterministically() {
        let t =
            coconet_tensor::Tensor::from_f32([6], DType::F32, &[0.5, -4.0, 1.0, 4.0, -0.25, 2.0])
                .unwrap();
        let c = sparsify_top_k(&t, 3);
        assert_eq!(
            c.entries().collect::<Vec<_>>(),
            vec![(1, -4.0), (3, 4.0), (5, 2.0)]
        );
        // Ties break toward the lower index.
        let t = coconet_tensor::Tensor::full([4], DType::F32, 1.0);
        let c = sparsify_top_k(&t, 2);
        assert_eq!(c.entries().map(|(i, _)| i).collect::<Vec<_>>(), vec![0, 1]);
        // k >= n keeps everything (lossless).
        let all = sparsify_top_k(&t, 10);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn error_feedback_carries_dropped_mass() {
        let grad =
            coconet_tensor::Tensor::from_f32([4], DType::F32, &[3.0, 0.5, -2.0, 0.25]).unwrap();
        let mut ef = ErrorFeedback::new();
        let corrected = ef.inject(&grad);
        assert_eq!(corrected.to_f32_vec(), grad.to_f32_vec());
        let sent = sparsify_top_k(&corrected, 2); // keeps 3.0 and -2.0
        ef.absorb(&corrected, &sent);
        assert_eq!(
            ef.residual().unwrap().to_f32_vec(),
            vec![0.0, 0.5, 0.0, 0.25]
        );
        // Next iteration: the residual rides along.
        let next = ef.inject(&grad);
        assert_eq!(next.to_f32_vec(), vec![3.0, 1.0, -2.0, 0.5]);
        // Scaled absorption accumulates.
        let extra = SparseChunk::new(4, vec![1], vec![2.0]).unwrap();
        ef.absorb_scaled(&extra, 0.5);
        assert_eq!(ef.residual().unwrap().get(1), 0.5 + 1.0);
    }

    #[test]
    fn fixed_point_pinned_edge_cases() {
        // Saturation: past ±i32::MAX/2^16 ≈ ±32768 the cast clamps.
        assert_eq!(quantize_value(1.0e9), i32::MAX);
        assert_eq!(quantize_value(-1.0e9), i32::MIN);
        assert_eq!(quantize_value(f32::INFINITY), i32::MAX);
        assert_eq!(quantize_value(f32::NEG_INFINITY), i32::MIN);
        // NaN maps to zero (the `as` cast's defined behavior).
        assert_eq!(quantize_value(f32::NAN), 0);
        // Subnormals and anything below half a step flush to zero.
        assert_eq!(quantize_value(f32::MIN_POSITIVE / 2.0), 0);
        assert_eq!(quantize_value(0.4 / FIXED_POINT_SCALE), 0);
        // ...and half a step rounds away from zero.
        assert_eq!(quantize_value(0.5 / FIXED_POINT_SCALE), 1);
        assert_eq!(quantize_value(-0.5 / FIXED_POINT_SCALE), -1);
        // Exact lattice points round-trip exactly.
        assert_eq!(dequantize_value(quantize_value(1.0)), 1.0);
        assert_eq!(dequantize_value(quantize_value(-2.5)), -2.5);
        assert_eq!(dequantize_value(0), 0.0);
        assert_eq!(FIXED_POINT_SCALE, 65536.0);
    }

    #[test]
    fn quant_chunk_aggregates_with_saturation() {
        let a = Tensor::from_f32([3], DType::F32, &[1.0, -2.0, 30000.0]).unwrap();
        let b = Tensor::from_f32([3], DType::F32, &[0.5, -2.0, 30000.0]).unwrap();
        let mut qa = QuantChunk::quantize(&a);
        let qb = QuantChunk::quantize(&b);
        assert_eq!(qa.len(), 3);
        assert_eq!(qa.wire_bytes(), 12);
        assert_eq!(qa.scale(), FIXED_POINT_SCALE);
        qa.accumulate(&qb, ReduceOp::Sum);
        let sum = qa.dequantize(DType::F32);
        assert_eq!(sum.get(0), 1.5);
        assert_eq!(sum.get(1), -4.0);
        // 60000 exceeds the ±32768 fixed-point range: the saturating
        // add clamps instead of wrapping to a negative value.
        assert!(
            sum.get(2) > 32000.0,
            "saturated, not wrapped: {}",
            sum.get(2)
        );
        // Min/Max commute with the (monotone) quantization.
        let mut qmin = QuantChunk::quantize(&a);
        qmin.accumulate(&QuantChunk::quantize(&b), ReduceOp::Min);
        assert_eq!(qmin.dequantize(DType::F32).get(0), 0.5);
        let mut qmax = QuantChunk::quantize(&a);
        qmax.accumulate(&QuantChunk::quantize(&b), ReduceOp::Max);
        assert_eq!(qmax.dequantize(DType::F32).get(0), 1.0);
    }

    #[test]
    fn switch_volume_is_constant_in_worker_count() {
        let n = 1u64 << 24;
        let expected = 2 * n * 4;
        assert_eq!(switch_all_reduce_wire_bytes(n), expected);
        // The per-worker ring volume grows with p toward 2n·ds; the
        // switch volume is the same expression at every p.
        for p in [2u64, 8, 32, 256] {
            assert!(switch_all_reduce_wire_bytes(n) == expected, "p = {p}");
            let ring = dense_ring_all_reduce_wire_bytes(n, p, DType::F32);
            assert!(ring <= expected, "dense F32 ring never exceeds 2n words");
        }
    }

    proptest! {
        /// Fixed-point round-trip: within 1/2^16 absolute error for
        /// gradient-scale magnitudes (half a quantization step plus at
        /// most half a step of f32 multiply rounding).
        #[test]
        fn fixed_point_round_trip_within_one_step(v in -128.0f32..128.0) {
            let rt = dequantize_value(quantize_value(v));
            prop_assert!(
                (rt - v).abs() <= 1.0 / FIXED_POINT_SCALE,
                "round-trip {v} -> {rt}"
            );
        }

        /// Quantization is monotone — the property that makes Min/Max
        /// switch reductions sound.
        #[test]
        fn quantization_is_monotone(a in -40000.0f32..40000.0, b in -40000.0f32..40000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantize_value(lo) <= quantize_value(hi));
        }

        /// Sparsify keeps exactly min(k, n) entries and they dominate
        /// everything it dropped.
        #[test]
        fn sparsify_keeps_the_largest(
            values in prop::collection::vec(-100.0f32..100.0, 1..64),
            k in 1usize..16,
        ) {
            let n = values.len();
            let t = coconet_tensor::Tensor::from_f32([n], DType::F32, &values).unwrap();
            let c = sparsify_top_k(&t, k);
            prop_assert_eq!(c.len(), k.min(n));
            let kept: std::collections::HashSet<u32> = c.entries().map(|(i, _)| i).collect();
            let min_kept = c
                .entries()
                .map(|(_, v)| ordered(v.abs()))
                .min()
                .unwrap();
            for (i, &v) in values.iter().enumerate() {
                if !kept.contains(&(i as u32)) {
                    prop_assert!(ordered(v.abs()) <= min_kept);
                }
            }
        }

        /// The switchover is consistent with the raw byte counts.
        #[test]
        fn switchover_matches_byte_comparison(
            log_n in 4u32..24,
            p in 2u64..17,
            k_permille in 1u16..1000,
        ) {
            let n = 1u64 << log_n;
            let k = WireFormat::TopK { k_permille }.k_for(n);
            let sparse = sparse_all_reduce_wire_bytes(n, p, k);
            let dense = dense_ring_all_reduce_wire_bytes(n, p, DType::F32);
            prop_assert_eq!(sparse_beats_dense(n, p, k, DType::F32), sparse < dense);
        }
    }
}
