//! Ring construction over a process group.
//!
//! NCCL's default algorithm for large AllReduce is the ring (§5.1 of
//! the paper; §5.3 describes how the overlapped MatMul is scheduled
//! against the ring's chunk order: rank *n* sends chunks starting from
//! chunk *n*). Rings are laid out node-major so that each ring crosses
//! the inter-node fabric the minimum number of times.

use crate::{Cluster, ProcessGroup, Rank};

/// A directed ring over the ranks of a process group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    order: Vec<Rank>,
}

impl Ring {
    /// Builds the canonical ring for `group` on `cluster`: ranks in
    /// ascending order, which is node-major for consecutive groups, so
    /// exactly one fabric crossing per adjacent node pair (plus the
    /// wrap-around).
    pub fn for_group(_cluster: &Cluster, group: &ProcessGroup) -> Ring {
        Ring {
            order: group.ranks().to_vec(),
        }
    }

    /// The ring order.
    pub fn order(&self) -> &[Rank] {
        &self.order
    }

    /// Ring length.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ring is empty (never true for well-formed groups).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The successor of `rank` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not on the ring.
    pub fn next(&self, rank: Rank) -> Rank {
        let i = self.position(rank);
        self.order[(i + 1) % self.order.len()]
    }

    /// The predecessor of `rank` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not on the ring.
    pub fn prev(&self, rank: Rank) -> Rank {
        let i = self.position(rank);
        self.order[(i + self.order.len() - 1) % self.order.len()]
    }

    /// The position of `rank` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not on the ring.
    pub fn position(&self, rank: Rank) -> usize {
        self.order
            .iter()
            .position(|&r| r == rank)
            .unwrap_or_else(|| panic!("rank {rank} not on ring"))
    }

    /// Number of ring edges that cross between nodes (inter-node hops).
    /// For a single-node ring this is 0; a ring over `n` full nodes has
    /// `n` crossings (including the wrap-around edge).
    pub fn inter_node_edges(&self, cluster: &Cluster) -> usize {
        let n = self.order.len();
        (0..n)
            .filter(|&i| {
                let a = self.order[i];
                let b = self.order[(i + 1) % n];
                !cluster.same_node(a, b)
            })
            .count()
    }

    /// The chunk index that `rank` sends first in a ring
    /// ReduceScatter/AllReduce (rank *n* starts from chunk *n*; §5.3).
    pub fn first_chunk_of(&self, rank: Rank) -> usize {
        self.position(rank)
    }

    /// The order in which `rank` sends chunks during the ReduceScatter
    /// phase: `position, position-1, ..., wrapping`. The overlapped
    /// MatMul produces chunks in exactly this order.
    pub fn chunk_send_order(&self, rank: Rank) -> Vec<usize> {
        let n = self.order.len();
        let start = self.position(rank);
        (0..n).map(|s| (start + n - s) % n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSpec;

    fn two_node_cluster() -> Cluster {
        Cluster::new(MachineSpec::dgx2_cluster(2))
    }

    #[test]
    fn ring_order_and_neighbors() {
        let c = two_node_cluster();
        let ring = Ring::for_group(&c, &c.world());
        assert_eq!(ring.len(), 32);
        assert!(!ring.is_empty());
        assert_eq!(ring.next(0), 1);
        assert_eq!(ring.next(31), 0);
        assert_eq!(ring.prev(0), 31);
        assert_eq!(ring.position(5), 5);
    }

    #[test]
    fn inter_node_crossings() {
        let c = two_node_cluster();
        let ring = Ring::for_group(&c, &c.world());
        // Edge 15->16 and wrap-around 31->0 cross nodes.
        assert_eq!(ring.inter_node_edges(&c), 2);

        let groups = c.consecutive_groups(2);
        let intra = Ring::for_group(&c, &groups[0]);
        assert_eq!(intra.inter_node_edges(&c), 0);
    }

    #[test]
    fn chunk_send_order_starts_at_own_position() {
        let c = two_node_cluster();
        let group = ProcessGroup::range(0, 4);
        let ring = Ring::for_group(&c, &group);
        assert_eq!(ring.first_chunk_of(2), 2);
        // Rank 1 on a 4-ring sends chunks 1, 0, 3, 2 during RS.
        assert_eq!(ring.chunk_send_order(1), vec![1, 0, 3, 2]);
        // Every chunk appears exactly once.
        let mut order = ring.chunk_send_order(3);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not on ring")]
    fn foreign_rank_panics() {
        let c = two_node_cluster();
        let group = ProcessGroup::range(0, 4);
        Ring::for_group(&c, &group).position(9);
    }
}
