//! Hardware specifications.
//!
//! The paper's testbed (§6) is a cluster of 16 NVIDIA DGX-2 nodes:
//! 16 Tesla V100-32GB GPUs per node connected through six NVSwitches
//! with six 25 GB/s NVLinks per GPU, and 8 non-blocking 100 Gbps EDR
//! InfiniBand NICs per node. These structs carry the published numbers;
//! the simulator derives effective rates from them.

/// Compute/memory capabilities of a single GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"V100-SXM3-32GB"`.
    pub name: String,
    /// Peak FP16 tensor-core throughput in FLOP/s.
    pub fp16_flops: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Peak device-memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA kernel launch + scheduling overhead in seconds.
    pub launch_overhead: f64,
}

impl GpuSpec {
    /// The NVIDIA Tesla V100-SXM3 32 GB used throughout the paper.
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "V100-SXM3-32GB".to_string(),
            fp16_flops: 125e12,
            fp32_flops: 15.7e12,
            mem_bw: 900e9,
            mem_bytes: 32 * (1 << 30),
            sm_count: 80,
            launch_overhead: 5e-6,
        }
    }
}

/// Interconnect capabilities of a node and of the fabric between nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectSpec {
    /// NVLink bandwidth per GPU in bytes/s (all links combined, one
    /// direction). Six 25 GB/s links on a DGX-2 V100.
    pub nvlink_bw_per_gpu: f64,
    /// One-hop NVLink/NVSwitch latency in seconds.
    pub nvlink_latency: f64,
    /// Aggregate InfiniBand bandwidth per node in bytes/s
    /// (8 x 100 Gbps EDR on a DGX-2).
    pub ib_bw_per_node: f64,
    /// One-hop InfiniBand latency in seconds.
    pub ib_latency: f64,
    /// Number of IB NICs per node (each NCCL channel binds to one).
    pub nics_per_node: u32,
}

impl InterconnectSpec {
    /// The DGX-2 interconnect: NVSwitch intra-node, 8x EDR inter-node.
    pub fn dgx2() -> InterconnectSpec {
        InterconnectSpec {
            nvlink_bw_per_gpu: 6.0 * 25e9,
            nvlink_latency: 1.5e-6,
            ib_bw_per_node: 8.0 * 12.5e9,
            ib_latency: 4e-6,
            nics_per_node: 8,
        }
    }

    /// InfiniBand bandwidth available to a single NIC (one channel).
    pub fn ib_bw_per_nic(&self) -> f64 {
        self.ib_bw_per_node / f64::from(self.nics_per_node)
    }
}

/// A homogeneous cluster: `nodes` identical nodes of `gpus_per_node`
/// GPUs each.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Per-GPU capabilities.
    pub gpu: GpuSpec,
    /// Link capabilities.
    pub interconnect: InterconnectSpec,
    /// GPUs per node (16 on a DGX-2).
    pub gpus_per_node: usize,
    /// Number of nodes.
    pub nodes: usize,
}

impl MachineSpec {
    /// A cluster of DGX-2 nodes, the paper's testbed shape.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn dgx2_cluster(nodes: usize) -> MachineSpec {
        assert!(nodes > 0, "a cluster needs at least one node");
        MachineSpec {
            gpu: GpuSpec::v100(),
            interconnect: InterconnectSpec::dgx2(),
            gpus_per_node: 16,
            nodes,
        }
    }

    /// The paper's full 16-node, 256-GPU testbed.
    pub fn paper_testbed() -> MachineSpec {
        MachineSpec::dgx2_cluster(16)
    }

    /// Total number of GPUs (= ranks).
    pub fn world_size(&self) -> usize {
        self.gpus_per_node * self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_numbers() {
        let g = GpuSpec::v100();
        assert_eq!(g.fp16_flops, 125e12);
        assert_eq!(g.mem_bytes, 32 * 1024 * 1024 * 1024);
        assert!(g.launch_overhead > 0.0);
    }

    #[test]
    fn dgx2_interconnect() {
        let i = InterconnectSpec::dgx2();
        assert_eq!(i.nvlink_bw_per_gpu, 150e9);
        assert_eq!(i.ib_bw_per_node, 100e9);
        assert_eq!(i.ib_bw_per_nic(), 12.5e9);
        assert!(i.ib_latency > i.nvlink_latency);
    }

    #[test]
    fn cluster_sizes() {
        assert_eq!(MachineSpec::dgx2_cluster(1).world_size(), 16);
        assert_eq!(MachineSpec::paper_testbed().world_size(), 256);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        MachineSpec::dgx2_cluster(0);
    }
}
