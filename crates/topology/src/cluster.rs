//! Ranks, nodes, and process groups.
//!
//! Following the paper's MPI terminology (§2): `RANK` is a process ID,
//! a `GROUP` is a set of concurrent processes over *consecutive* ranks,
//! and `WORLD` is the group of all processes.

use std::fmt;

use crate::MachineSpec;

/// A process identifier (one per GPU).
pub type Rank = usize;

/// A cluster instance: a [`MachineSpec`] with rank-to-device mapping.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    spec: MachineSpec,
}

impl Cluster {
    /// Creates a cluster from a machine specification.
    pub fn new(spec: MachineSpec) -> Cluster {
        Cluster { spec }
    }

    /// The underlying machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.spec.world_size()
    }

    /// The group of all ranks (`WORLD`).
    pub fn world(&self) -> ProcessGroup {
        ProcessGroup::new((0..self.world_size()).collect())
            .expect("world is non-empty and consecutive")
    }

    /// The node index hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: Rank) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank / self.spec.gpus_per_node
    }

    /// The GPU index of `rank` within its node.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn local_index(&self, rank: Rank) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank % self.spec.gpus_per_node
    }

    /// Whether two ranks share a node (communicate over NVLink rather
    /// than InfiniBand).
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Divides the world into `n` equal groups of consecutive ranks
    /// (the paper's `GROUP`s, used by pipeline parallelism in §4).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not divide the world size.
    pub fn consecutive_groups(&self, n: usize) -> Vec<ProcessGroup> {
        let world = self.world_size();
        assert!(
            n > 0 && world.is_multiple_of(n),
            "cannot divide {world} ranks into {n} equal groups"
        );
        let per = world / n;
        (0..n)
            .map(|g| {
                ProcessGroup::new((g * per..(g + 1) * per).collect())
                    .expect("non-empty consecutive range")
            })
            .collect()
    }

    /// Number of distinct nodes a group's ranks span.
    pub fn nodes_spanned(&self, group: &ProcessGroup) -> usize {
        let mut nodes: Vec<usize> = group.ranks().iter().map(|&r| self.node_of(r)).collect();
        nodes.dedup();
        nodes.len()
    }

    /// The group of all ranks on one node — the intra-node ring of the
    /// hierarchical collective algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_group(&self, node: usize) -> ProcessGroup {
        assert!(node < self.spec.nodes, "node {node} out of range");
        ProcessGroup::range(node * self.spec.gpus_per_node, self.spec.gpus_per_node)
    }

    /// One leader rank per node (each node's first rank) — the
    /// participants of the hierarchical algorithm's inter-node
    /// exchange.
    pub fn node_leaders(&self) -> Vec<Rank> {
        (0..self.spec.nodes)
            .map(|n| n * self.spec.gpus_per_node)
            .collect()
    }

    /// Whether `rank` is its node's leader.
    pub fn is_node_leader(&self, rank: Rank) -> bool {
        self.local_index(rank) == 0
    }
}

/// A set of consecutive ranks participating in a collective.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProcessGroup {
    ranks: Vec<Rank>,
}

/// Error constructing a [`ProcessGroup`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupError {
    /// The rank list was empty.
    Empty,
    /// The rank list was not consecutive and ascending.
    NotConsecutive,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::Empty => write!(f, "process group must not be empty"),
            GroupError::NotConsecutive => {
                write!(f, "process group ranks must be consecutive and ascending")
            }
        }
    }
}

impl std::error::Error for GroupError {}

impl ProcessGroup {
    /// Creates a group from a list of consecutive ascending ranks.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError`] when the list is empty or not consecutive
    /// (the paper restricts groups to consecutive ranks, §2).
    pub fn new(ranks: Vec<Rank>) -> Result<ProcessGroup, GroupError> {
        if ranks.is_empty() {
            return Err(GroupError::Empty);
        }
        if ranks.windows(2).any(|w| w[1] != w[0] + 1) {
            return Err(GroupError::NotConsecutive);
        }
        Ok(ProcessGroup { ranks })
    }

    /// A group covering `start..start + size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn range(start: Rank, size: usize) -> ProcessGroup {
        assert!(size > 0, "process group must not be empty");
        ProcessGroup {
            ranks: (start..start + size).collect(),
        }
    }

    /// The member ranks, ascending.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The lowest member rank.
    pub fn first(&self) -> Rank {
        self.ranks[0]
    }

    /// Whether `rank` belongs to the group.
    pub fn contains(&self, rank: Rank) -> bool {
        rank >= self.ranks[0] && rank <= *self.ranks.last().expect("non-empty")
    }

    /// The position of `rank` within the group (its group-relative ID).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not a member.
    pub fn index_of(&self, rank: Rank) -> usize {
        assert!(self.contains(rank), "rank {rank} not in group");
        rank - self.ranks[0]
    }

    /// The rank at group-relative position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size()`.
    pub fn rank_at(&self, index: usize) -> Rank {
        self.ranks[index]
    }
}

impl fmt::Display for ProcessGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group[{}..{}]",
            self.ranks[0],
            self.ranks.last().expect("non-empty") + 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSpec;

    fn cluster() -> Cluster {
        Cluster::new(MachineSpec::dgx2_cluster(2))
    }

    #[test]
    fn rank_to_node_mapping() {
        let c = cluster();
        assert_eq!(c.world_size(), 32);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(15), 0);
        assert_eq!(c.node_of(16), 1);
        assert_eq!(c.local_index(17), 1);
        assert!(c.same_node(3, 12));
        assert!(!c.same_node(15, 16));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        cluster().node_of(32);
    }

    #[test]
    fn world_and_groups() {
        let c = cluster();
        let w = c.world();
        assert_eq!(w.size(), 32);
        assert_eq!(w.first(), 0);
        let groups = c.consecutive_groups(2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].ranks(), (0..16).collect::<Vec<_>>());
        assert_eq!(groups[1].first(), 16);
        assert_eq!(c.nodes_spanned(&groups[0]), 1);
        assert_eq!(c.nodes_spanned(&c.world()), 2);
    }

    #[test]
    #[should_panic(expected = "equal groups")]
    fn uneven_groups_panic() {
        cluster().consecutive_groups(3);
    }

    #[test]
    fn node_groups_and_leaders() {
        let c = cluster();
        let n0 = c.node_group(0);
        assert_eq!(n0.ranks(), (0..16).collect::<Vec<_>>());
        assert_eq!(c.node_group(1).first(), 16);
        assert_eq!(c.node_leaders(), vec![0, 16]);
        assert!(c.is_node_leader(16));
        assert!(!c.is_node_leader(17));
        // Leaders are exactly the first rank of each node group.
        for (&leader, node) in c.node_leaders().iter().zip(0..) {
            assert_eq!(c.node_group(node).first(), leader);
            assert_eq!(c.local_index(leader), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_group_panics() {
        cluster().node_group(2);
    }

    #[test]
    fn group_construction_rules() {
        assert!(ProcessGroup::new(vec![]).is_err());
        assert!(ProcessGroup::new(vec![1, 3]).is_err());
        assert!(ProcessGroup::new(vec![2, 1]).is_err());
        let g = ProcessGroup::new(vec![4, 5, 6]).unwrap();
        assert_eq!(g.size(), 3);
        assert!(g.contains(5));
        assert!(!g.contains(7));
        assert_eq!(g.index_of(6), 2);
        assert_eq!(g.rank_at(0), 4);
        assert_eq!(g.to_string(), "group[4..7]");
    }

    #[test]
    fn group_range() {
        let g = ProcessGroup::range(8, 4);
        assert_eq!(g.ranks(), &[8, 9, 10, 11]);
    }
}
