//! # coconet-topology
//!
//! Cluster topology substrate for the CoCoNet reproduction: hardware
//! specifications (V100 GPUs, DGX-2 nodes, NVLink/NVSwitch and
//! InfiniBand fabrics), rank/node maps, process groups, and ring
//! construction.
//!
//! The performance simulator (`coconet-sim`) derives collective costs
//! from these specs; the functional runtime (`coconet-runtime`) uses the
//! group/ring structure for its real data movement.
//!
//! # Examples
//!
//! ```
//! use coconet_topology::{Cluster, MachineSpec, Ring};
//!
//! let cluster = Cluster::new(MachineSpec::dgx2_cluster(2));
//! assert_eq!(cluster.world_size(), 32);
//! let ring = Ring::for_group(&cluster, &cluster.world());
//! // One crossing into node 1 and one wrap-around crossing back.
//! assert_eq!(ring.inter_node_edges(&cluster), 2);
//! ```

#![warn(missing_docs)]

mod cluster;
mod ring;
mod specs;

pub use cluster::{Cluster, GroupError, ProcessGroup, Rank};
pub use ring::Ring;
pub use specs::{GpuSpec, InterconnectSpec, MachineSpec};
