//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! format): one process (`pid`) per rank, one thread (`tid`) per
//! stripe lane, kernel-pool workers grouped under their own process
//! with one tid per worker thread.
//!
//! Spans become `"ph": "X"` complete events, instants become
//! `"ph": "i"` thread-scoped instants; timestamps and durations are
//! microseconds with nanosecond precision kept in the fraction.
//! Metadata events name every process and thread. The document is a
//! single `{"traceEvents": [...]}` object, the strictest of the
//! format's accepted containers — and the one the in-repo JSON parser
//! (and CI's `trace_check`) validates.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{Event, RANK_UNATTRIBUTED};

/// The `pid` the kernel-pool workers (and any other unattributed
/// thread) are grouped under; real ranks use their rank as pid, and
/// real-world rank counts stay far below this.
pub const POOL_PID: u64 = 1_000_000;

fn pid_tid(ev: &Event) -> (u64, u64) {
    if ev.rank == RANK_UNATTRIBUTED {
        (POOL_PID, u64::from(ev.thread))
    } else {
        (u64::from(ev.rank), u64::from(ev.lane))
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_meta(out: &mut String, name: &str, pid: u64, tid: u64, value: &str) {
    let _ = write!(
        out,
        "    {{\"ph\": \"M\", \"name\": \"{name}\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \""
    );
    escape(value, out);
    out.push_str("\"}},\n");
}

/// Renders `events` as a Chrome trace-event JSON document. The result
/// loads directly in Perfetto (`ui.perfetto.dev`) or
/// `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\n  \"traceEvents\": [\n");

    // Process/thread name metadata first, one entry per distinct id.
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut tids: BTreeSet<(u64, u64)> = BTreeSet::new();
    for ev in events {
        let (pid, tid) = pid_tid(ev);
        pids.insert(pid);
        tids.insert((pid, tid));
    }
    for &pid in &pids {
        let name = if pid == POOL_PID {
            "kernel-pool".to_string()
        } else {
            format!("rank {pid}")
        };
        push_meta(&mut out, "process_name", pid, 0, &name);
    }
    for &(pid, tid) in &tids {
        let name = if pid == POOL_PID {
            format!("worker {tid}")
        } else {
            format!("lane {tid}")
        };
        push_meta(&mut out, "thread_name", pid, tid, &name);
    }

    for (i, ev) in events.iter().enumerate() {
        let (pid, tid) = pid_tid(ev);
        let ts_us = ev.ts_ns as f64 / 1e3;
        out.push_str("    {\"name\": \"");
        escape(ev.label, &mut out);
        let _ = write!(
            out,
            "\", \"cat\": \"{}\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts_us:.3}, ",
            ev.kind.name()
        );
        if ev.dur_ns == 0 {
            out.push_str("\"ph\": \"i\", \"s\": \"t\", ");
        } else {
            let _ = write!(
                out,
                "\"ph\": \"X\", \"dur\": {:.3}, ",
                ev.dur_ns as f64 / 1e3
            );
        }
        let _ = write!(out, "\"args\": {{\"a\": {}, \"b\": {}}}}}", ev.a, ev.b);
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    // Trailing-comma fixup when there were metadata rows but no
    // events: the format (and our parser) rejects `[x,]`.
    if events.is_empty() && out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(kind: EventKind, rank: u32, lane: u32, ts: u64, dur: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            kind,
            label: "t\"est",
            rank,
            lane,
            thread: 7,
            a: 1,
            b: 2,
        }
    }

    #[test]
    fn emits_complete_and_instant_phases_with_metadata() {
        let doc = chrome_trace_json(&[
            ev(EventKind::Compute, 0, 0, 1_000, 2_000),
            ev(EventKind::Hop, 0, 3, 1_500, 0),
            ev(EventKind::Kernel, RANK_UNATTRIBUTED, 0, 2_000, 500),
        ]);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ph\": \"i\""));
        assert!(doc.contains("\"ts\": 1.000"));
        assert!(doc.contains("\"dur\": 2.000"));
        assert!(doc.contains("rank 0"));
        assert!(doc.contains("lane 3"));
        assert!(doc.contains("kernel-pool"));
        assert!(doc.contains("worker 7"));
        assert!(doc.contains("t\\\"est"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = chrome_trace_json(&[]);
        assert!(doc.contains("\"traceEvents\": [\n  ]"));
    }
}
