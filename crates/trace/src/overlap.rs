//! The overlap profiler: how much collective wall-time hid under
//! compute, computed purely from recorded spans.
//!
//! Per rank, two interval unions are built:
//!
//! - **communication in-flight time** — for every scheduled job, the
//!   interval from its first serviced [`Hop`](crate::EventKind::Hop)
//!   to its [`SchedComplete`](crate::EventKind::SchedComplete), plus
//!   every blocking
//!   [`CollectivePhase`](crate::EventKind::CollectivePhase) span;
//! - **compute time** — the union of
//!   [`Compute`](crate::EventKind::Compute) spans.
//!
//! The *hidden* communication is the intersection of the two unions:
//! fabric progress that cost no critical-path time because the rank
//! was computing anyway. Under a barriered schedule every hop is
//! serviced inside a blocking drain after compute, so the hidden
//! fraction is structurally ~0; under priority streaming, jobs stay
//! in flight across the next iteration's kernels and the fraction
//! climbs — the measurable form of the paper's overlap thesis.

use std::collections::HashMap;

use crate::{Event, EventKind, RANK_UNATTRIBUTED};

/// Half-open interval in nanoseconds.
type Iv = (u64, u64);

/// Sorts and merges intervals into a disjoint union.
fn merge(mut ivs: Vec<Iv>) -> Vec<Iv> {
    ivs.retain(|&(s, e)| e > s);
    ivs.sort_unstable();
    let mut out: Vec<Iv> = Vec::with_capacity(ivs.len());
    for (s, e) in ivs {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint union.
fn total(ivs: &[Iv]) -> u64 {
    ivs.iter().map(|&(s, e)| e - s).sum()
}

/// Length of the intersection of two disjoint unions (two-pointer
/// sweep).
fn intersection(a: &[Iv], b: &[Iv]) -> u64 {
    let (mut i, mut j, mut acc) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// One rank's overlap accounting.
#[derive(Clone, Copy, Debug)]
pub struct RankOverlap {
    /// The rank.
    pub rank: u32,
    /// Seconds of communication in-flight time (union).
    pub comm_busy_s: f64,
    /// Seconds of that time overlapped with compute spans.
    pub hidden_s: f64,
    /// Seconds of compute (union).
    pub compute_s: f64,
}

/// Aggregated overlap accounting across ranks.
#[derive(Clone, Debug)]
pub struct OverlapSummary {
    /// Per-rank rows, ascending rank.
    pub per_rank: Vec<RankOverlap>,
    /// Summed communication in-flight seconds.
    pub comm_busy_s: f64,
    /// Summed hidden seconds.
    pub hidden_s: f64,
}

impl OverlapSummary {
    /// The fraction of collective wall-time hidden under compute
    /// (0 when no communication was recorded).
    #[must_use]
    pub fn hidden_fraction(&self) -> f64 {
        if self.comm_busy_s > 0.0 {
            self.hidden_s / self.comm_busy_s
        } else {
            0.0
        }
    }
}

/// Computes the overlap summary from a span snapshot. Events from
/// unattributed threads (the kernel pool) are ignored — overlap is a
/// per-rank property.
#[must_use]
pub fn hidden_comm_fraction(events: &[Event]) -> OverlapSummary {
    // (rank, job) -> (first hop ts, last hop ts, complete ts)
    let mut jobs: HashMap<(u32, u64), (u64, u64, Option<u64>)> = HashMap::new();
    let mut compute: HashMap<u32, Vec<Iv>> = HashMap::new();
    let mut comm: HashMap<u32, Vec<Iv>> = HashMap::new();
    for ev in events {
        if ev.rank == RANK_UNATTRIBUTED {
            continue;
        }
        match ev.kind {
            EventKind::Compute => compute
                .entry(ev.rank)
                .or_default()
                .push((ev.ts_ns, ev.end_ns())),
            EventKind::CollectivePhase => {
                comm.entry(ev.rank)
                    .or_default()
                    .push((ev.ts_ns, ev.end_ns()));
            }
            // Blocking-path hops carry [`JOB_NONE`](crate::JOB_NONE);
            // their time is covered by the enclosing phase span.
            EventKind::Hop if ev.a != crate::JOB_NONE => {
                let slot = jobs
                    .entry((ev.rank, ev.a))
                    .or_insert((ev.ts_ns, ev.ts_ns, None));
                slot.0 = slot.0.min(ev.ts_ns);
                slot.1 = slot.1.max(ev.ts_ns);
            }
            EventKind::SchedComplete => {
                let slot = jobs
                    .entry((ev.rank, ev.a))
                    .or_insert((ev.ts_ns, ev.ts_ns, None));
                slot.2 = Some(ev.ts_ns);
            }
            _ => {}
        }
    }
    for (&(rank, _), &(first, last, complete)) in &jobs {
        let end = complete.unwrap_or(last).max(last);
        comm.entry(rank).or_default().push((first, end));
    }

    let mut ranks: Vec<u32> = comm.keys().chain(compute.keys()).copied().collect();
    ranks.sort_unstable();
    ranks.dedup();

    let mut per_rank = Vec::with_capacity(ranks.len());
    let (mut busy_total, mut hidden_total) = (0.0, 0.0);
    for rank in ranks {
        let c = merge(comm.remove(&rank).unwrap_or_default());
        let k = merge(compute.remove(&rank).unwrap_or_default());
        let busy = total(&c) as f64 / 1e9;
        let hidden = intersection(&c, &k) as f64 / 1e9;
        busy_total += busy;
        hidden_total += hidden;
        per_rank.push(RankOverlap {
            rank,
            comm_busy_s: busy,
            hidden_s: hidden,
            compute_s: total(&k) as f64 / 1e9,
        });
    }
    OverlapSummary {
        per_rank,
        comm_busy_s: busy_total,
        hidden_s: hidden_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, rank: u32, ts: u64, dur: u64, a: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            kind,
            label: "t",
            rank,
            lane: 0,
            thread: 0,
            a,
            b: 1,
        }
    }

    #[test]
    fn interval_algebra() {
        let u = merge(vec![(5, 9), (0, 3), (2, 4), (9, 9)]);
        assert_eq!(u, vec![(0, 4), (5, 9)]);
        assert_eq!(total(&u), 8);
        assert_eq!(intersection(&u, &[(3, 6)]), 2);
        assert_eq!(intersection(&u, &[(10, 20)]), 0);
    }

    #[test]
    fn job_in_flight_overlapping_compute_is_hidden() {
        // Job 7: first hop at 100, complete at 300; compute 200..400.
        let events = [
            ev(EventKind::Hop, 0, 100, 0, 7),
            ev(EventKind::Hop, 0, 250, 0, 7),
            ev(EventKind::SchedComplete, 0, 300, 0, 7),
            ev(EventKind::Compute, 0, 200, 200, 1),
        ];
        let s = hidden_comm_fraction(&events);
        assert_eq!(s.per_rank.len(), 1);
        assert!((s.comm_busy_s - 200e-9).abs() < 1e-15);
        assert!((s.hidden_s - 100e-9).abs() < 1e-15);
        assert!((s.hidden_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn blocking_phases_outside_compute_hide_nothing() {
        let events = [
            ev(EventKind::Compute, 0, 0, 100, 1),
            ev(EventKind::CollectivePhase, 0, 100, 50, 1),
        ];
        let s = hidden_comm_fraction(&events);
        assert!((s.hidden_fraction()).abs() < 1e-12);
        assert!(s.comm_busy_s > 0.0);
    }
}
