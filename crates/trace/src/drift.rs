//! Sim-vs-measured drift: aligns a predicted per-step timeline (the
//! simulator's `PlanTime` steps) with measured per-step times derived
//! from the trace, and reports per-step relative error.
//!
//! The autotuner trusts the cost model for every configuration it
//! never runs; this report is the standing check that the model's
//! per-step predictions track measured reality — not in absolute
//! seconds (the sim models the paper's testbed, the bench runs on a
//! CI box) but in *shape*: a step the sim calls expensive should be
//! expensive on the wall clock too. The aligner is deliberately
//! generic over `(label, seconds)` pairs so it has no dependency on
//! the sim crate (this crate sits at the bottom of the workspace
//! graph).

/// One aligned step.
#[derive(Clone, Debug)]
pub struct StepDrift {
    /// The step label shared by both timelines.
    pub label: String,
    /// The simulator's predicted seconds.
    pub predicted_s: f64,
    /// The traced measured seconds.
    pub measured_s: f64,
    /// `|measured − scaled prediction| / scaled prediction`, where
    /// the prediction is scaled by the whole-timeline ratio first (so
    /// the report measures shape error, not testbed-vs-CI-box speed).
    pub rel_err: f64,
}

/// The aligned drift report.
#[derive(Clone, Debug)]
pub struct DriftReport {
    /// Aligned steps, in predicted-timeline order.
    pub steps: Vec<StepDrift>,
    /// Labels present in exactly one timeline (alignment failures).
    pub unmatched: Vec<String>,
    /// The measured-over-predicted total-time ratio used to scale
    /// predictions before comparing shapes.
    pub scale: f64,
}

impl DriftReport {
    /// Mean absolute per-step relative error.
    #[must_use]
    pub fn mean_abs_rel_err(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.rel_err).sum::<f64>() / self.steps.len() as f64
    }

    /// Largest per-step relative error.
    #[must_use]
    pub fn max_abs_rel_err(&self) -> f64 {
        self.steps.iter().map(|s| s.rel_err).fold(0.0, f64::max)
    }
}

/// Aligns `predicted` and `measured` `(label, seconds)` timelines by
/// label. Predictions are first scaled by the ratio of total measured
/// to total predicted time, so `rel_err` captures per-step *shape*
/// drift independent of the absolute speed gap between the modeled
/// testbed and the machine that ran the trace.
#[must_use]
pub fn drift_report(predicted: &[(String, f64)], measured: &[(String, f64)]) -> DriftReport {
    let lookup = |rows: &[(String, f64)], label: &str| {
        rows.iter().find(|(l, _)| l == label).map(|&(_, s)| s)
    };
    let matched: Vec<&(String, f64)> = predicted
        .iter()
        .filter(|(l, _)| lookup(measured, l).is_some())
        .collect();
    let pred_total: f64 = matched.iter().map(|(_, s)| s).sum();
    let meas_total: f64 = matched
        .iter()
        .filter_map(|(l, _)| lookup(measured, l))
        .sum();
    let scale = if pred_total > 0.0 {
        meas_total / pred_total
    } else {
        1.0
    };

    let mut steps = Vec::with_capacity(matched.len());
    for (label, pred) in matched {
        let meas = lookup(measured, label).expect("filtered to matched labels");
        let scaled = pred * scale;
        let rel_err = if scaled > 0.0 {
            (meas - scaled).abs() / scaled
        } else {
            f64::from(u8::from(meas > 0.0))
        };
        steps.push(StepDrift {
            label: label.clone(),
            predicted_s: *pred,
            measured_s: meas,
            rel_err,
        });
    }

    let mut unmatched: Vec<String> = predicted
        .iter()
        .filter(|(l, _)| lookup(measured, l).is_none())
        .map(|(l, _)| l.clone())
        .collect();
    unmatched.extend(
        measured
            .iter()
            .filter(|(l, _)| lookup(predicted, l).is_none())
            .map(|(l, _)| l.clone()),
    );

    DriftReport {
        steps,
        unmatched,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(l, s)| (l.to_string(), s)).collect()
    }

    #[test]
    fn identical_shapes_have_zero_drift() {
        // Measured is exactly 10x the prediction everywhere: pure
        // machine-speed difference, zero shape drift.
        let pred = rows(&[("a", 1.0), ("b", 2.0)]);
        let meas = rows(&[("a", 10.0), ("b", 20.0)]);
        let r = drift_report(&pred, &meas);
        assert_eq!(r.steps.len(), 2);
        assert!((r.scale - 10.0).abs() < 1e-12);
        assert!(r.mean_abs_rel_err() < 1e-12, "{r:?}");
        assert!(r.unmatched.is_empty());
    }

    #[test]
    fn shape_drift_is_reported_per_step() {
        let pred = rows(&[("a", 1.0), ("b", 1.0)]);
        let meas = rows(&[("a", 3.0), ("b", 1.0)]);
        let r = drift_report(&pred, &meas);
        // Scale 2.0; a: |3-2|/2 = 0.5, b: |1-2|/2 = 0.5.
        assert!((r.steps[0].rel_err - 0.5).abs() < 1e-12);
        assert!((r.steps[1].rel_err - 0.5).abs() < 1e-12);
        assert!((r.max_abs_rel_err() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unmatched_labels_are_surfaced() {
        let pred = rows(&[("a", 1.0), ("ghost", 1.0)]);
        let meas = rows(&[("a", 1.0), ("extra", 1.0)]);
        let r = drift_report(&pred, &meas);
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.unmatched, vec!["ghost".to_string(), "extra".to_string()]);
    }
}
