//! Execution tracing for the CoCoNet reproduction.
//!
//! The runtime's ledgers prove *what* moved and the completion log
//! proves *in what order* — this crate adds *when*. Every rank thread
//! (and every kernel-pool worker) owns a fixed-capacity, lock-free
//! span recorder; the runtime's hot paths emit structured [`Event`]s
//! for kernel launches, collective phases, per-hop sends, codec
//! invocations, scheduler decisions, and ready-epoch waits. On top of
//! the raw spans sit four consumers:
//!
//! - [`chrome`] — a Chrome trace-event JSON exporter
//!   (`chrome://tracing` / Perfetto-loadable; one pid per rank, one
//!   tid per stripe lane).
//! - [`metrics`] — a global registry of counters and log2-bucketed
//!   latency histograms summarizing span populations per run.
//! - [`overlap`] — the overlap profiler: the fraction of collective
//!   wall-time hidden under compute, from the spans alone.
//! - [`drift`] — the sim-vs-measured drift report aligning a
//!   predicted per-step timeline with traced actuals.
//!
//! # Recording discipline
//!
//! Tracing is **off by default** and a run with tracing disabled is
//! bit-identical to one with it enabled (the neutrality proptest in
//! `coconet-runtime` enforces this): recording never touches tensor
//! data, the wire, or the allocator ledger. The hot path is one
//! relaxed atomic load when disabled; when enabled, one bump of a
//! thread-local fixed-capacity buffer — no locks, no heap allocation.
//! Buffers that fill up count drops instead of growing. Compiling
//! with the `off` feature removes even the flag check.
//!
//! Snapshots ([`take_snapshot`]) and resets ([`clear`]) walk a global
//! registry of thread buffers under a mutex — the cold path only.
//! Both assume the traced threads are quiescent (joined or idle),
//! which the bench harness guarantees by snapshotting after
//! `run_ranks` returns.

#![warn(missing_docs)]

pub mod chrome;
pub mod drift;
pub mod metrics;
pub mod overlap;
pub mod wellformed;

use std::cell::{Cell, OnceCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events one thread can hold before further records are dropped
/// (drops are counted, never silent — see [`dropped_events`]).
pub const BUF_CAPACITY: usize = 1 << 14;

/// The `rank` stamped on events from threads that never called
/// [`set_thread_rank`] — kernel-pool workers, the test harness, etc.
pub const RANK_UNATTRIBUTED: u32 = u32::MAX;

/// The job id [`EventKind::Hop`] events carry when the send belongs
/// to a blocking collective rather than a scheduled job (job ids of
/// real scheduled jobs start at 0, so `0` cannot be the sentinel).
pub const JOB_NONE: u64 = u64::MAX;

/// What a trace event describes. The discriminant doubles as the
/// index into the [`metrics`] registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A `tensor::kernels` launch: a `parallel_for` dispatch on the
    /// calling thread, or one pool job on a worker. `a` = elements.
    Kernel = 0,
    /// An executor-level compute span (forward / backward / optimizer
    /// closure). `a` = layer, `b` = iteration.
    Compute = 1,
    /// A blocking collective phase (ring reduce-scatter, all-gather,
    /// switch fold, …). `a` = elements, `b` = group size.
    CollectivePhase = 2,
    /// One per-hop send (instant). `a` = job id (0 for blocking
    /// collectives), `b` = wire bytes; `lane` = stripe lane.
    Hop = 3,
    /// A codec invocation (FP16 encode/decode, top-k select/densify,
    /// Q15.16 quantize/dequantize). `a` = elements.
    Codec = 4,
    /// A scheduler admission: `a` = job id, `b` = priority class.
    SchedEnqueue = 5,
    /// A scheduler preemption decision: a less-preferred job made
    /// progress while a more-preferred one was blocked on the fabric.
    /// `a` = serviced job id, `b` = most-preferred (parked) job id.
    SchedPreempt = 6,
    /// A job completion: `a` = job id, `b` = priority class.
    SchedComplete = 7,
    /// A ready-epoch wait span in the stream executor: `a` = job id,
    /// `b` = layer.
    ReadyWait = 8,
}

/// Number of [`EventKind`] variants.
pub const EVENT_KINDS: usize = 9;

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::Kernel,
        EventKind::Compute,
        EventKind::CollectivePhase,
        EventKind::Hop,
        EventKind::Codec,
        EventKind::SchedEnqueue,
        EventKind::SchedPreempt,
        EventKind::SchedComplete,
        EventKind::ReadyWait,
    ];

    /// Index into per-kind tables.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (the Chrome export's `cat` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Kernel => "kernel",
            EventKind::Compute => "compute",
            EventKind::CollectivePhase => "collective",
            EventKind::Hop => "hop",
            EventKind::Codec => "codec",
            EventKind::SchedEnqueue => "sched_enqueue",
            EventKind::SchedPreempt => "sched_preempt",
            EventKind::SchedComplete => "sched_complete",
            EventKind::ReadyWait => "ready_wait",
        }
    }
}

/// One recorded event. `Copy` and heap-free by construction: the
/// label is a `&'static str`, payloads are two bare words whose
/// meaning depends on [`EventKind`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Start time, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; `0` marks an instant event.
    pub dur_ns: u64,
    /// What the event describes.
    pub kind: EventKind,
    /// Static label ("ring:rs", "fp16:encode", …).
    pub label: &'static str,
    /// Recording thread's rank, or [`RANK_UNATTRIBUTED`].
    pub rank: u32,
    /// Stripe lane (0 for unstriped work).
    pub lane: u32,
    /// Recording thread's registry index — distinguishes pool workers
    /// and lets consumers check per-thread invariants.
    pub thread: u32,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

impl Event {
    /// The instant the event was *recorded* (span close / instant
    /// emission) — per-thread monotone by construction.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

/// Whether recording is compiled in at all (the `off` feature strips
/// it).
const COMPILED_IN: bool = cfg!(not(feature = "off"));

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// One thread's fixed-capacity event buffer. Single-writer (the
/// owning thread), multi-reader via the release/acquire pair on
/// `len`: a slot is published before the length that covers it.
struct ThreadBuf {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    len: AtomicUsize,
    dropped: AtomicU64,
    rank: AtomicU32,
    thread: u32,
}

// SAFETY: slots are only written by the owning thread at indexes not
// yet published through `len`; readers only touch published indexes,
// ordered by the release store / acquire load on `len`.
unsafe impl Send for ThreadBuf {}
unsafe impl Sync for ThreadBuf {}

impl ThreadBuf {
    fn push(&self, mut ev: Event) {
        let n = self.len.load(Ordering::Relaxed);
        if n >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.rank = self.rank.load(Ordering::Relaxed);
        ev.thread = self.thread;
        // SAFETY: index `n` is unpublished, and only this thread
        // writes slots (single-writer invariant).
        unsafe { (*self.slots[n].get()).write(ev) };
        self.len.store(n + 1, Ordering::Release);
    }
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    static PENDING_RANK: Cell<u32> = const { Cell::new(RANK_UNATTRIBUTED) };
}

fn register_thread() -> Arc<ThreadBuf> {
    let slots: Box<[UnsafeCell<MaybeUninit<Event>>]> = (0..BUF_CAPACITY)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let buf = Arc::new(ThreadBuf {
        slots,
        len: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
        rank: AtomicU32::new(PENDING_RANK.get()),
        thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
    });
    REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .push(Arc::clone(&buf));
    buf
}

/// Nanoseconds since the process trace epoch (the first call pins the
/// epoch). Monotone; usable whether or not tracing is enabled.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns recording on or off globally. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on && COMPILED_IN, Ordering::Relaxed);
}

/// Whether recording is currently on.
#[must_use]
pub fn enabled() -> bool {
    COMPILED_IN && ENABLED.load(Ordering::Relaxed)
}

/// Attributes the calling thread's future events to `rank`. Called by
/// the fabric harness on every rank thread; cheap and allocation-free
/// while tracing is disabled (the buffer is only materialized on the
/// first recorded event).
pub fn set_thread_rank(rank: u32) {
    if !COMPILED_IN {
        return;
    }
    PENDING_RANK.set(rank);
    LOCAL.with(|cell| {
        if let Some(buf) = cell.get() {
            buf.rank.store(rank, Ordering::Relaxed);
        }
    });
}

/// The calling thread's registry index — the `thread` field its
/// events will carry. Registers the thread's buffer on first call
/// (with whatever rank [`set_thread_rank`] has pinned), so a harness
/// can collect the ids of the threads it spawned and filter a
/// [`take_snapshot`] down to them when other traced work shares the
/// process.
#[must_use]
pub fn thread_id() -> u32 {
    LOCAL.with(|cell| cell.get_or_init(register_thread).thread)
}

fn record(ev: Event) {
    if !enabled() {
        return;
    }
    metrics::observe(ev.kind, ev.dur_ns);
    LOCAL.with(|cell| cell.get_or_init(register_thread).push(ev));
}

/// Records an instant event (duration 0) on lane 0.
pub fn instant(kind: EventKind, label: &'static str, a: u64, b: u64) {
    instant_lane(kind, label, 0, a, b);
}

/// Records an instant event (duration 0) on an explicit stripe lane.
pub fn instant_lane(kind: EventKind, label: &'static str, lane: u32, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        ts_ns: now_ns(),
        dur_ns: 0,
        kind,
        label,
        rank: RANK_UNATTRIBUTED, // stamped by the buffer
        lane,
        thread: 0, // stamped by the buffer
        a,
        b,
    });
}

/// An RAII span: records one complete event covering its lifetime
/// when dropped. Construct via [`span`] / [`span_lane`]; a guard
/// built while tracing is disabled is inert (one branch at drop).
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    armed: bool,
    start_ns: u64,
    kind: EventKind,
    label: &'static str,
    lane: u32,
    a: u64,
    b: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let start = self.start_ns;
        record(Event {
            ts_ns: start,
            dur_ns: now_ns().saturating_sub(start),
            kind: self.kind,
            label: self.label,
            rank: RANK_UNATTRIBUTED, // stamped by the buffer
            lane: self.lane,
            thread: 0, // stamped by the buffer
            a: self.a,
            b: self.b,
        });
    }
}

/// Opens a span on lane 0. See [`Span`].
pub fn span(kind: EventKind, label: &'static str, a: u64, b: u64) -> Span {
    span_lane(kind, label, 0, a, b)
}

/// Opens a span on an explicit stripe lane. See [`Span`].
pub fn span_lane(kind: EventKind, label: &'static str, lane: u32, a: u64, b: u64) -> Span {
    let armed = enabled();
    Span {
        armed,
        start_ns: if armed { now_ns() } else { 0 },
        kind,
        label,
        lane,
        a,
        b,
    }
}

/// Copies every published event out of every registered thread
/// buffer, in per-thread record order (buffers concatenated in
/// registration order). Call with traced threads quiescent for a
/// consistent cut.
#[must_use]
pub fn take_snapshot() -> Vec<Event> {
    let regs = REGISTRY.lock().expect("trace registry poisoned");
    let mut out = Vec::new();
    for buf in regs.iter() {
        let n = buf.len.load(Ordering::Acquire);
        out.reserve(n);
        for slot in &buf.slots[..n] {
            // SAFETY: indexes below the acquired `len` are published
            // and never rewritten (clear() requires quiescence).
            out.push(unsafe { (*slot.get()).assume_init() });
        }
    }
    out
}

/// Resets every registered buffer (and the drop counters) to empty.
/// Buffers stay registered — live threads keep recording into them.
/// Requires traced threads to be quiescent, like [`take_snapshot`].
pub fn clear() {
    let regs = REGISTRY.lock().expect("trace registry poisoned");
    for buf in regs.iter() {
        buf.len.store(0, Ordering::Release);
        buf.dropped.store(0, Ordering::Relaxed);
    }
}

/// Total events dropped on full buffers since the last [`clear`].
#[must_use]
pub fn dropped_events() -> u64 {
    let regs = REGISTRY.lock().expect("trace registry poisoned");
    regs.iter().map(|b| b.dropped.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this binary share the global enable flag; serialize.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        clear();
        instant(EventKind::Hop, "noop", 1, 2);
        let _s = span(EventKind::Kernel, "noop", 0, 0);
        drop(_s);
        assert!(take_snapshot().is_empty());
        assert_eq!(dropped_events(), 0);
    }

    #[test]
    fn spans_and_instants_round_trip() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        clear();
        set_thread_rank(3);
        {
            let _outer = span(EventKind::Compute, "outer", 7, 8);
            instant_lane(EventKind::Hop, "h", 2, 42, 1024);
        }
        set_enabled(false);
        let events = take_snapshot();
        set_thread_rank(RANK_UNATTRIBUTED);
        assert_eq!(events.len(), 2);
        let hop = events.iter().find(|e| e.kind == EventKind::Hop).unwrap();
        assert_eq!((hop.rank, hop.lane, hop.a, hop.b), (3, 2, 42, 1024));
        assert_eq!(hop.dur_ns, 0);
        let outer = events
            .iter()
            .find(|e| e.kind == EventKind::Compute)
            .unwrap();
        assert_eq!(outer.label, "outer");
        assert!(outer.ts_ns <= hop.ts_ns && hop.ts_ns <= outer.end_ns());
    }

    #[test]
    fn overflow_counts_drops_instead_of_growing() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        clear();
        let before = dropped_events();
        std::thread::spawn(|| {
            for i in 0..(BUF_CAPACITY as u64 + 10) {
                instant(EventKind::Hop, "flood", i, 0);
            }
        })
        .join()
        .unwrap();
        set_enabled(false);
        assert_eq!(dropped_events() - before, 10);
        clear();
        assert_eq!(dropped_events(), 0);
    }
}
