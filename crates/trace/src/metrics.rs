//! The global metrics registry: per-[`EventKind`] counters and
//! log2-bucketed latency histograms, plus a handful of named byte
//! counters the ledger can publish into.
//!
//! Everything here is a static `AtomicU64` — zero allocation, no
//! locks, and (like the recorder) untouched unless tracing is
//! enabled. [`snapshot`] materializes the whole registry; [`reset`]
//! zeroes it between runs.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{EventKind, EVENT_KINDS};

/// Histogram buckets: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds `0..1` ns, i.e.
/// instants). 40 buckets span up to ~9 minutes.
pub const HIST_BUCKETS: usize = 40;

/// Named monotonic counters, for quantities that are not span
/// populations (published by the runtime's byte ledger).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Counter {
    /// Wire bytes sent (worker-attributed).
    WireBytes = 0,
    /// Emulated switch-dataplane bytes sent.
    SwitchBytes = 1,
    /// Bytes produced by wire codecs (encode outputs).
    CodecBytes = 2,
    /// Elements pushed through the kernel engine.
    KernelElems = 3,
}

/// Number of [`Counter`] slots.
pub const COUNTERS: usize = 4;

struct KindSlot {
    count: AtomicU64,
    total_ns: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

// Const-init template for the static tables below; the lint fires on
// any interior-mutable const, but this one is only ever used to
// *initialize* statics (the std-documented array-init pattern), never
// read through.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl KindSlot {
    #[allow(clippy::declare_interior_mutable_const)]
    const NEW: KindSlot = KindSlot {
        count: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        hist: [ZERO; HIST_BUCKETS],
    };
}

static SLOTS: [KindSlot; EVENT_KINDS] = [KindSlot::NEW; EVENT_KINDS];
static NAMED: [AtomicU64; COUNTERS] = [ZERO; COUNTERS];

fn bucket(dur_ns: u64) -> usize {
    if dur_ns == 0 {
        return 0;
    }
    ((64 - dur_ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Feeds one observation into the registry (called by the recorder
/// for every event while tracing is enabled).
pub(crate) fn observe(kind: EventKind, dur_ns: u64) {
    let slot = &SLOTS[kind.index()];
    slot.count.fetch_add(1, Ordering::Relaxed);
    slot.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
    slot.hist[bucket(dur_ns)].fetch_add(1, Ordering::Relaxed);
}

/// Adds `v` to a named counter. A no-op while tracing is disabled, so
/// publishing sites need no guards of their own.
pub fn add_counter(c: Counter, v: u64) {
    if !crate::enabled() {
        return;
    }
    NAMED[c as usize].fetch_add(v, Ordering::Relaxed);
}

/// Reads a named counter.
#[must_use]
pub fn counter(c: Counter) -> u64 {
    NAMED[c as usize].load(Ordering::Relaxed)
}

/// One kind's materialized statistics.
#[derive(Clone, Debug)]
pub struct KindStats {
    /// The kind the row describes.
    pub kind: EventKind,
    /// Events observed.
    pub count: u64,
    /// Summed durations, nanoseconds.
    pub total_ns: u64,
    /// Log2 duration histogram (see [`HIST_BUCKETS`]).
    pub hist: [u64; HIST_BUCKETS],
}

impl KindStats {
    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Approximate duration quantile (`q` in `[0, 1]`): the upper
    /// bound of the histogram bucket containing the `q`-th
    /// observation. 0 when the histogram is empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (HIST_BUCKETS - 1)
    }
}

/// The whole registry, materialized.
#[derive(Clone, Debug)]
pub struct MetricsSummary {
    /// One row per [`EventKind`], in discriminant order.
    pub kinds: Vec<KindStats>,
    /// The named counters, indexed by [`Counter`] discriminant.
    pub counters: [u64; COUNTERS],
}

impl MetricsSummary {
    /// The row for one kind.
    #[must_use]
    pub fn kind(&self, kind: EventKind) -> &KindStats {
        &self.kinds[kind.index()]
    }
}

/// Materializes the registry.
#[must_use]
pub fn snapshot() -> MetricsSummary {
    let kinds = EventKind::ALL
        .iter()
        .map(|&kind| {
            let slot = &SLOTS[kind.index()];
            let mut hist = [0u64; HIST_BUCKETS];
            for (h, a) in hist.iter_mut().zip(&slot.hist) {
                *h = a.load(Ordering::Relaxed);
            }
            KindStats {
                kind,
                count: slot.count.load(Ordering::Relaxed),
                total_ns: slot.total_ns.load(Ordering::Relaxed),
                hist,
            }
        })
        .collect();
    let mut counters = [0u64; COUNTERS];
    for (c, a) in counters.iter_mut().zip(&NAMED) {
        *c = a.load(Ordering::Relaxed);
    }
    MetricsSummary { kinds, counters }
}

/// Zeroes the whole registry.
pub fn reset() {
    for slot in &SLOTS {
        slot.count.store(0, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
        for h in &slot.hist {
            h.store(0, Ordering::Relaxed);
        }
    }
    for a in &NAMED {
        a.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut s = KindStats {
            kind: EventKind::Kernel,
            count: 0,
            total_ns: 0,
            hist: [0; HIST_BUCKETS],
        };
        assert_eq!(s.quantile_ns(0.5), 0);
        s.hist[2] = 9; // durations in [2, 4)
        s.hist[10] = 1; // one in [512, 1024)
        s.count = 10;
        s.total_ns = 9 * 3 + 600;
        assert_eq!(s.quantile_ns(0.5), 4);
        assert_eq!(s.quantile_ns(1.0), 1024);
        assert!((s.mean_ns() - 62.7).abs() < 1e-9);
    }
}
