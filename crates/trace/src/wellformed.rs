//! Trace well-formedness checks, used by the gate tests and the
//! `overlap_trace` trajectory row: per-thread record timestamps
//! monotone, spans properly nested per thread, and every scheduler
//! enqueue matched by a completion.

use std::collections::HashMap;

use crate::{Event, EventKind};

/// Checks the three structural invariants of a snapshot:
///
/// 1. **Per-thread monotonicity** — events are recorded at span close
///    (or instant emission), so each thread's *record* timestamps
///    ([`Event::end_ns`]) must be non-decreasing in buffer order.
/// 2. **Proper nesting** — two spans on one thread either nest or are
///    disjoint; RAII guards cannot partially overlap.
/// 3. **Enqueue/complete matching** — every
///    [`SchedEnqueue`](EventKind::SchedEnqueue) on a rank has a
///    [`SchedComplete`](EventKind::SchedComplete) for the same job id
///    at the same or a later timestamp, and vice versa.
///
/// The snapshot must be in [`take_snapshot`](crate::take_snapshot)
/// order (per-thread record order); re-sorting it first would destroy
/// invariant 1's meaning.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_well_formed(events: &[Event]) -> Result<(), String> {
    // 1. Per-thread record-order monotonicity.
    let mut last_end: HashMap<u32, u64> = HashMap::new();
    for ev in events {
        let prev = last_end.entry(ev.thread).or_insert(0);
        if ev.end_ns() < *prev {
            return Err(format!(
                "thread {} record timestamps regressed: {} after {} ({:?} '{}')",
                ev.thread,
                ev.end_ns(),
                prev,
                ev.kind,
                ev.label,
            ));
        }
        *prev = ev.end_ns();
    }

    // 2. Proper nesting of spans per thread: sort each thread's spans
    // by (start, -end) and sweep with a stack of enclosing spans.
    let mut spans: HashMap<u32, Vec<(u64, u64, &'static str)>> = HashMap::new();
    for ev in events {
        if ev.dur_ns > 0 {
            spans
                .entry(ev.thread)
                .or_default()
                .push((ev.ts_ns, ev.end_ns(), ev.label));
        }
    }
    for (thread, mut ivs) in spans {
        ivs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, &'static str)> = Vec::new();
        for (s, e, label) in ivs {
            while stack.last().is_some_and(|&(_, top_e, _)| top_e <= s) {
                stack.pop();
            }
            if let Some(&(_, top_e, top_label)) = stack.last() {
                if e > top_e {
                    return Err(format!(
                        "thread {thread}: span '{label}' [{s}, {e}) partially overlaps \
                         enclosing span '{top_label}' ending at {top_e}"
                    ));
                }
            }
            stack.push((s, e, label));
        }
    }

    // 3. Enqueue/complete matching per (rank, job).
    let mut enq: HashMap<(u32, u64), u64> = HashMap::new();
    let mut comp: HashMap<(u32, u64), u64> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::SchedEnqueue => {
                enq.entry((ev.rank, ev.a)).or_insert(ev.ts_ns);
            }
            EventKind::SchedComplete => {
                let t = comp.entry((ev.rank, ev.a)).or_insert(ev.ts_ns);
                *t = (*t).max(ev.ts_ns);
            }
            _ => {}
        }
    }
    for (&(rank, job), &t_enq) in &enq {
        match comp.get(&(rank, job)) {
            None => {
                return Err(format!(
                    "rank {rank}: job {job} was enqueued but never completed"
                ))
            }
            Some(&t_comp) if t_comp < t_enq => {
                return Err(format!(
                    "rank {rank}: job {job} completed at {t_comp}, before its enqueue at {t_enq}"
                ))
            }
            Some(_) => {}
        }
    }
    for &(rank, job) in comp.keys() {
        if !enq.contains_key(&(rank, job)) {
            return Err(format!(
                "rank {rank}: job {job} completed without an enqueue"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, thread: u32, ts: u64, dur: u64, a: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            kind,
            label: "t",
            rank: thread,
            lane: 0,
            thread,
            a,
            b: 0,
        }
    }

    #[test]
    fn nested_spans_and_matched_jobs_pass() {
        // Record order = close order: inner closes before outer.
        let events = [
            ev(EventKind::SchedEnqueue, 0, 5, 0, 1),
            ev(EventKind::Kernel, 0, 20, 10, 0), // inner [20, 30)
            ev(EventKind::Compute, 0, 10, 30, 0), // outer [10, 40)
            ev(EventKind::SchedComplete, 0, 50, 0, 1),
            ev(EventKind::Compute, 1, 0, 15, 0), // other thread
        ];
        check_well_formed(&events).unwrap();
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let events = [
            ev(EventKind::Compute, 0, 10, 20, 0), // [10, 30)
            ev(EventKind::Kernel, 0, 20, 20, 0),  // [20, 40) — straddles
        ];
        let err = check_well_formed(&events).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn timestamp_regression_is_rejected() {
        let events = [
            ev(EventKind::Hop, 0, 100, 0, 1),
            ev(EventKind::Hop, 0, 50, 0, 1),
        ];
        let err = check_well_formed(&events).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn orphan_enqueues_and_completes_are_rejected() {
        let only_enq = [ev(EventKind::SchedEnqueue, 0, 1, 0, 9)];
        assert!(check_well_formed(&only_enq)
            .unwrap_err()
            .contains("never completed"));
        let only_comp = [ev(EventKind::SchedComplete, 0, 1, 0, 9)];
        assert!(check_well_formed(&only_comp)
            .unwrap_err()
            .contains("without an enqueue"));
    }
}
