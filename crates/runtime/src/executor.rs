//! SPMD interpretation of CoCoNet programs with real data movement.
//!
//! Every rank thread walks the program's DFG in topological order,
//! evaluating computations on its local data and dispatching
//! communication operations onto the collective algorithm the run's
//! [`RunOptions`] selects — the flat ring, the binomial tree, or the
//! two-level hierarchical variant, mirroring how a tuned plan's
//! [`CommConfig`](coconet_core::CommConfig) stamps its `CollAlgo` into
//! every collective step. Because transformations only rewrite the
//! graph (fusion/overlap are schedule annotations), the same
//! interpreter executes a program *before and after* any schedule is
//! applied — which is how the integration tests verify the
//! transformations are semantics preserving, and because every
//! algorithm implements the same collective contract, the tests also
//! verify the algorithms agree with each other.

use std::collections::HashMap;
use std::thread;

use coconet_compress::WireFormat;
use coconet_core::{
    Binding, CollAlgo, CommConfig, CommSched, Layout, OpKind, Program, SliceDim, VarId, XferSched,
};
use coconet_tensor::{CounterRng, ReduceOp, Shape, Tensor};
use coconet_topology::Cluster;

use crate::collectives::{
    all_reduce_scalar, broadcast, clamp_channels, reduce, ring_all_gather_wire_striped,
    ring_reduce_scatter_wire_striped, Group,
};
use crate::compressed::all_reduce_wire_striped;
use crate::hierarchical::{
    hierarchical_all_gather_wire_striped, hierarchical_reduce_scatter_wire_striped,
};
use crate::stream::CommScheduler;
use crate::{DistValue, RankComm, RuntimeError};

/// How to initialize a declared input tensor.
#[derive(Clone, Debug)]
pub enum InitValue {
    /// The full global tensor; the runtime replicates or slices it
    /// according to the input's declared layout. Every group sees the
    /// same global value.
    Global(Tensor),
    /// One tensor per *global* rank (required for `Local` inputs,
    /// allowed everywhere).
    PerRank(Vec<Tensor>),
}

/// Initializers for a program's inputs, keyed by input name.
#[derive(Clone, Debug, Default)]
pub struct Inputs {
    map: HashMap<String, InitValue>,
}

impl Inputs {
    /// An empty initializer set.
    pub fn new() -> Inputs {
        Inputs::default()
    }

    /// Sets the initializer for `name` (builder style).
    pub fn set(mut self, name: impl Into<String>, value: InitValue) -> Inputs {
        self.map.insert(name.into(), value);
        self
    }

    /// Convenience: a global tensor initializer.
    pub fn global(self, name: impl Into<String>, t: Tensor) -> Inputs {
        self.set(name, InitValue::Global(t))
    }

    /// Convenience: per-rank initializers.
    pub fn per_rank(self, name: impl Into<String>, ts: Vec<Tensor>) -> Inputs {
        self.set(name, InitValue::PerRank(ts))
    }

    fn get(&self, name: &str) -> Option<&InitValue> {
        self.map.get(name)
    }
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Seed for the counter-based dropout RNG. Two runs of *different
    /// schedules* of the same program with the same seed produce
    /// identical dropout masks.
    pub seed: u64,
    /// Collective algorithm the interpreter's communication operations
    /// run on — the runtime counterpart of a tuned plan's
    /// [`CommConfig::algo`]. Binomial trees only exist for AllReduce
    /// (NCCL builds no tree ReduceScatter/AllGather either); those fall
    /// back to the ring with an identical result.
    pub algo: CollAlgo,
    /// Consecutive group ranks per node, for the hierarchical
    /// algorithm's intra-node/inter-node split. `0` means the whole
    /// group shares one node, degenerating hierarchical to the ring.
    pub ranks_per_node: usize,
    /// Wire format the communication operations encode their payloads
    /// with — the runtime counterpart of a tuned plan's
    /// [`CommConfig::format`]. Top-k applies to sum AllReduces (with
    /// the automatic dense switchover); one-shot program runs discard
    /// the error-feedback residual.
    pub format: WireFormat,
    /// Communication scheduling discipline — the runtime counterpart of
    /// a tuned plan's [`CommConfig::sched`]. Under
    /// [`CommSched::Priority`], [`run_program_iterations`] streams each
    /// iteration's *trailing* collectives (AllReduces whose results
    /// feed only program outputs) across the iteration boundary instead
    /// of barriering on them. Single-shot [`run_program`] calls behave
    /// identically either way.
    pub sched: CommSched,
    /// Cross-job transfer discipline of the streaming scheduler — the
    /// runtime counterpart of a tuned plan's
    /// [`CommConfig::xfer`](coconet_core::CommConfig). Service order
    /// only: outputs and per-class ledger totals are bit-identical
    /// under either discipline.
    pub xfer: XferSched,
    /// Concurrent lanes every dense collective stripes its payload
    /// across — the runtime counterpart of a tuned plan's
    /// [`CommConfig::channels`]. `1` (the default) runs the single-lane
    /// data plane; wider counts split every hop into contiguous stripe
    /// messages with bit-identical results and unchanged byte totals.
    /// Values clamp into `1..=`[`MAX_CHANNELS`](crate::MAX_CHANNELS).
    pub channels: usize,
    /// When nonzero, every step of every rank sleeps a deterministic
    /// pseudo-random duration in `[0, jitter_ns)` nanoseconds, keyed by
    /// `(seed, rank, iteration, step)`. Exercises the
    /// completion-order-independent paths: results must be bit-identical
    /// at any jitter.
    pub jitter_ns: u64,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            seed: 0x5eed,
            algo: CollAlgo::Ring,
            ranks_per_node: 0,
            format: WireFormat::Dense,
            sched: CommSched::Barriered,
            xfer: XferSched::Fifo,
            channels: 1,
            jitter_ns: 0,
        }
    }
}

impl RunOptions {
    /// A fixed dropout seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> RunOptions {
        self.seed = seed;
        self
    }

    /// A collective algorithm (builder style).
    pub fn with_algo(mut self, algo: CollAlgo) -> RunOptions {
        self.algo = algo;
        self
    }

    /// The node size for the hierarchical algorithm (builder style).
    pub fn with_ranks_per_node(mut self, ranks_per_node: usize) -> RunOptions {
        self.ranks_per_node = ranks_per_node;
        self
    }

    /// A wire format (builder style).
    pub fn with_format(mut self, format: WireFormat) -> RunOptions {
        self.format = format;
        self
    }

    /// A communication scheduling discipline (builder style).
    pub fn with_sched(mut self, sched: CommSched) -> RunOptions {
        self.sched = sched;
        self
    }

    /// A cross-job transfer discipline (builder style).
    pub fn with_xfer(mut self, xfer: XferSched) -> RunOptions {
        self.xfer = xfer;
        self
    }

    /// A channel (lane) count for the dense collectives (builder
    /// style); clamped into `1..=`[`MAX_CHANNELS`](crate::MAX_CHANNELS).
    pub fn with_channels(mut self, channels: usize) -> RunOptions {
        self.channels = clamp_channels(channels);
        self
    }

    /// A per-step jitter bound in nanoseconds (builder style).
    pub fn with_jitter_ns(mut self, jitter_ns: u64) -> RunOptions {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Adopts a tuned plan's communication configuration: the
    /// interpreter will run the collectives on the algorithm the
    /// autotuner selected. The configuration carries no node geometry,
    /// so `ranks_per_node` is left untouched — a hierarchical plan run
    /// with the default of `0` degenerates to the flat ring (same
    /// results, but not the two-level data movement). Pair with
    /// [`with_ranks_per_node`](RunOptions::with_ranks_per_node), or
    /// use [`for_cluster`](RunOptions::for_cluster) to take both from
    /// the machine in one step.
    pub fn with_comm(self, config: CommConfig) -> RunOptions {
        self.with_algo(config.algo)
            .with_format(config.format)
            .with_sched(config.sched)
            .with_xfer(config.xfer)
            .with_channels(config.channels)
    }

    /// Adopts a tuned plan's communication configuration *and* the
    /// cluster's node geometry: collectives run on the algorithm the
    /// autotuner selected, with the hierarchical intra/inter-node
    /// split taken from the cluster's node size
    /// ([`Cluster::node_group`]).
    pub fn for_cluster(self, config: CommConfig, cluster: &Cluster) -> RunOptions {
        self.with_comm(config)
            .with_ranks_per_node(cluster.node_group(0).size())
    }
}

/// The result of executing a program: per-rank output values.
#[derive(Debug)]
pub struct RunResult {
    per_rank: Vec<HashMap<String, DistValue>>,
    group_size: usize,
}

impl RunResult {
    /// The local output value of `name` on a global rank, if present
    /// there (pipeline outputs are absent on the first group).
    pub fn local(&self, rank: usize, name: &str) -> Option<&DistValue> {
        self.per_rank.get(rank).and_then(|m| m.get(name))
    }

    /// Reconstructs the global tensor for output `name` from the first
    /// group that holds it: replicated outputs come from one rank,
    /// sliced outputs are concatenated across the group.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoSuchOutput`] when the output is absent
    /// everywhere, and tensor errors if reassembly fails.
    pub fn global(&self, name: &str) -> Result<Tensor, RuntimeError> {
        let world = self.per_rank.len();
        let gs = self.group_size;
        for group_start in (0..world).step_by(gs) {
            let Some(first) = self.per_rank[group_start].get(name) else {
                continue;
            };
            match first.layout {
                Layout::Replicated | Layout::Local => return Ok(first.local.clone()),
                Layout::Sliced(SliceDim::Flat) => {
                    let mut out = Tensor::zeros(first.global_shape.clone(), first.local.dtype());
                    let mut off = 0;
                    for r in group_start..group_start + gs {
                        let v = self.per_rank[r]
                            .get(name)
                            .ok_or_else(|| RuntimeError::NoSuchOutput(name.into()))?;
                        out.write_flat(off, &v.local)?;
                        off += v.local.numel();
                    }
                    return Ok(out);
                }
                Layout::Sliced(SliceDim::Dim(d)) => {
                    let locals: Vec<&Tensor> = (group_start..group_start + gs)
                        .map(|r| {
                            self.per_rank[r]
                                .get(name)
                                .map(|v| &v.local)
                                .ok_or_else(|| RuntimeError::NoSuchOutput(name.into()))
                        })
                        .collect::<Result<_, _>>()?;
                    return Ok(Tensor::concat(&locals, d)?);
                }
            }
        }
        Err(RuntimeError::NoSuchOutput(name.into()))
    }
}

/// Executes `program` SPMD on `binding.world_size()` rank threads.
///
/// # Errors
///
/// Returns initializer errors before spawning, and
/// [`RuntimeError::RankPanicked`] if a rank thread dies.
pub fn run_program(
    program: &Program,
    binding: &Binding,
    inputs: &Inputs,
    opts: RunOptions,
) -> Result<RunResult, RuntimeError> {
    run_program_iterations(program, binding, inputs, opts, 1)
}

/// Steady-state entry point: executes `program` `iters` times on
/// persistent rank threads and returns the final iteration's outputs.
///
/// Under [`CommSched::Barriered`] every iteration ends with its
/// collectives fully drained — `iters` barriered runs back to back.
/// Under [`CommSched::Priority`] (with the ring algorithm on a dense or
/// FP16 wire) each iteration's *trailing* collectives — AllReduces
/// whose results feed only program outputs, the shape a training step's
/// gradient syncs take — are enqueued on the priority scheduler and
/// keep draining while the next iteration's compute steps run. The next
/// iteration blocks per collective site, and only when it relaunches
/// that site — the executor-level ready-epoch gate — so first-consumed
/// tensors are synchronized first and the global barrier disappears.
/// Outputs are bit-identical to the barriered schedule: the scheduler
/// reorders wire traffic, never a data dependence.
///
/// `iters` is clamped to at least 1.
///
/// # Errors
///
/// Returns initializer errors before spawning, and
/// [`RuntimeError::RankPanicked`] if a rank thread dies.
pub fn run_program_iterations(
    program: &Program,
    binding: &Binding,
    inputs: &Inputs,
    opts: RunOptions,
    iters: u64,
) -> Result<RunResult, RuntimeError> {
    program.validate()?;
    let iters = iters.max(1);
    let world = binding.world_size();
    // Validate initializers up front for better errors, and reject
    // geometries where a sliced tensor does not divide across the
    // group (the type checker's bind-time divisibility rule).
    for &v in program.inputs() {
        let node = program.node(v)?;
        node.ty().local_numel(binding)?;
        match inputs.get(node.name()) {
            None => return Err(RuntimeError::MissingInput(node.name().into())),
            Some(InitValue::PerRank(ts)) if ts.len() != world => {
                return Err(RuntimeError::BadInput {
                    name: node.name().into(),
                    detail: format!("expected {world} per-rank tensors, got {}", ts.len()),
                });
            }
            Some(_) => {}
        }
    }

    // Scoped rank threads borrow the program, binding, and inputs
    // directly — no deep copies, no reference counting at spawn time.
    let comms = RankComm::world(world);
    let mut per_rank = Vec::with_capacity(world);
    let mut first_err = None;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                s.spawn(move || {
                    coconet_trace::set_thread_rank(comm.rank() as u32);
                    execute_rank(program, binding, inputs, comm, opts, iters)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(outputs)) => per_rank.push(outputs),
                Ok(Err(e)) => {
                    per_rank.push(HashMap::new());
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    per_rank.push(HashMap::new());
                    first_err.get_or_insert(RuntimeError::RankPanicked(rank));
                }
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(RunResult {
            per_rank,
            group_size: binding.group_size,
        }),
    }
}

/// The trailing collectives of `program`: AllReduce nodes whose results
/// feed only program outputs — the gradient-sync shape that may drain
/// across an iteration boundary without reordering any data dependence.
/// Maps each site to `(ordinal, priority class)`, where the ordinal is
/// the site's position in topological (= next-iteration consumption)
/// order.
fn trailing_all_reduces(program: &Program) -> HashMap<VarId, (u64, u8)> {
    let mut sites = HashMap::new();
    for v in program.topo_order() {
        if matches!(program.op(v), Ok(OpKind::AllReduce(..)))
            && program.outputs().contains(&v)
            && program.consumers(v).is_empty()
        {
            let ordinal = sites.len() as u64;
            sites.insert(v, (ordinal, ordinal.min(u8::MAX as u64) as u8));
        }
    }
    sites
}

/// Static trace label of a DFG step — the name its span renders under
/// in an exported trace.
fn op_trace_label(op: &OpKind) -> &'static str {
    match op {
        OpKind::Input => "input",
        OpKind::ConstScalar(_) => "const",
        OpKind::Unary(..) => "unary",
        OpKind::Binary(..) => "binary",
        OpKind::MatMul(..) => "matmul",
        OpKind::Conv2d(..) => "conv2d",
        OpKind::Dropout(..) => "dropout",
        OpKind::Update(..) => "update",
        OpKind::Norm(_) => "norm",
        OpKind::ReduceTensor(..) => "reduce_tensor",
        OpKind::Slice(_) => "slice",
        OpKind::AllReduce(..) => "all_reduce",
        OpKind::ReduceScatter(..) => "reduce_scatter",
        OpKind::AllGather(_) => "all_gather",
        OpKind::Broadcast(..) => "broadcast",
        OpKind::Reduce(..) => "reduce",
        OpKind::Send(..) => "send",
    }
}

/// Deterministic per-step jitter: a splitmix64 hash of the key, scaled
/// into `[0, max_ns)`.
fn jitter_delay_ns(seed: u64, key: u64, max_ns: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % max_ns
}

fn execute_rank(
    program: &Program,
    binding: &Binding,
    inputs: &Inputs,
    comm: RankComm,
    opts: RunOptions,
    iters: u64,
) -> Result<HashMap<String, DistValue>, RuntimeError> {
    let gs = binding.group_size;
    let pos = comm.rank() % gs;

    // Stable dropout ordinals: schedules do not add or remove dropouts.
    let mut dropout_ordinal: HashMap<VarId, u64> = HashMap::new();
    for v in program.topo_order() {
        if matches!(program.op(v), Ok(OpKind::Dropout(..))) {
            let next = dropout_ordinal.len() as u64;
            dropout_ordinal.insert(v, next);
        }
    }

    // Priority streaming applies to the ring on a dense/FP16 wire (the
    // formats whose streamed ring is bit-identical to the blocking
    // one) and to the in-network switch (whose streamed job folds in
    // the same ascending position order as the blocking path);
    // everything else keeps the blocking collectives, which is always
    // semantically safe — Barriered is the identity schedule.
    let streaming = opts.sched == CommSched::Priority
        && matches!(opts.algo, CollAlgo::Ring | CollAlgo::Switch)
        && !matches!(opts.format, WireFormat::TopK { .. });
    let trailing = if streaming {
        trailing_all_reduces(program)
    } else {
        HashMap::new()
    };
    let n_sites = trailing.len() as u64;
    let mut sched = CommScheduler::new().with_xfer(opts.xfer);
    // Per-site in-flight gradient job — the executor-level ready-epoch:
    // a site relaunching in iteration i+1 first waits its iteration-i
    // job, and nothing else.
    let mut pending: HashMap<VarId, u64> = HashMap::new();

    let n_nodes = program
        .topo_order()
        .iter()
        .map(|v| v.index())
        .max()
        .map_or(0, |m| m + 1);
    let mut values: Vec<Option<DistValue>> = vec![None; n_nodes];

    for iter in 0..iters {
        values = execute_iteration(
            program,
            binding,
            inputs,
            &comm,
            opts,
            iter,
            n_nodes,
            &dropout_ordinal,
            &trailing,
            n_sites,
            &mut sched,
            &mut pending,
        )?;
    }

    // End of the stream: the final iteration's trailing collectives
    // land now — one settle instead of `iters` barriers.
    for (v, job) in pending.drain() {
        let reduced = sched.wait(&comm, job);
        values[v.index()] = Some(DistValue::replicated(reduced, pos, gs));
    }

    let mut outputs = HashMap::new();
    for &out in program.outputs() {
        let name = program.node(out)?.name().to_string();
        if let Some(val) = values[out.index()].take() {
            outputs.insert(name, val);
        }
    }
    Ok(outputs)
}

#[allow(clippy::too_many_arguments)]
fn execute_iteration(
    program: &Program,
    binding: &Binding,
    inputs: &Inputs,
    comm: &RankComm,
    opts: RunOptions,
    iter: u64,
    n_nodes: usize,
    dropout_ordinal: &HashMap<VarId, u64>,
    trailing: &HashMap<VarId, (u64, u8)>,
    n_sites: u64,
    sched: &mut CommScheduler,
    pending: &mut HashMap<VarId, u64>,
) -> Result<Vec<Option<DistValue>>, RuntimeError> {
    let gs = binding.group_size;
    let rank = comm.rank();
    let group_idx = rank / gs;
    let pos = rank % gs;
    let group = Group {
        start: group_idx * gs,
        size: gs,
    };
    let mut values: Vec<Option<DistValue>> = vec![None; n_nodes];

    for (step, v) in program.topo_order().into_iter().enumerate() {
        if opts.jitter_ns > 0 {
            let key = ((rank as u64) << 48) ^ (iter << 24) ^ step as u64;
            std::thread::sleep(std::time::Duration::from_nanos(jitter_delay_ns(
                opts.seed,
                key,
                opts.jitter_ns,
            )));
        }
        let node = program.node(v)?;
        let ty = node.ty().clone();
        let out_layout = ty.layout;
        let out_shape = ty.shape.eval(binding)?;
        let out_dtype = ty.dtype;

        let _step_span = coconet_trace::span(
            coconet_trace::EventKind::Compute,
            op_trace_label(node.op()),
            step as u64,
            iter,
        );
        let value: Option<DistValue> = match node.op().clone() {
            OpKind::Input => Some(materialize_input(
                node.name(),
                &out_shape,
                out_layout,
                out_dtype,
                inputs,
                rank,
                pos,
                gs,
            )?),
            OpKind::ConstScalar(c) => Some(DistValue::replicated(
                Tensor::scalar(coconet_tensor::DType::F32, c as f32),
                pos,
                gs,
            )),
            OpKind::Unary(op, a) => eval_elementwise(
                &values,
                &[a],
                &out_shape,
                out_layout,
                out_dtype,
                pos,
                gs,
                |args, _| op.apply(args[0]),
            ),
            OpKind::Binary(op, a, b) => eval_elementwise(
                &values,
                &[a, b],
                &out_shape,
                out_layout,
                out_dtype,
                pos,
                gs,
                |args, _| op.apply(args[0], args[1]),
            ),
            OpKind::Dropout(a, p) => {
                let rng = CounterRng::new(
                    opts.seed
                        .wrapping_add(dropout_ordinal[&v].wrapping_mul(0x9E37_79B9)),
                );
                let scale = (1.0 / (1.0 - p)) as f32;
                eval_elementwise(
                    &values,
                    &[a],
                    &out_shape,
                    out_layout,
                    out_dtype,
                    pos,
                    gs,
                    move |args, gidx| {
                        if rng.keep_at(gidx as u64, p) {
                            args[0] * scale
                        } else {
                            0.0
                        }
                    },
                )
            }
            OpKind::Slice(a) => eval_elementwise(
                &values,
                &[a],
                &out_shape,
                out_layout,
                out_dtype,
                pos,
                gs,
                |args, _| args[0],
            ),
            OpKind::Update(target, x) => {
                let out = eval_elementwise(
                    &values,
                    &[x],
                    &out_shape,
                    out_layout,
                    out_dtype,
                    pos,
                    gs,
                    |args, _| args[0],
                );
                if let Some(val) = &out {
                    values[target.index()] = Some(val.clone());
                }
                out
            }
            OpKind::MatMul(a, w) => {
                eval_matmul(&values, a, w, &out_shape, out_layout, out_dtype, pos, gs)?
            }
            OpKind::Conv2d(x, w, params) => {
                match (values[x.index()].as_ref(), values[w.index()].as_ref()) {
                    (Some(xv), Some(wv)) => {
                        let y = xv.local.conv2d(&wv.local, params)?.cast(out_dtype);
                        Some(DistValue {
                            global_shape: out_shape.clone(),
                            layout: out_layout,
                            local: y,
                            pos,
                            group_size: gs,
                        })
                    }
                    _ => None,
                }
            }
            OpKind::Norm(a) => {
                eval_full_reduction(&values, a, comm, group, pos, gs, ReduceOp::Sum, true)
            }
            OpKind::ReduceTensor(op, a) => {
                eval_full_reduction(&values, a, comm, group, pos, gs, op, false)
            }
            OpKind::AllReduce(op, a) => match (values[a.index()].as_ref(), trailing.get(&v)) {
                (None, _) => None,
                (Some(input), Some(&(ordinal, class))) => {
                    // Streamed trailing collective: gate on this site's
                    // previous-iteration job (the ready-epoch), then
                    // relaunch at the priority of its consumption
                    // position. The result materializes when the stream
                    // settles — the next compute step does not wait.
                    if let Some(prev) = pending.remove(&v) {
                        let _ = sched.wait(comm, prev);
                    }
                    let id = iter * n_sites + ordinal;
                    if opts.algo == CollAlgo::Switch {
                        sched.enqueue_switch(id, class, group, &input.local, op);
                    } else {
                        sched.enqueue(id, class, group, &input.local, op, opts.format);
                    }
                    pending.insert(v, id);
                    None
                }
                (Some(input), None) => Some(DistValue::replicated(
                    all_reduce(comm, group, &input.local, op, opts),
                    pos,
                    gs,
                )),
            },
            OpKind::ReduceScatter(op, a) => values[a.index()].as_ref().map(|input| {
                let chunk = reduce_scatter(comm, group, &input.local, op, opts);
                DistValue {
                    global_shape: input.global_shape.clone(),
                    layout: Layout::sliced_flat(),
                    local: chunk,
                    pos,
                    group_size: gs,
                }
            }),
            OpKind::AllGather(a) => match values[a.index()].as_ref() {
                None => None,
                Some(input) => {
                    let chunks = all_gather(comm, group, &input.local, opts);
                    let refs: Vec<&Tensor> = chunks.iter().collect();
                    let full = match input.layout {
                        Layout::Sliced(SliceDim::Dim(d)) => Tensor::concat(&refs, d)?,
                        _ => {
                            let mut out =
                                Tensor::zeros(input.global_shape.clone(), input.local.dtype());
                            let mut off = 0;
                            for c in &chunks {
                                out.write_flat(off, c)?;
                                off += c.numel();
                            }
                            out
                        }
                    };
                    Some(DistValue::replicated(
                        full.reshape(out_shape.clone())?,
                        pos,
                        gs,
                    ))
                }
            },
            OpKind::Broadcast(a, root) => values[a.index()].as_ref().map(|input| {
                DistValue::replicated(broadcast(comm, group, Some(&input.local), root), pos, gs)
            }),
            OpKind::Reduce(op, a, root) => values[a.index()].as_ref().map(|input| {
                DistValue::local(reduce(comm, group, &input.local, op, root), pos, gs)
            }),
            OpKind::Send(a, _) => {
                let shift = ty.group_shift as usize;
                let input = values[a.index()].as_ref();
                // Send to the peer in the next group if this group has
                // the value and a next group exists.
                if group_idx + 1 < binding.num_groups && group_idx + 1 >= shift {
                    if let Some(val) = input {
                        comm.send(rank + gs, val.local.clone());
                    }
                }
                // Receive from the previous group if it sent.
                if group_idx >= shift && group_idx >= 1 {
                    let local = comm.recv(rank - gs);
                    let proto = input.expect("sender side had the value too");
                    Some(DistValue {
                        global_shape: proto.global_shape.clone(),
                        layout: proto.layout,
                        local,
                        pos,
                        group_size: gs,
                    })
                } else {
                    None
                }
            }
        };
        values[v.index()] = value;
    }
    Ok(values)
}

/// AllReduce under the options' algorithm and wire format (the tree is
/// §5.1's second logical topology; the hierarchical variant splits
/// intra/inter-node; top-k rides the sparse exchange when active).
/// One-shot program runs carry no error-feedback residual.
fn all_reduce(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    opts: RunOptions,
) -> Tensor {
    all_reduce_wire_striped(
        comm,
        group,
        input,
        op,
        opts.algo,
        opts.ranks_per_node,
        opts.format,
        None,
        opts.channels,
    )
}

/// ReduceScatter under the options' algorithm and wire format. There
/// is no binomial tree ReduceScatter (the tree algorithm uses the
/// ring's, which has the identical postcondition), and no sparse one —
/// top-k resolves to the dense wire here, exactly as the cost model
/// prices it.
fn reduce_scatter(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    opts: RunOptions,
) -> Tensor {
    let wire = rs_ag_format(opts.format);
    match opts.algo {
        // The switch aggregates whole tensors; like the tree it has no
        // scatter/gather form and falls back to the ring (mirroring the
        // cost model's `effective_algo`).
        CollAlgo::Ring | CollAlgo::Tree | CollAlgo::Switch => {
            ring_reduce_scatter_wire_striped(comm, group, input, op, wire, opts.channels)
        }
        CollAlgo::Hierarchical => hierarchical_reduce_scatter_wire_striped(
            comm,
            group,
            input,
            op,
            opts.ranks_per_node,
            wire,
            opts.channels,
        ),
    }
}

/// AllGather under the options' algorithm and wire format (tree falls
/// back to ring and top-k to dense, like ReduceScatter).
fn all_gather(comm: &RankComm, group: Group, chunk: &Tensor, opts: RunOptions) -> Vec<Tensor> {
    let wire = rs_ag_format(opts.format);
    match opts.algo {
        CollAlgo::Ring | CollAlgo::Tree | CollAlgo::Switch => {
            ring_all_gather_wire_striped(comm, group, chunk, wire, opts.channels)
        }
        CollAlgo::Hierarchical => hierarchical_all_gather_wire_striped(
            comm,
            group,
            chunk,
            opts.ranks_per_node,
            wire,
            opts.channels,
        ),
    }
}

/// The wire format ReduceScatter/AllGather run under: FP16 passes
/// through, top-k has no sparse RS/AG form and runs dense.
fn rs_ag_format(format: WireFormat) -> WireFormat {
    match format {
        WireFormat::TopK { .. } => WireFormat::Dense,
        f => f,
    }
}

#[allow(clippy::too_many_arguments)]
fn materialize_input(
    name: &str,
    global_shape: &Shape,
    layout: Layout,
    dtype: coconet_tensor::DType,
    inputs: &Inputs,
    rank: usize,
    pos: usize,
    gs: usize,
) -> Result<DistValue, RuntimeError> {
    let init = inputs
        .get(name)
        .ok_or_else(|| RuntimeError::MissingInput(name.into()))?;
    let local_shape = DistValue::local_shape(global_shape, layout, gs);
    match init {
        InitValue::Global(t) => {
            if t.shape() != global_shape {
                return Err(RuntimeError::BadInput {
                    name: name.into(),
                    detail: format!(
                        "declared global shape {global_shape}, initializer is {}",
                        t.shape()
                    ),
                });
            }
            let t = t.cast(dtype);
            // Replicated and Local layouts store the full tensor: every
            // rank shares one buffer handle instead of copying the
            // initializer world_size times (the old broadcast chain).
            if matches!(layout, Layout::Replicated | Layout::Local) {
                return Ok(DistValue {
                    global_shape: global_shape.clone(),
                    layout,
                    local: t,
                    pos,
                    group_size: gs,
                });
            }
            // Sliced layouts build the local slice through the
            // global-index mapping, in one allocation.
            let local = Tensor::from_fn(local_shape.clone(), dtype, |l| {
                t.get(DistValue::global_index_in(
                    global_shape,
                    layout,
                    &local_shape,
                    pos,
                    gs,
                    l,
                ))
            });
            Ok(DistValue {
                global_shape: global_shape.clone(),
                layout,
                local,
                pos,
                group_size: gs,
            })
        }
        InitValue::PerRank(ts) => {
            let t = ts[rank].cast(dtype);
            if t.shape() != &local_shape {
                return Err(RuntimeError::BadInput {
                    name: name.into(),
                    detail: format!("expected per-rank shape {local_shape}, got {}", t.shape()),
                });
            }
            Ok(DistValue {
                global_shape: global_shape.clone(),
                layout,
                local: t,
                pos,
                group_size: gs,
            })
        }
    }
}

/// Evaluates a pointwise operation elementwise over the output's local
/// domain, reading operands through global indices (with PyTorch
/// broadcasting). Returns `None` if any operand is absent.
#[allow(clippy::too_many_arguments)]
fn eval_elementwise(
    values: &[Option<DistValue>],
    operands: &[VarId],
    out_shape: &Shape,
    out_layout: Layout,
    out_dtype: coconet_tensor::DType,
    pos: usize,
    gs: usize,
    f: impl Fn(&[f32], usize) -> f32,
) -> Option<DistValue> {
    let ops: Option<Vec<&DistValue>> = operands
        .iter()
        .map(|o| values[o.index()].as_ref())
        .collect();
    let ops = ops?;
    let local_shape = DistValue::local_shape(out_shape, out_layout, gs);
    // One pass into a staging vector, one buffer materialization — no
    // placeholder tensor for the index mapping.
    let mut data = vec![0.0f32; local_shape.numel()];
    let mut args = vec![0.0f32; ops.len()];
    for (l, slot_out) in data.iter_mut().enumerate() {
        let gidx = DistValue::global_index_in(out_shape, out_layout, &local_shape, pos, gs, l);
        for (slot, op) in args.iter_mut().zip(&ops) {
            let op_gidx = op.global_shape.broadcast_index(out_shape, gidx);
            *slot = op.read_global(op_gidx);
        }
        *slot_out = f(&args, gidx);
    }
    let local = Tensor::from_f32_vec(local_shape, out_dtype, data).expect("same element count");
    Some(DistValue {
        global_shape: out_shape.clone(),
        layout: out_layout,
        local,
        pos,
        group_size: gs,
    })
}

#[allow(clippy::too_many_arguments)]
fn eval_matmul(
    values: &[Option<DistValue>],
    a: VarId,
    w: VarId,
    out_shape: &Shape,
    out_layout: Layout,
    out_dtype: coconet_tensor::DType,
    pos: usize,
    gs: usize,
) -> Result<Option<DistValue>, RuntimeError> {
    let (Some(av), Some(wv)) = (values[a.index()].as_ref(), values[w.index()].as_ref()) else {
        return Ok(None);
    };
    let product = av.local.matmul(&wv.local)?.cast(out_dtype);
    Ok(Some(DistValue {
        global_shape: out_shape.clone(),
        layout: out_layout,
        local: product,
        pos,
        group_size: gs,
    }))
}

#[allow(clippy::too_many_arguments)]
fn eval_full_reduction(
    values: &[Option<DistValue>],
    a: VarId,
    comm: &RankComm,
    group: Group,
    pos: usize,
    gs: usize,
    op: ReduceOp,
    is_norm: bool,
) -> Option<DistValue> {
    let input = values[a.index()].as_ref()?;
    let mut partial: f64 = if is_norm {
        input.local.sum_squares()
    } else {
        (0..input.local.numel())
            .map(|i| f64::from(input.local.get(i)))
            .fold(f64::from(op.identity()), |acc, x| {
                f64::from(op.apply(acc as f32, x as f32))
            })
    };
    if input.layout.is_sliced() {
        partial = all_reduce_scalar(comm, group, partial, op);
    }
    let total = if is_norm { partial.sqrt() } else { partial };
    Some(DistValue::replicated(
        Tensor::scalar(coconet_tensor::DType::F32, total as f32),
        pos,
        gs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::xform::{fuse_all_reduce, overlap, reorder_all_gather, split_all_reduce};
    use coconet_core::{DType, Layout, ReduceOp};
    use coconet_tensor::CounterRng;

    /// The paper's running example (Figure 3).
    fn figure3() -> (Program, Vec<VarId>) {
        let mut p = Program::new("self_attention");
        let w = p.input("w", DType::F16, ["H", "H2"], Layout::sliced(0));
        let b = p.input("b", DType::F16, ["H2"], Layout::Replicated);
        let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::sliced(2));
        let r = p.input("r", DType::F16, ["B", "S", "H2"], Layout::Replicated);
        let layer = p.matmul(input, w).unwrap();
        p.set_name(layer, "layer").unwrap();
        let sum = p.all_reduce(ReduceOp::Sum, layer).unwrap();
        p.set_name(sum, "sum").unwrap();
        let biased = p.add(sum, b).unwrap();
        let d = p.dropout(biased, 0.25).unwrap();
        let out = p.add(d, r).unwrap();
        p.set_name(out, "out").unwrap();
        p.set_io(&[w, input, b, r], &[out]).unwrap();
        (p, vec![layer, sum, biased, d, out])
    }

    fn figure3_inputs() -> (Binding, Inputs) {
        let binding = Binding::new(4)
            .bind("B", 2)
            .bind("S", 4)
            .bind("H", 8)
            .bind("H2", 12);
        let rng = CounterRng::new(7);
        let inputs = Inputs::new()
            .global("w", Tensor::randn([8, 12], DType::F16, rng, 0))
            .global("b", Tensor::randn([12], DType::F16, rng, 1_000))
            .global("in", Tensor::randn([2, 4, 8], DType::F16, rng, 2_000))
            .global("r", Tensor::randn([2, 4, 12], DType::F16, rng, 10_000));
        (binding, inputs)
    }

    #[test]
    fn figure3_baseline_runs_and_is_consistent_across_ranks() {
        let (p, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let result = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
        let global = result.global("out").unwrap();
        assert_eq!(global.shape().dims(), &[2, 4, 12]);
        // Replicated output: every rank agrees exactly.
        for rank in 0..4 {
            let local = result.local(rank, "out").unwrap();
            assert_eq!(local.local.to_f32_vec(), global.to_f32_vec());
        }
    }

    /// §3: every transformation is semantics preserving. The fully
    /// scheduled program (split + reorder + fuse + overlap — the
    /// paper's program 4 in Figure 4) must produce the same output as
    /// the unscheduled one, including identical dropout masks.
    #[test]
    fn transformed_schedule_is_semantics_preserving() {
        let (base, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let opts = RunOptions::default().with_seed(1234);
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();

        let (mut p, vars) = figure3();
        let (layer, sum, biased, d, out) = (vars[0], vars[1], vars[2], vars[3], vars[4]);
        let (rs, ag) = split_all_reduce(&mut p, sum).unwrap();
        let result = reorder_all_gather(&mut p, ag, &[biased, d, out]).unwrap();
        let new_ag = result.gathers[0].1;
        p.set_name(new_ag, "out_gathered").unwrap();
        fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag]).unwrap();
        overlap(&mut p, &[layer, rs]).unwrap();
        p.validate().unwrap();

        let transformed = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global("out_gathered")
            .unwrap();

        assert_eq!(transformed.shape(), reference.shape());
        let diff = transformed.max_abs_diff(&reference);
        // FP16 rounding differs only through reduction order; the ring
        // schedule is identical, so the results match to within a ulp.
        assert!(diff <= 2e-2, "max diff {diff}");
    }

    /// The intermediate schedules (Figure 4 programs 1 and 2) also
    /// preserve semantics.
    #[test]
    fn split_and_reorder_each_preserve_semantics() {
        let (base, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let opts = RunOptions::default().with_seed(99);
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();

        // Program 1: split only.
        let (mut p1, vars1) = figure3();
        split_all_reduce(&mut p1, vars1[1]).unwrap();
        let got1 = run_program(&p1, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();
        assert!(got1.max_abs_diff(&reference) <= 2e-2);

        // Program 2: split + reorder.
        let (mut p2, vars2) = figure3();
        let (_, ag) = split_all_reduce(&mut p2, vars2[1]).unwrap();
        let r2 = reorder_all_gather(&mut p2, ag, &[vars2[2], vars2[3], vars2[4]]).unwrap();
        p2.set_name(r2.gathers[0].1, "out2").unwrap();
        let got2 = run_program(&p2, &binding, &inputs, opts)
            .unwrap()
            .global("out2")
            .unwrap();
        assert!(got2.max_abs_diff(&reference) <= 2e-2);
    }

    #[test]
    fn pipeline_send_delivers_to_next_group() {
        // Two groups of 2: group 0 allreduces its input and sends; the
        // output materializes on group 1.
        let mut p = Program::new("pipe");
        let x = p.input("in", DType::F32, ["N"], Layout::Local);
        let sum = p.all_reduce(ReduceOp::Sum, x).unwrap();
        let sent = p
            .send(sum, coconet_core::PeerSelector::NextGroupSameRank)
            .unwrap();
        p.set_name(sent, "received").unwrap();
        p.set_io(&[x], &[sent]).unwrap();

        let binding = Binding::new(2).with_groups(2).bind("N", 4);
        let inputs = Inputs::new().per_rank(
            "in",
            (0..4)
                .map(|r| Tensor::full([4], DType::F32, (r + 1) as f32))
                .collect(),
        );
        let result = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
        // Group 0 has no received value.
        assert!(result.local(0, "received").is_none());
        assert!(result.local(1, "received").is_none());
        // Group 1 received group 0's AllReduce (1 + 2 = 3).
        for rank in 2..4 {
            let v = result.local(rank, "received").unwrap();
            assert_eq!(v.local.get(0), 3.0);
        }
        assert_eq!(result.global("received").unwrap().get(0), 3.0);
    }

    /// Every collective algorithm produces the same program outputs —
    /// the executor-level counterpart of the ring-vs-tree-vs-
    /// hierarchical equivalences the collective unit tests prove.
    #[test]
    fn all_algorithms_agree_on_figure3() {
        let (p, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let reference = run_program(&p, &binding, &inputs, RunOptions::default())
            .unwrap()
            .global("out")
            .unwrap();
        for algo in CollAlgo::ALL {
            let opts = RunOptions::default().with_algo(algo).with_ranks_per_node(2); // 4 ranks = 2 nodes of 2
            let got = run_program(&p, &binding, &inputs, opts)
                .unwrap()
                .global("out")
                .unwrap();
            let diff = got.max_abs_diff(&reference);
            assert!(diff <= 2e-2, "{algo}: diff {diff}");
        }
    }

    /// Every wire format executes every algorithm and preserves the
    /// program's semantics: the dense wire exactly, FP16 within the
    /// per-hop rounding of the values (lossless here — the payloads
    /// are already FP16), and one-shot top-k within its stated
    /// tolerance: an element the wire dropped is off by at most its
    /// own magnitude, so the output error is bounded by the largest
    /// reference magnitude (across-iteration recovery is the error
    /// feedback loop's job, proven in `coconet-models`).
    #[test]
    fn every_wire_format_preserves_semantics_within_tolerance() {
        let (p, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let reference = run_program(&p, &binding, &inputs, RunOptions::default())
            .unwrap()
            .global("out")
            .unwrap();
        let ref_max = reference
            .to_f32_vec()
            .iter()
            .fold(0.0f32, |a, &b| a.max(b.abs()));
        for algo in CollAlgo::ALL {
            for format in coconet_compress::WireFormat::SWEEP {
                let opts = RunOptions::default()
                    .with_algo(algo)
                    .with_ranks_per_node(2)
                    .with_format(format);
                let got = run_program(&p, &binding, &inputs, opts)
                    .unwrap()
                    .global("out")
                    .unwrap();
                let diff = got.max_abs_diff(&reference);
                let tol = match format {
                    // The ring is the reference; other algorithms
                    // reduce in a different order (FP16 data rounds
                    // differently, same bound the cross-algorithm
                    // equivalence test uses).
                    coconet_compress::WireFormat::Dense if algo == CollAlgo::Ring => 0.0,
                    coconet_compress::WireFormat::Dense | coconet_compress::WireFormat::Fp16 => {
                        2e-2
                    }
                    coconet_compress::WireFormat::TopK { .. } => 1.5 * ref_max,
                };
                assert!(diff <= tol, "{algo}/{format}: diff {diff} > tol {tol}");
                // Replicated outputs stay replicated under every
                // format (the sparse exchange densifies the identical
                // combined chunk on every rank).
                let result = run_program(&p, &binding, &inputs, opts).unwrap();
                let global = result.global("out").unwrap();
                for rank in 0..4 {
                    assert_eq!(
                        result.local(rank, "out").unwrap().local.to_f32_vec(),
                        global.to_f32_vec(),
                        "{algo}/{format} rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn missing_input_is_reported() {
        let (p, _) = figure3();
        let (binding, _) = figure3_inputs();
        let err = run_program(&p, &binding, &Inputs::new(), RunOptions::default());
        assert!(matches!(err, Err(RuntimeError::MissingInput(_))));
    }

    #[test]
    fn bad_shape_is_reported() {
        let (p, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let bad = inputs.global("w", Tensor::zeros([3, 3], DType::F16));
        let err = run_program(&p, &binding, &bad, RunOptions::default());
        assert!(matches!(err, Err(RuntimeError::BadInput { .. })));
    }

    #[test]
    fn indivisible_sliced_input_is_rejected_up_front() {
        // N = 5 over 2 ranks cannot be sliced: the runtime reports the
        // bind-time divisibility error instead of panicking a rank.
        let mut p = Program::new("odd");
        let x = p.input("x", DType::F32, ["N"], Layout::sliced(0));
        let s = p.slice(x); // placeholder op chain
        let _ = s;
        let two = p.constant(2.0);
        let y = p.mul(x, two).unwrap();
        p.set_io(&[x], &[y]).unwrap();
        let binding = Binding::new(2).bind("N", 5);
        let inputs = Inputs::new().global("x", Tensor::zeros([5], DType::F32));
        let err = run_program(&p, &binding, &inputs, RunOptions::default());
        assert!(
            matches!(
                err,
                Err(RuntimeError::Core(
                    coconet_core::CoreError::IndivisibleSize { .. }
                ))
            ),
            "got {err:?}"
        );
    }

    /// A training-shaped program (compute feeding trailing gradient
    /// AllReduces) streamed over many iterations produces bit-identical
    /// outputs to the barriered schedule, at any per-step jitter.
    #[test]
    fn streamed_iterations_match_barriered_bit_for_bit() {
        // Two "layers": g0 and g1 are local gradients; their AllReduces
        // feed only outputs — the trailing shape that streams.
        let mut p = Program::new("grad_sync");
        let g0 = p.input("g0", DType::F32, ["N"], Layout::Local);
        let g1 = p.input("g1", DType::F32, ["N"], Layout::Local);
        let two = p.constant(2.0);
        let h0 = p.mul(g0, two).unwrap();
        let h1 = p.add(g1, two).unwrap();
        let s0 = p.all_reduce(ReduceOp::Sum, h0).unwrap();
        let s1 = p.all_reduce(ReduceOp::Sum, h1).unwrap();
        p.set_name(s0, "sync0").unwrap();
        p.set_name(s1, "sync1").unwrap();
        p.set_io(&[g0, g1], &[s0, s1]).unwrap();

        let binding = Binding::new(4).bind("N", 9);
        let rng = CounterRng::new(3);
        let inputs = Inputs::new()
            .per_rank(
                "g0",
                (0..4)
                    .map(|r| Tensor::randn([9], DType::F32, rng, r as u64))
                    .collect(),
            )
            .per_rank(
                "g1",
                (0..4)
                    .map(|r| Tensor::randn([9], DType::F32, rng, 100 + r as u64))
                    .collect(),
            );

        let barriered = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
        let streamed = run_program_iterations(
            &p,
            &binding,
            &inputs,
            RunOptions::default()
                .with_sched(coconet_core::CommSched::Priority)
                .with_jitter_ns(40_000),
            6,
        )
        .unwrap();
        for name in ["sync0", "sync1"] {
            assert_eq!(
                streamed.global(name).unwrap().to_f32_vec(),
                barriered.global(name).unwrap().to_f32_vec(),
                "{name} diverged under streaming"
            );
        }
    }

    /// Priority scheduling on a program whose AllReduce is *consumed*
    /// downstream (Figure 3) falls back to the blocking path — the
    /// stream never reorders a data dependence.
    #[test]
    fn priority_never_reorders_a_consumed_collective() {
        let (p, _) = figure3();
        let (binding, inputs) = figure3_inputs();
        let opts = RunOptions::default().with_seed(77);
        let reference = run_program(&p, &binding, &inputs, opts)
            .unwrap()
            .global("out")
            .unwrap();
        let streamed = run_program_iterations(
            &p,
            &binding,
            &inputs,
            opts.with_sched(coconet_core::CommSched::Priority),
            3,
        )
        .unwrap()
        .global("out")
        .unwrap();
        assert_eq!(streamed.to_f32_vec(), reference.to_f32_vec());
    }

    #[test]
    fn update_writes_back_and_norm_is_global() {
        // m_ = Update(m, m*2 + g_sum); n = Norm(rsSum) over slices.
        let mut p = Program::new("upd");
        let g = p.input("g", DType::F32, ["N"], Layout::Local);
        let m = p.input("m", DType::F32, ["N"], Layout::Replicated);
        let two = p.constant(2.0);
        let rs = p.reduce_scatter(ReduceOp::Sum, g).unwrap();
        let n = p.norm(rs).unwrap();
        p.set_name(n, "norm").unwrap();
        let dm = p.mul(m, two).unwrap();
        let upd = p.update(m, dm).unwrap();
        p.set_name(upd, "m_").unwrap();
        p.set_io(&[g, m], &[upd, n]).unwrap();

        let binding = Binding::new(4).bind("N", 8);
        let inputs = Inputs::new()
            .per_rank(
                "g",
                (0..4).map(|_| Tensor::full([8], DType::F32, 1.0)).collect(),
            )
            .global("m", Tensor::from_fn([8], DType::F32, |i| i as f32));
        let result = run_program(&p, &binding, &inputs, RunOptions::default()).unwrap();
        let m_ = result.global("m_").unwrap();
        assert_eq!(
            m_.to_f32_vec(),
            (0..8).map(|i| 2.0 * i as f32).collect::<Vec<_>>()
        );
        // Norm of the reduce-scattered g: each element is 4.0 summed
        // over ranks -> sqrt(8 * 16).
        let norm = result.global("norm").unwrap();
        assert!((norm.get(0) - (8.0f32 * 16.0).sqrt()).abs() < 1e-4);
    }
}
