//! In-network aggregation: the emulated programmable-switch AllReduce.
//!
//! SwitchML's observation is that a programmable switch on the
//! reduction path can add quantized chunks *in flight*: every worker
//! sends its fixed-point contribution once, the switch folds the
//! streams with saturating integer adds, and multicasts the result
//! back. Per-worker wire volume is exactly `2·n` words — one copy up,
//! one copy down — **independent of the worker count**, where every
//! host-side algorithm pays a `(k−1)/k`-flavored factor per direction
//! and extra latency terms in `k`.
//!
//! The reproduction has no switch ASIC, so the group's position-0 rank
//! hosts the dataplane emulation on its own thread. Its dataplane
//! traffic is ledgered separately ([`BytesLedger::switch_bytes_sent`] /
//! [`switch_bytes_recv`]) so the per-worker `2·n` invariant is
//! assertable for *every* worker, including the host.
//!
//! Determinism contract: saturating integer addition is not
//! associative at the saturation boundary, so the fold always proceeds
//! in ascending group-position order. The streamed
//! [`SwitchJob`](crate::stream) path waits for all contributions and
//! folds in the same order — streamed and blocking results are
//! bit-for-bit identical.
//!
//! [`BytesLedger::switch_bytes_sent`]: crate::BytesLedger::switch_bytes_sent
//! [`switch_bytes_recv`]: crate::BytesLedger::switch_bytes_recv

use coconet_compress::QuantChunk;
use coconet_tensor::{ReduceOp, Tensor};
use coconet_trace as trace;
use coconet_trace::EventKind;

use crate::collectives::Group;
use crate::comm::{RankComm, WireMsg};

/// Folds `contribs` in ascending position order — the one fold order
/// both the blocking and streamed switch paths use, because saturating
/// adds do not commute with reassociation at the boundary.
pub(crate) fn fold_contributions(contribs: Vec<QuantChunk>, op: ReduceOp) -> QuantChunk {
    let _fold = trace::span(
        EventKind::CollectivePhase,
        "switch:fold",
        contribs.len() as u64,
        contribs.first().map_or(0, QuantChunk::wire_bytes),
    );
    let mut it = contribs.into_iter();
    let mut acc = it.next().expect("group has at least one worker");
    for c in it {
        acc.accumulate(&c, op);
    }
    acc
}

/// Blocking AllReduce through the emulated aggregation switch.
///
/// Every worker (the position-0 host included, via a self-send)
/// quantizes its whole tensor to `i32` fixed point and sends it to the
/// switch; the switch folds the contributions in ascending position
/// order and multicasts the folded chunk; every worker dequantizes the
/// result back into the input's dtype and shape.
///
/// Wire cost per worker: `n·4` bytes sent, `n·4` bytes received — see
/// [`switch_all_reduce_wire_bytes`](crate::switch_all_reduce_wire_bytes).
/// The values carry the fixed-point round-trip error of
/// [`coconet_compress::quantize_value`] (≤ `2^-16` per contribution
/// before reduction); `Min`/`Max` are exact in ordering because the
/// quantizer is monotone.
///
/// # Panics
///
/// Panics if `comm.rank()` is not a member of `group`, or on a fabric
/// protocol mismatch (a peer sent a non-quantized message).
pub fn switch_all_reduce(comm: &RankComm, group: Group, input: &Tensor, op: ReduceOp) -> Tensor {
    let me = group.position(comm.rank());
    let switch_rank = group.rank_at(0);

    // Up: one quantized copy of the tensor, worker-attributed.
    let q = {
        let _codec = trace::span(EventKind::Codec, "q15:quantize", input.numel() as u64, 0);
        QuantChunk::quantize(input)
    };
    comm.send_msg(switch_rank, WireMsg::Quantized(q));

    if me == 0 {
        // Dataplane: gather in ascending position order, fold, multicast.
        let contribs: Vec<QuantChunk> = (0..group.size)
            .map(|pos| match comm.recv_switch(group.rank_at(pos)) {
                WireMsg::Quantized(c) => c,
                other => {
                    panic!("position {pos} sent {other:?} where a quantized chunk was expected")
                }
            })
            .collect();
        let folded = fold_contributions(contribs, op);
        for pos in 0..group.size {
            comm.send_switch(group.rank_at(pos), WireMsg::Quantized(folded.clone()));
        }
    }

    // Down: the folded chunk, worker-attributed (position 0 receives
    // its own multicast — the channel is FIFO, so the up copy was
    // already consumed by the dataplane above).
    let down = match comm.recv_msg(switch_rank) {
        WireMsg::Quantized(c) => c,
        other => panic!("switch sent {other:?} where a quantized chunk was expected"),
    };
    let _codec = trace::span(EventKind::Codec, "q15:dequantize", input.numel() as u64, 0);
    down.dequantize(input.dtype())
        .reshape(input.shape().clone())
        .expect("dequantized chunk has the input's element count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::ring_all_reduce;
    use coconet_tensor::DType;

    #[test]
    fn matches_ring_all_reduce_within_quantization_error() {
        for k in [2usize, 3, 5, 8] {
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::from_fn([4, 8], DType::F32, |i| {
                    ((comm.rank() * 37 + i) as f32).sin() * 3.0
                });
                let via_switch = switch_all_reduce(&comm, group, &input, ReduceOp::Sum);
                let via_ring = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                (via_switch, via_ring)
            });
            for (rank, (s, r)) in results.iter().enumerate() {
                assert_eq!(s.shape(), r.shape(), "k={k} rank {rank}");
                for i in 0..s.numel() {
                    assert!(
                        (s.get(i) - r.get(i)).abs() < 1e-3,
                        "k={k} rank {rank} elem {i}: switch {} vs ring {}",
                        s.get(i),
                        r.get(i)
                    );
                }
            }
        }
    }

    #[test]
    fn all_workers_agree_bitwise() {
        let k = 7usize;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([32], DType::F32, |i| {
                (comm.rank() as f32 + 0.5) * (i as f32)
            });
            switch_all_reduce(&comm, group, &input, ReduceOp::Sum)
        });
        let reference = &results[0];
        for (rank, out) in results.iter().enumerate() {
            for i in 0..out.numel() {
                assert!(
                    out.get(i).to_bits() == reference.get(i).to_bits(),
                    "rank {rank} elem {i} diverges"
                );
            }
        }
    }

    #[test]
    fn min_and_max_are_exact_under_monotone_quantization() {
        let k = 4usize;
        for op in [ReduceOp::Min, ReduceOp::Max] {
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                // Values on the fixed-point lattice: exact round trips.
                let input = Tensor::from_fn([16], DType::F32, |i| {
                    (comm.rank() as f32 - 1.5) * 2.0 + i as f32
                });
                switch_all_reduce(&comm, group, &input, op)
            });
            for out in &results {
                for i in 0..out.numel() {
                    let want = (0..k).map(|r| (r as f32 - 1.5) * 2.0 + i as f32).fold(
                        if op == ReduceOp::Min {
                            f32::MAX
                        } else {
                            f32::MIN
                        },
                        |a, b| {
                            if op == ReduceOp::Min {
                                a.min(b)
                            } else {
                                a.max(b)
                            }
                        },
                    );
                    assert_eq!(out.get(i), want, "{op:?} elem {i}");
                }
            }
        }
    }

    #[test]
    fn subgroup_offsets_resolve_to_the_right_switch() {
        // Two disjoint groups of 2 inside a 4-rank world: each group's
        // position-0 rank hosts its own switch.
        let results = run_ranks(4, |comm| {
            let group = Group {
                start: (comm.rank() / 2) * 2,
                size: 2,
            };
            let input = Tensor::full([8], DType::F32, comm.rank() as f32 + 1.0);
            switch_all_reduce(&comm, group, &input, ReduceOp::Sum)
        });
        assert_eq!(results[0].get(0), 3.0); // ranks 0+1: 1+2
        assert_eq!(results[1].get(0), 3.0);
        assert_eq!(results[2].get(0), 7.0); // ranks 2+3: 3+4
        assert_eq!(results[3].get(0), 7.0);
    }
}
