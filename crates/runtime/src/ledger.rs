//! The per-rank bytes-moved ledger.
//!
//! SparCML's observation — collective performance is governed by the
//! bytes actually moved — is the quantity this module measures. Every
//! [`RankComm`](crate::RankComm) endpoint counts the bytes and messages
//! it puts on (and takes off) the wire, and pairs them with the
//! [`coconet_tensor::alloc_stats`] counters of its rank thread, so a
//! test or bench can assert, not eyeball, that a collective moved
//! exactly its analytic wire volume and copied nothing beyond it.
//!
//! The flow is: call [`RankComm::reset_ledger`] *on the rank's own
//! thread* at the start of the region to meter, run the collective,
//! then read [`RankComm::ledger`]. Wire counters are exact from
//! construction; the allocation fields are deltas of the rank thread's
//! counters since the last reset (tensor allocations are thread-local,
//! so the baseline must be captured on the thread that will run).

use std::cell::Cell;

use coconet_tensor::{alloc_stats, AllocStats, DType};

/// One rank's data-movement measurements over a metered region.
///
/// Wire fields count logical tensor payloads (`numel × dtype size`) —
/// a handle transfer of an 8 MiB tensor is *accounted* as 8 MiB moved,
/// because that is what the modeled interconnect would carry — while
/// the allocation fields count what the rank's memory system actually
/// did. A zero-copy collective therefore shows full wire volume and
/// near-zero `cow_bytes`/`bytes_allocated`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BytesLedger {
    /// Bytes of tensor payload this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank sent.
    pub sends: u64,
    /// Bytes of tensor payload this rank received.
    pub bytes_received: u64,
    /// Messages this rank received.
    pub recvs: u64,
    /// Buffer materializations on this rank's thread (fresh tensors
    /// plus copy-on-write copies).
    pub allocations: u64,
    /// Bytes of those materializations.
    pub bytes_allocated: u64,
    /// Copy-on-write materializations (shared buffer written).
    pub cow_copies: u64,
    /// Bytes copied by copy-on-write materializations.
    pub cow_bytes: u64,
    /// Bytes sent per priority class (class 0 = most urgent, consumed
    /// first by the next iteration; classes past
    /// [`PRIORITY_CLASSES`]`-1` clamp into the last bucket). Untagged
    /// traffic counts only in [`bytes_sent`](BytesLedger::bytes_sent),
    /// so these stay zero unless the priority scheduler ran — which is
    /// what lets a test assert the fabric actually reordered traffic.
    pub class_bytes_sent: [u64; PRIORITY_CLASSES],
    /// Bytes this rank moved while emulating the in-network aggregation
    /// switch's dataplane (multicasts of folded chunks). Kept out of
    /// [`bytes_sent`](BytesLedger::bytes_sent) because a real switch is
    /// not a worker: the per-worker `2·n` volume claim of
    /// `CollAlgo::Switch` must hold for the rank that hosts the
    /// emulation too.
    pub switch_bytes_sent: u64,
    /// Bytes received on the emulated switch dataplane (workers'
    /// quantized contributions), excluded from
    /// [`bytes_received`](BytesLedger::bytes_received) for the same
    /// reason.
    pub switch_bytes_recv: u64,
}

/// Number of distinct wire priority classes the ledger distinguishes.
pub const PRIORITY_CLASSES: usize = 8;

impl BytesLedger {
    pub(crate) fn from_parts(wire: WireCounters, alloc: AllocStats) -> BytesLedger {
        BytesLedger {
            bytes_sent: wire.bytes_sent,
            sends: wire.sends,
            bytes_received: wire.bytes_received,
            recvs: wire.recvs,
            allocations: alloc.allocations,
            bytes_allocated: alloc.bytes_allocated,
            cow_copies: alloc.cow_copies,
            cow_bytes: alloc.cow_bytes,
            class_bytes_sent: wire.class_bytes_sent,
            switch_bytes_sent: wire.switch_bytes_sent,
            switch_bytes_recv: wire.switch_bytes_recv,
        }
    }

    /// Bytes sent at priority classes strictly more urgent than
    /// `class` — the quantity a reordering assertion compares against
    /// a later class's progress.
    pub fn bytes_sent_before_class(&self, class: u8) -> u64 {
        self.class_bytes_sent
            .iter()
            .take((class as usize).min(PRIORITY_CLASSES))
            .sum()
    }
}

/// The analytic per-rank send volume of a ring AllReduce: ReduceScatter
/// plus AllGather each ship `(p−1)/p` of the tensor, so a rank sends
/// `2·(p−1)/p · n · dtype_size` bytes (exact when `p` divides `n`;
/// uneven chunks shift single elements between ranks).
pub fn ring_all_reduce_wire_bytes(n: usize, p: usize, dtype: DType) -> u64 {
    if p <= 1 {
        return 0;
    }
    (2 * (p - 1) * (n / p) * dtype.size_bytes()) as u64
}

/// The analytic per-rank send volume of the top-k sparse AllReduce at
/// `k_permille` density — `log2(p) · k · 8` bytes on power-of-two
/// groups (recursive doubling), `(p−1) · k · 8` on the AllGather form
/// — as the ledger measures it. A thin rank-count wrapper over
/// [`coconet_compress::sparse_all_reduce_wire_bytes`].
pub fn top_k_all_reduce_wire_bytes(n: usize, p: usize, k_permille: u16) -> u64 {
    let format = coconet_compress::WireFormat::TopK { k_permille };
    coconet_compress::sparse_all_reduce_wire_bytes(n as u64, p as u64, format.k_for(n as u64))
}

/// The analytic per-worker wire volume of the in-network switch
/// AllReduce: one quantized copy up to the switch plus one folded copy
/// back down — `2·n·4` bytes split evenly between
/// [`bytes_sent`](BytesLedger::bytes_sent) and
/// [`bytes_received`](BytesLedger::bytes_received), *independent of the
/// worker count*. A rank-geometry-free wrapper over
/// [`coconet_compress::switch_all_reduce_wire_bytes`].
pub fn switch_all_reduce_wire_bytes(n: usize) -> u64 {
    coconet_compress::switch_all_reduce_wire_bytes(n as u64)
}

/// Interior-mutable wire counters owned by a [`RankComm`]. Each rank
/// endpoint lives on exactly one thread, so plain `Cell`s suffice — no
/// atomics on the send path.
///
/// [`RankComm`]: crate::RankComm
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WireCounters {
    bytes_sent: u64,
    sends: u64,
    bytes_received: u64,
    recvs: u64,
    class_bytes_sent: [u64; PRIORITY_CLASSES],
    switch_bytes_sent: u64,
    switch_bytes_recv: u64,
}

/// The ledger state embedded in a [`RankComm`](crate::RankComm).
#[derive(Debug)]
pub(crate) struct LedgerState {
    wire: Cell<WireCounters>,
    alloc_base: Cell<AllocStats>,
}

impl WireCounters {
    fn add_send(mut self, bytes: u64) -> WireCounters {
        self.bytes_sent += bytes;
        self.sends += 1;
        self
    }

    fn add_send_class(mut self, class: u8, bytes: u64) -> WireCounters {
        self.class_bytes_sent[(class as usize).min(PRIORITY_CLASSES - 1)] += bytes;
        self.add_send(bytes)
    }

    fn add_recv(mut self, bytes: u64) -> WireCounters {
        self.bytes_received += bytes;
        self.recvs += 1;
        self
    }

    fn add_switch_send(mut self, bytes: u64) -> WireCounters {
        self.switch_bytes_sent += bytes;
        self
    }

    fn add_switch_recv(mut self, bytes: u64) -> WireCounters {
        self.switch_bytes_recv += bytes;
        self
    }
}

impl LedgerState {
    pub(crate) fn new() -> LedgerState {
        LedgerState {
            wire: Cell::new(WireCounters::default()),
            alloc_base: Cell::new(alloc_stats()),
        }
    }

    #[inline]
    pub(crate) fn record_send(&self, bytes: usize) {
        self.wire.set(self.wire.get().add_send(bytes as u64));
    }

    #[inline]
    pub(crate) fn record_send_class(&self, class: u8, bytes: usize) {
        self.wire
            .set(self.wire.get().add_send_class(class, bytes as u64));
    }

    #[inline]
    pub(crate) fn record_recv(&self, bytes: usize) {
        self.wire.set(self.wire.get().add_recv(bytes as u64));
    }

    #[inline]
    pub(crate) fn record_switch_send(&self, bytes: usize) {
        self.wire.set(self.wire.get().add_switch_send(bytes as u64));
    }

    #[inline]
    pub(crate) fn record_switch_recv(&self, bytes: usize) {
        self.wire.set(self.wire.get().add_switch_recv(bytes as u64));
    }

    pub(crate) fn reset(&self) {
        self.wire.set(WireCounters::default());
        self.alloc_base.set(alloc_stats());
    }

    pub(crate) fn snapshot(&self) -> BytesLedger {
        BytesLedger::from_parts(self.wire.get(), alloc_stats().since(self.alloc_base.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_counters_accumulate() {
        let state = LedgerState::new();
        state.reset();
        state.record_send(100);
        state.record_send(28);
        state.record_recv(64);
        let l = state.snapshot();
        assert_eq!(l.bytes_sent, 128);
        assert_eq!(l.sends, 2);
        assert_eq!(l.bytes_received, 64);
        assert_eq!(l.recvs, 1);
        state.reset();
        assert_eq!(state.snapshot().bytes_sent, 0);
    }

    #[test]
    fn class_counters_track_tagged_sends_only() {
        let state = LedgerState::new();
        state.reset();
        state.record_send(100); // untagged: no class bucket
        state.record_send_class(0, 8);
        state.record_send_class(2, 16);
        state.record_send_class(200, 32); // clamps into the last bucket
        let l = state.snapshot();
        assert_eq!(l.bytes_sent, 156);
        assert_eq!(l.sends, 4);
        assert_eq!(l.class_bytes_sent[0], 8);
        assert_eq!(l.class_bytes_sent[2], 16);
        assert_eq!(l.class_bytes_sent[PRIORITY_CLASSES - 1], 32);
        assert_eq!(l.class_bytes_sent.iter().sum::<u64>(), 56);
        assert_eq!(l.bytes_sent_before_class(1), 8);
        assert_eq!(l.bytes_sent_before_class(3), 24);
        assert_eq!(l.bytes_sent_before_class(255), 56);
        state.reset();
        assert_eq!(state.snapshot().class_bytes_sent, [0; PRIORITY_CLASSES]);
    }

    #[test]
    fn switch_counters_are_attributed_separately() {
        let state = LedgerState::new();
        state.reset();
        state.record_send(64); // this rank's own worker-side contribution
        state.record_switch_recv(64); // dataplane: gather k contributions
        state.record_switch_recv(64);
        state.record_switch_send(64); // dataplane: multicast the fold
        state.record_switch_send(64);
        state.record_recv(64); // worker-side folded result
        let l = state.snapshot();
        assert_eq!(l.bytes_sent, 64, "dataplane traffic must not leak in");
        assert_eq!(l.bytes_received, 64);
        assert_eq!(l.switch_bytes_sent, 128);
        assert_eq!(l.switch_bytes_recv, 128);
        state.reset();
        assert_eq!(state.snapshot().switch_bytes_sent, 0);
    }

    #[test]
    fn analytic_switch_volume_is_constant_in_worker_count() {
        let n = 1usize << 24;
        assert_eq!(switch_all_reduce_wire_bytes(n), 2 * (n as u64) * 4);
        // No rank-count parameter exists to vary — the signature itself
        // is the claim — but the ring volume it displaces grows with p.
        assert!(
            ring_all_reduce_wire_bytes(n, 2, DType::F32)
                < ring_all_reduce_wire_bytes(n, 32, DType::F32)
        );
    }

    #[test]
    fn analytic_ring_volume() {
        assert_eq!(ring_all_reduce_wire_bytes(16, 4, DType::F32), 96);
        assert_eq!(ring_all_reduce_wire_bytes(1 << 24, 8, DType::F32), {
            let n = 1u64 << 24;
            2 * 7 * (n / 8) * 4
        });
        assert_eq!(ring_all_reduce_wire_bytes(100, 1, DType::F16), 0);
    }

    #[test]
    fn alloc_delta_tracks_this_thread() {
        let state = LedgerState::new();
        state.reset();
        let _t = coconet_tensor::Tensor::zeros([64], DType::F32);
        let l = state.snapshot();
        assert_eq!(l.allocations, 1);
        assert_eq!(l.bytes_allocated, 256);
    }

    mod collective_volumes {
        use coconet_tensor::{DType, ReduceOp, Tensor};

        use crate::comm::run_ranks;
        use crate::hierarchical::hierarchical_all_reduce;
        use crate::tree::tree_all_reduce;
        use crate::{ring_all_reduce, ring_all_reduce_wire_bytes, BytesLedger, Group};

        fn metered<T: Send + 'static>(
            k: usize,
            f: impl Fn(&crate::RankComm, Group, Tensor) -> T + Send + Sync + Clone + 'static,
        ) -> Vec<(T, BytesLedger)> {
            run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::from_fn([64], DType::F32, |i| (comm.rank() * 100 + i) as f32);
                comm.reset_ledger();
                let out = f(&comm, group, input);
                (out, comm.ledger())
            })
        }

        /// The acceptance invariant: a ring AllReduce sends exactly the
        /// analytic `2·(p−1)/p·n·dtype_size` bytes per rank, and the
        /// only materializations are the `(p−1)/p·n` detach-copy of the
        /// reduction plus the final output buffer — sends are handle
        /// transfers, reduces are in place, nothing else is copied.
        #[test]
        fn ring_all_reduce_moves_exactly_the_analytic_volume() {
            let (k, n, ds) = (4usize, 64usize, DType::F32.size_bytes());
            let results = metered(k, |comm, group, input| {
                ring_all_reduce(comm, group, &input, ReduceOp::Sum)
            });
            let wire = ring_all_reduce_wire_bytes(n, k, DType::F32);
            assert_eq!(wire, (2 * (k - 1) * (n / k) * ds) as u64);
            for (rank, (out, l)) in results.iter().enumerate() {
                assert_eq!(out.numel(), n);
                assert_eq!(l.bytes_sent, wire, "rank {rank}");
                assert_eq!(l.bytes_received, wire, "rank {rank}");
                assert_eq!(l.sends, 2 * (k as u64 - 1), "rank {rank}");
                // Reduce-scatter detaches each of the k-1 reduced
                // chunks once: (k-1)/k of the tensor, copy-on-write.
                let cow = ((k - 1) * (n / k) * ds) as u64;
                assert_eq!(l.cow_bytes, cow, "rank {rank}: {l:?}");
                assert_eq!(l.cow_copies, k as u64 - 1, "rank {rank}");
                // Plus exactly one fresh buffer: the assembled output.
                assert_eq!(l.allocations, k as u64, "rank {rank}: {l:?}");
                assert_eq!(l.bytes_allocated, cow + (n * ds) as u64, "rank {rank}");
            }
        }

        /// Tree AllReduce: every non-root sends its tensor once up the
        /// reduction tree, and every internal node sends once per child
        /// on the way down — `2(p−1)` tensor payloads in aggregate.
        #[test]
        fn tree_all_reduce_reports_analytic_volume() {
            let (k, n, ds) = (4usize, 64usize, DType::F32.size_bytes());
            let results = metered(k, |comm, group, input| {
                tree_all_reduce(comm, group, &input, ReduceOp::Sum)
            });
            let total: u64 = results.iter().map(|(_, l)| l.bytes_sent).sum();
            assert_eq!(total, (2 * (k - 1) * n * ds) as u64);
            // Per-position: pos 0 (root) forwards to its log2(k)
            // subtree children; leaf pos 3 only sends its contribution.
            let payload = (n * ds) as u64;
            assert_eq!(
                results[0].1.bytes_sent,
                2 * payload,
                "root sends to 2 children"
            );
            assert_eq!(results[3].1.bytes_sent, payload, "leaf sends once");
        }

        /// Hierarchical AllReduce over 2 nodes of 2: phase-by-phase
        /// derivation for `p = 4`, `node_size = 2`, elements `n`
        /// divisible by 4 —
        ///
        /// leader (node position 0) sends, in elements:
        ///   RS: intra ring n/2, leader exchange n/2, member scatter n/4
        ///   AG: intra ring n/4, leader exchange n/2, member forward n/2
        ///   total 5n/2;
        /// member sends: intra RS n/2, chunk hand-off n/2, intra AG n/4
        ///   — total 5n/4.
        #[test]
        fn hierarchical_all_reduce_reports_analytic_volume() {
            let (k, n, ds) = (4usize, 64usize, DType::F32.size_bytes());
            let results = metered(k, |comm, group, input| {
                hierarchical_all_reduce(comm, group, &input, ReduceOp::Sum, 2)
            });
            let leader = (5 * n / 2 * ds) as u64;
            let member = (5 * n / 4 * ds) as u64;
            for (rank, (out, l)) in results.iter().enumerate() {
                assert_eq!(out.numel(), n);
                let want = if rank % 2 == 0 { leader } else { member };
                assert_eq!(l.bytes_sent, want, "rank {rank}: {l:?}");
            }
            let total: u64 = results.iter().map(|(_, l)| l.bytes_sent).sum();
            assert_eq!(total, 2 * (leader + member));
        }

        /// The tentpole invariant: the in-network switch AllReduce
        /// moves exactly `n·4` bytes up and `n·4` bytes down per
        /// worker — *constant in the worker count* — and the rank
        /// hosting the switch emulation ledgers its dataplane traffic
        /// separately, so the `2·n` claim holds for it too.
        #[test]
        fn switch_all_reduce_moves_exactly_two_n_per_worker() {
            use crate::switch::switch_all_reduce;
            use crate::switch_all_reduce_wire_bytes;

            let n = 64usize;
            let per_worker = switch_all_reduce_wire_bytes(n);
            assert_eq!(per_worker, 2 * n as u64 * 4);
            for k in [2usize, 4, 8, 16] {
                let results = metered(k, |comm, group, input| {
                    switch_all_reduce(comm, group, &input, ReduceOp::Sum)
                });
                for (rank, (out, l)) in results.iter().enumerate() {
                    assert_eq!(out.numel(), n);
                    // Element 0 sums rank·100 over the group; the
                    // fixed-point round trip is exact on integers.
                    let want = (0..k).map(|r| (r * 100) as f32).sum::<f32>();
                    assert!((out.get(0) - want).abs() < 1e-3, "k={k} rank {rank}");
                    assert_eq!(l.bytes_sent, per_worker / 2, "k={k} rank {rank}: {l:?}");
                    assert_eq!(l.bytes_received, per_worker / 2, "k={k} rank {rank}");
                    assert_eq!(l.sends, 1, "k={k} rank {rank}");
                    assert_eq!(l.recvs, 1, "k={k} rank {rank}");
                    let dataplane = if rank == 0 {
                        k as u64 * per_worker / 2
                    } else {
                        0
                    };
                    assert_eq!(l.switch_bytes_sent, dataplane, "k={k} rank {rank}");
                    assert_eq!(l.switch_bytes_recv, dataplane, "k={k} rank {rank}");
                }
            }
        }

        /// The FP16 wire halves every collective's volume on F32
        /// payloads — ring, tree, and hierarchical AllReduce all move
        /// exactly half their dense bytes, to the byte (every payload
        /// is the same element count at two bytes per element). The
        /// switch is the exception that proves its design: its wire is
        /// always the fixed-point `i32` word, so FP16 changes nothing.
        #[test]
        fn fp16_wire_moves_exactly_half_the_dense_bytes() {
            use crate::compressed::all_reduce_wire;
            use coconet_compress::WireFormat;
            use coconet_core::CollAlgo;

            let k = 4usize;
            for algo in CollAlgo::ALL {
                let results = run_ranks(k, move |comm| {
                    let group = Group { start: 0, size: k };
                    let input =
                        Tensor::from_fn([64], DType::F32, |i| (comm.rank() * 100 + i) as f32);
                    comm.reset_ledger();
                    let _ = all_reduce_wire(
                        &comm,
                        group,
                        &input,
                        ReduceOp::Sum,
                        algo,
                        2,
                        WireFormat::Dense,
                        None,
                    );
                    let dense = comm.ledger();
                    comm.reset_ledger();
                    let _ = all_reduce_wire(
                        &comm,
                        group,
                        &input,
                        ReduceOp::Sum,
                        algo,
                        2,
                        WireFormat::Fp16,
                        None,
                    );
                    (dense, comm.ledger())
                });
                for (rank, (dense, fp16)) in results.iter().enumerate() {
                    if algo == CollAlgo::Switch {
                        assert_eq!(
                            fp16.bytes_sent, dense.bytes_sent,
                            "{algo} rank {rank}: the switch wire is i32 either way"
                        );
                    } else {
                        assert_eq!(
                            2 * fp16.bytes_sent,
                            dense.bytes_sent,
                            "{algo} rank {rank}: fp16 {fp16:?} vs dense {dense:?}"
                        );
                    }
                    assert_eq!(fp16.sends, dense.sends, "{algo} rank {rank}: same messages");
                }
                // And the ring's dense reference is itself the analytic
                // volume, so fp16 == the analytic F16 formula.
                if algo == CollAlgo::Ring {
                    let (_, fp16) = results[0];
                    assert_eq!(
                        fp16.bytes_sent,
                        ring_all_reduce_wire_bytes(64, k, DType::F16)
                    );
                }
            }
        }

        /// The sparse AllReduce moves exactly its analytic volume —
        /// `log2(p) · k · 8` per rank on power-of-two groups
        /// (recursive doubling), `(p−1) · k · 8` on the AllGather form
        /// — independent of the data, because every chunk is padded to
        /// exactly `k` entries.
        #[test]
        fn top_k_all_reduce_moves_exactly_the_analytic_volume() {
            use crate::compressed::sparse_all_reduce;
            use crate::top_k_all_reduce_wire_bytes;
            use coconet_compress::WireFormat;

            let n = 1000usize;
            let k_permille = 10u16; // k = 10 entries of 8 bytes
            for p in [8usize, 6] {
                let results = run_ranks(p, move |comm| {
                    let group = Group { start: 0, size: p };
                    // Concentrated data on rank 0, spread on others —
                    // the volume must not care.
                    let input = Tensor::from_fn([n], DType::F32, |i| {
                        if comm.rank() == 0 && i < 5 {
                            1000.0
                        } else {
                            (comm.rank() * 31 + i) as f32 / 97.0
                        }
                    });
                    comm.reset_ledger();
                    let _ = sparse_all_reduce(
                        &comm,
                        group,
                        &input,
                        WireFormat::TopK { k_permille },
                        None,
                    );
                    comm.ledger()
                });
                let want = top_k_all_reduce_wire_bytes(n, p, k_permille);
                let rounds = if p.is_power_of_two() {
                    p.ilog2() as u64
                } else {
                    p as u64 - 1
                };
                assert_eq!(want, rounds * 10 * 8, "p={p}");
                for (rank, l) in results.iter().enumerate() {
                    assert_eq!(l.bytes_sent, want, "p={p} rank {rank}: {l:?}");
                    assert_eq!(l.bytes_received, want, "p={p} rank {rank}");
                    assert_eq!(l.sends, rounds, "p={p} rank {rank}");
                }
            }
        }

        /// The acceptance volumes at the criterion's own geometry
        /// (8 ranks): top-k at 10 ‰ moves under 5 % of the dense wire
        /// bytes, FP16 moves exactly half. The release-size (2^24)
        /// measurement lives in the bench trajectory; the ratios are
        /// size-independent, which this pins at test size.
        #[test]
        fn compressed_volume_acceptance_ratios() {
            use crate::top_k_all_reduce_wire_bytes;
            let (n, p) = (1 << 14, 8);
            let dense = ring_all_reduce_wire_bytes(n, p, DType::F32);
            let fp16 = ring_all_reduce_wire_bytes(n, p, DType::F16);
            let topk = top_k_all_reduce_wire_bytes(n, p, 10);
            assert_eq!(2 * fp16, dense);
            assert!(
                (topk as f64) < 0.05 * dense as f64,
                "topk {topk} vs dense {dense}"
            );
        }

        /// Metering is per region: a reset between two collectives
        /// isolates the second one's traffic.
        #[test]
        fn reset_isolates_regions() {
            let k = 2;
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::from_fn([8], DType::F32, |i| i as f32);
                comm.reset_ledger();
                let _ = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                let first = comm.ledger();
                comm.reset_ledger();
                let _ = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                (first, comm.ledger())
            });
            for (first, second) in results {
                assert_eq!(first.bytes_sent, second.bytes_sent);
                assert_eq!(
                    first.bytes_sent,
                    ring_all_reduce_wire_bytes(8, 2, DType::F32)
                );
            }
        }
    }
}
