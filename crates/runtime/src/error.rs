//! Runtime error type.

use std::error::Error;
use std::fmt;

use coconet_core::CoreError;
use coconet_tensor::TensorError;

/// Errors produced while executing a program on the functional runtime.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// No initializer was provided for a declared input.
    MissingInput(String),
    /// An initializer's shape/dtype disagrees with the declaration.
    BadInput {
        /// The input's name.
        name: String,
        /// What disagreed.
        detail: String,
    },
    /// A type/binding error from the core crate.
    Core(CoreError),
    /// A tensor arithmetic error.
    Tensor(TensorError),
    /// A rank thread panicked.
    RankPanicked(usize),
    /// The requested output does not exist or is absent on every group.
    NoSuchOutput(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingInput(name) => {
                write!(f, "no initializer provided for input `{name}`")
            }
            RuntimeError::BadInput { name, detail } => {
                write!(f, "bad initializer for input `{name}`: {detail}")
            }
            RuntimeError::Core(e) => write!(f, "{e}"),
            RuntimeError::Tensor(e) => write!(f, "{e}"),
            RuntimeError::RankPanicked(rank) => write!(f, "rank {rank} panicked"),
            RuntimeError::NoSuchOutput(name) => {
                write!(f, "program has no output named `{name}`")
            }
        }
    }
}

impl Error for RuntimeError {
    // Transparent wrapping: Display forwards to the wrapped error, so
    // source() skips it to avoid double-reporting in walked chains.
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Core(e) => e.source(),
            RuntimeError::Tensor(e) => e.source(),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> RuntimeError {
        RuntimeError::Core(e)
    }
}

impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> RuntimeError {
        RuntimeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::MissingInput("w".into());
        assert!(e.to_string().contains("`w`"));
        // Transparent wrapping: the message forwards, and source()
        // skips the forwarding layer so walked chains show each
        // message exactly once.
        let core = RuntimeError::from(CoreError::UnboundSymbol("B".into()));
        assert_eq!(
            core.to_string(),
            CoreError::UnboundSymbol("B".into()).to_string()
        );
        assert!(core.source().is_none());
        let t = RuntimeError::from(TensorError::ConcatMismatch);
        assert_eq!(t.to_string(), TensorError::ConcatMismatch.to_string());
        assert!(t.source().is_none());
        assert!(RuntimeError::RankPanicked(3).to_string().contains('3'));
    }
}
