//! Two-level hierarchical collectives — the third logical topology the
//! schedule's [`CollAlgo`](coconet_core::CollAlgo) dimension can pick.
//!
//! The DGX-2 testbed the cost model parameterizes has two fabrics:
//! NVLink/NVSwitch inside a node and InfiniBand between nodes. The
//! hierarchical algorithms exploit that split with real data movement:
//! an **intra-node ring** phase over each node's consecutive ranks,
//! an **inter-node exchange across node leaders** (the first rank of
//! each node), and an intra-node redistribution. Their postconditions
//! are identical to the flat ring collectives' — rank at group
//! position `i` owns chunk `i` after a ReduceScatter — so they compose
//! with each other and with the ring variants interchangeably, which
//! is what the semantics-preservation property tests machine-check.
//!
//! `node_size` is the number of consecutive group ranks per node
//! (`Cluster::node_of` maps consecutive global ranks to nodes the same
//! way). `0`, or a value covering the whole group, means the group
//! fits one node and the algorithms degenerate to the flat ring.

use coconet_compress::WireFormat;
use coconet_tensor::{ReduceOp, Tensor};

use crate::collectives::{
    chunk_range, clamp_channels, recv_striped, ring_all_gather_wire_striped,
    ring_reduce_scatter_wire_striped, send_striped, wire_decode, wire_encode, Group,
};
use crate::RankComm;

/// Layout of one rank's node within a hierarchical group.
struct NodeGeom {
    /// The whole group the collective runs over.
    group: Group,
    /// Consecutive group ranks per node.
    node_size: usize,
    /// This rank's position within the whole group.
    me: usize,
    /// Index of this rank's node (consecutive `node_size` blocks).
    my_node: usize,
    /// Number of nodes the group spans (last may be smaller).
    n_nodes: usize,
    /// Group position of this node's leader (its first rank).
    node_first: usize,
    /// The node-local subgroup of consecutive ranks.
    sub: Group,
    /// This rank's position within the node subgroup.
    local_pos: usize,
}

impl NodeGeom {
    fn new(comm: &RankComm, group: Group, node_size: usize) -> NodeGeom {
        let me = group.position(comm.rank());
        let my_node = me / node_size;
        let node_first = my_node * node_size;
        NodeGeom {
            group,
            node_size,
            me,
            my_node,
            n_nodes: group.size.div_ceil(node_size),
            node_first,
            sub: Group {
                start: group.start + node_first,
                size: node_size.min(group.size - node_first),
            },
            local_pos: me - node_first,
        }
    }

    /// Global rank of a node's leader.
    fn leader(&self, node: usize) -> usize {
        self.group.start + node * self.node_size
    }

    /// Ranks on `node` (the last node may be short).
    fn node_members(&self, node: usize) -> usize {
        self.node_size.min(self.group.size - node * self.node_size)
    }
}

/// A zero-copy window view, tolerating the degenerate empty ranges the
/// short-last-node geometries produce.
fn slice_or_empty(t: &Tensor, off: usize, len: usize) -> Tensor {
    if len == 0 {
        t.slice_flat(0, 0).expect("empty view")
    } else {
        t.slice_flat(off, len).expect("in range")
    }
}

/// Whether `node_size` actually splits the group into multiple nodes.
fn is_flat(group: Group, node_size: usize) -> bool {
    node_size == 0 || node_size >= group.size
}

/// Hierarchical ReduceScatter: intra-node ring ReduceScatter, chunk
/// hand-off to the node leader, a direct superchunk exchange across
/// node leaders over the inter-node fabric, and an intra-node scatter
/// of the final chunks. Same postcondition as
/// [`ring_reduce_scatter`](crate::ring_reduce_scatter): group position
/// `i` returns owning the fully reduced flat chunk
/// `chunk_range(numel, k, i)`.
pub fn hierarchical_reduce_scatter(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
) -> Tensor {
    hierarchical_reduce_scatter_wire(comm, group, input, op, node_size, WireFormat::Dense)
}

/// [`hierarchical_reduce_scatter`] with every payload — the intra-node
/// ring hops, the leader hand-offs, the inter-node superchunk
/// exchange, and the final scatter — encoded per `wire`. The dense
/// wire is byte- and allocation-identical to the plain variant.
pub fn hierarchical_reduce_scatter_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
    wire: WireFormat,
) -> Tensor {
    hierarchical_reduce_scatter_wire_striped(comm, group, input, op, node_size, wire, 1)
}

/// [`hierarchical_reduce_scatter_wire`] with every phase striped over
/// `channels` lanes: the intra-node rings run the striped ring engine
/// and the leader hand-offs, the inter-node superchunk exchange, and
/// the final scatter each travel as `channels` zero-copy stripe views.
/// Byte totals and results are unchanged at every width; `channels <=
/// 1` is the single-lane path.
pub fn hierarchical_reduce_scatter_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let channels = clamp_channels(channels);
    if is_flat(group, node_size) {
        return ring_reduce_scatter_wire_striped(comm, group, input, op, wire, channels);
    }
    let k = group.size;
    let n = input.numel();
    let dtype = input.dtype();
    let g = NodeGeom::new(comm, group, node_size);

    // Phase 1: intra-node ring ReduceScatter — local position `j` owns
    // the node-reduced chunk `chunk_range(n, sub.size, j)`.
    let local_chunk = ring_reduce_scatter_wire_striped(comm, g.sub, input, op, wire, channels);

    if g.local_pos != 0 {
        // Phase 2: hand the node-reduced chunk to the leader; phase 4:
        // receive the globally reduced final chunk back.
        send_striped(comm, g.sub.start, wire_encode(&local_chunk, wire), channels);
        return wire_decode(recv_striped(comm, g.sub.start, channels), wire, dtype);
    }

    // Leader: reassemble the node-partial tensor from member chunks.
    let mut partial = Tensor::zeros([n], input.dtype());
    let (own_off, own_len) = chunk_range(n, g.sub.size, 0);
    if own_len > 0 {
        partial.write_flat(own_off, &local_chunk).expect("in range");
    }
    for j in 1..g.sub.size {
        let t = wire_decode(recv_striped(comm, g.sub.start + j, channels), wire, dtype);
        let (off, len) = chunk_range(n, g.sub.size, j);
        if len > 0 {
            partial.write_flat(off, &t).expect("in range");
        }
    }

    // Superchunk of a node: the contiguous union of its members'
    // global chunks (members are consecutive, so chunks are too).
    let superchunk = |node: usize| {
        let first = node * node_size;
        let last = ((node + 1) * node_size).min(k);
        let (off, _) = chunk_range(n, k, first);
        let end = if last == k {
            n
        } else {
            chunk_range(n, k, last).0
        };
        (off, end - off)
    };

    // Phase 3: direct exchange across node leaders — send every other
    // leader our partial over *their* superchunk, receive theirs over
    // ours, and reduce.
    for node in 0..g.n_nodes {
        if node == g.my_node {
            continue;
        }
        let (off, len) = superchunk(node);
        send_striped(
            comm,
            g.leader(node),
            wire_encode(&slice_or_empty(&partial, off, len), wire),
            channels,
        );
    }
    let (s_off, s_len) = superchunk(g.my_node);
    // A view of the node partial; the first fold detaches exactly the
    // superchunk window, then reduces in place.
    let mut acc = slice_or_empty(&partial, s_off, s_len);
    for node in 0..g.n_nodes {
        if node == g.my_node {
            continue;
        }
        let incoming = wire_decode(recv_striped(comm, g.leader(node), channels), wire, dtype);
        acc.reduce_assign(&incoming, op)
            .expect("leaders agree on superchunk geometry");
    }

    // Phase 4: scatter the final chunks to the node's members.
    for j in 1..g.sub.size {
        let (off, len) = chunk_range(n, k, g.node_first + j);
        send_striped(
            comm,
            g.sub.start + j,
            wire_encode(&slice_or_empty(&acc, off - s_off, len), wire),
            channels,
        );
    }
    let (off, len) = chunk_range(n, k, g.me);
    slice_or_empty(&acc, off - s_off, len)
}

/// Hierarchical AllGather: intra-node ring AllGather, a chunk exchange
/// across node leaders, and an intra-node forward of the remote
/// chunks. Same postcondition as
/// [`ring_all_gather`](crate::ring_all_gather): every rank returns all
/// `k` chunks in group-position order.
pub fn hierarchical_all_gather(
    comm: &RankComm,
    group: Group,
    chunk: &Tensor,
    node_size: usize,
) -> Vec<Tensor> {
    hierarchical_all_gather_wire(comm, group, chunk, node_size, WireFormat::Dense)
}

/// [`hierarchical_all_gather`] with every payload encoded per `wire`
/// (chunks travel encoded across the leader exchange and the
/// intra-node forward, one decode per chunk per rank at the phase
/// boundaries). The dense wire is byte- and allocation-identical to
/// the plain variant.
pub fn hierarchical_all_gather_wire(
    comm: &RankComm,
    group: Group,
    chunk: &Tensor,
    node_size: usize,
    wire: WireFormat,
) -> Vec<Tensor> {
    hierarchical_all_gather_wire_striped(comm, group, chunk, node_size, wire, 1)
}

/// [`hierarchical_all_gather_wire`] with every phase striped over
/// `channels` lanes: the intra-node ring runs the striped engine and
/// every chunk of the leader exchange and the intra-node forward
/// travels as `channels` zero-copy stripe views of its encoded buffer.
/// Byte totals and results are unchanged at every width; `channels <=
/// 1` is the single-lane path.
pub fn hierarchical_all_gather_wire_striped(
    comm: &RankComm,
    group: Group,
    chunk: &Tensor,
    node_size: usize,
    wire: WireFormat,
    channels: usize,
) -> Vec<Tensor> {
    let channels = clamp_channels(channels);
    if is_flat(group, node_size) {
        return ring_all_gather_wire_striped(comm, group, chunk, wire, channels);
    }
    let k = group.size;
    let dtype = chunk.dtype();
    let g = NodeGeom::new(comm, group, node_size);

    // Phase 1: intra-node ring AllGather — every member of the node
    // holds all of the node's chunks. From here on `all` lives in
    // *wire encoding*: each local chunk is encoded exactly once, every
    // forward (leader exchange and intra-node fan-out) is a buffer
    // handle of the already-encoded payload, and every rank decodes
    // each chunk exactly once at the end.
    let node_chunks = ring_all_gather_wire_striped(comm, g.sub, chunk, wire, channels);

    let mut all: Vec<Option<Tensor>> = vec![None; k];
    for (j, c) in node_chunks.into_iter().enumerate() {
        all[g.node_first + j] = Some(wire_encode(&c, wire));
    }
    let is_local = |pos: usize| pos >= g.node_first && pos < g.node_first + g.sub.size;

    if g.local_pos == 0 {
        // Phase 2: leaders exchange their nodes' chunks (ascending
        // position order on both sides).
        for node in 0..g.n_nodes {
            if node == g.my_node {
                continue;
            }
            let dst = g.leader(node);
            for j in 0..g.sub.size {
                send_striped(
                    comm,
                    dst,
                    all[g.node_first + j].clone().expect("own node chunk"),
                    channels,
                );
            }
        }
        for node in 0..g.n_nodes {
            if node == g.my_node {
                continue;
            }
            let src = g.leader(node);
            for j in 0..g.node_members(node) {
                all[node * node_size + j] = Some(recv_striped(comm, src, channels));
            }
        }
        // Phase 3: forward the remote chunks to the node's members —
        // handle copies of the encoded buffers.
        for member in 1..g.sub.size {
            for (pos, c) in all.iter().enumerate() {
                if !is_local(pos) {
                    send_striped(
                        comm,
                        g.sub.start + member,
                        c.clone().expect("gathered above"),
                        channels,
                    );
                }
            }
        }
    } else {
        // Members receive the remote chunks from their leader, in the
        // same ascending position order the leader sends them.
        for (pos, slot) in all.iter_mut().enumerate() {
            if !is_local(pos) {
                *slot = Some(recv_striped(comm, g.sub.start, channels));
            }
        }
    }
    all.into_iter()
        .map(|c| wire_decode(c.expect("all chunks gathered"), wire, dtype))
        .collect()
}

/// Hierarchical AllReduce = hierarchical ReduceScatter ∘ hierarchical
/// AllGather; returns the fully reduced tensor with the input's shape,
/// exactly like [`ring_all_reduce`](crate::ring_all_reduce).
pub fn hierarchical_all_reduce(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
) -> Tensor {
    hierarchical_all_reduce_wire(comm, group, input, op, node_size, WireFormat::Dense)
}

/// [`hierarchical_all_reduce`] with every payload of both phases
/// encoded per `wire` — under FP16 the two-level exchange moves
/// exactly half the dense bytes on F32 payloads.
pub fn hierarchical_all_reduce_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
    wire: WireFormat,
) -> Tensor {
    hierarchical_all_reduce_wire_striped(comm, group, input, op, node_size, wire, 1)
}

/// [`hierarchical_all_reduce_wire`] with both phases striped over
/// `channels` lanes (see the phase functions for the lane geometry).
/// Bit-identical to the single-lane run at every width.
pub fn hierarchical_all_reduce_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    node_size: usize,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let my_chunk =
        hierarchical_reduce_scatter_wire_striped(comm, group, input, op, node_size, wire, channels);
    let chunks =
        hierarchical_all_gather_wire_striped(comm, group, &my_chunk, node_size, wire, channels);
    let mut out = Tensor::zeros(input.shape().clone(), input.dtype());
    let mut off = 0usize;
    for c in chunks {
        out.write_flat(off, &c).expect("chunks tile the tensor");
        off += c.numel();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::{ring_all_reduce, ring_reduce_scatter};
    use coconet_tensor::DType;

    #[test]
    fn hierarchical_allreduce_matches_ring_across_geometries() {
        for (k, node_size) in [(4usize, 2usize), (8, 2), (8, 4), (6, 3), (8, 3), (5, 2)] {
            for n in [1usize, 4, 21, 64] {
                let results = run_ranks(k, move |comm| {
                    let group = Group { start: 0, size: k };
                    let input =
                        Tensor::from_fn([n], DType::F32, |i| ((comm.rank() + 1) * (i + 3)) as f32);
                    let hier =
                        hierarchical_all_reduce(&comm, group, &input, ReduceOp::Sum, node_size);
                    let ring = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                    (hier, ring)
                });
                for (r, (hier, ring)) in results.iter().enumerate() {
                    assert_eq!(
                        hier.to_f32_vec(),
                        ring.to_f32_vec(),
                        "k={k} node_size={node_size} n={n} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_reduce_scatter_owns_chunk_i() {
        let (k, node_size, n) = (6usize, 2usize, 16usize);
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([n], DType::F32, |i| i as f32);
            let hier = hierarchical_reduce_scatter(&comm, group, &input, ReduceOp::Sum, node_size);
            let ring = ring_reduce_scatter(&comm, group, &input, ReduceOp::Sum);
            (hier, ring)
        });
        for (r, (hier, ring)) in results.iter().enumerate() {
            let (off, len) = chunk_range(n, k, r);
            assert_eq!(hier.numel(), len);
            assert_eq!(hier.to_f32_vec(), ring.to_f32_vec(), "rank {r}");
            for i in 0..len {
                assert_eq!(hier.get(i), (k * (off + i)) as f32, "rank {r} elem {i}");
            }
        }
    }

    #[test]
    fn hierarchical_all_gather_reassembles() {
        let (k, node_size) = (6usize, 3usize);
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let me = comm.rank();
            let chunk = Tensor::from_fn([3], DType::F32, |i| (me * 3 + i) as f32);
            hierarchical_all_gather(&comm, group, &chunk, node_size)
        });
        for chunks in &results {
            let flat: Vec<f32> = chunks.iter().flat_map(|c| c.to_f32_vec()).collect();
            assert_eq!(flat, (0..18).map(|i| i as f32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn degenerate_node_size_falls_back_to_ring() {
        let k = 4usize;
        for node_size in [0usize, 4, 9] {
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::full([5], DType::F32, (comm.rank() + 1) as f32);
                hierarchical_all_reduce(&comm, group, &input, ReduceOp::Sum, node_size)
            });
            for t in &results {
                assert_eq!(t.get(0), 10.0, "node_size={node_size}");
            }
        }
    }

    #[test]
    fn min_max_and_subgroups() {
        // Two independent 4-rank groups in an 8-rank world, 2 ranks
        // per node, min/max reductions.
        let results = run_ranks(8, move |comm| {
            let g = if comm.rank() < 4 {
                Group { start: 0, size: 4 }
            } else {
                Group { start: 4, size: 4 }
            };
            let input = Tensor::full([2], DType::F32, comm.rank() as f32);
            let mn = hierarchical_all_reduce(&comm, g, &input, ReduceOp::Min, 2);
            let mx = hierarchical_all_reduce(&comm, g, &input, ReduceOp::Max, 2);
            (mn, mx)
        });
        for (r, (mn, mx)) in results.iter().enumerate() {
            if r < 4 {
                assert_eq!((mn.get(0), mx.get(0)), (0.0, 3.0), "rank {r}");
            } else {
                assert_eq!((mn.get(0), mx.get(0)), (4.0, 7.0), "rank {r}");
            }
        }
    }

    #[test]
    fn degenerate_chunking_with_more_ranks_than_elements() {
        // numel < k: trailing chunks are empty; nothing panics and the
        // result still matches the ring.
        let (k, node_size) = (8usize, 4usize);
        for n in [0usize, 1, 3, 7] {
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::from_fn([n], DType::F32, |i| (comm.rank() + i) as f32);
                let hier = hierarchical_all_reduce(&comm, group, &input, ReduceOp::Sum, node_size);
                let ring = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                (hier, ring)
            });
            for (hier, ring) in &results {
                assert_eq!(hier.to_f32_vec(), ring.to_f32_vec(), "n={n}");
            }
        }
    }
}
