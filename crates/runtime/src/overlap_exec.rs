//! Functional execution of the fine-grained MatMul + AllReduce overlap
//! (§5.3, Figure 9).
//!
//! The simulator times the overlapped pipeline; this module *executes*
//! it, enforcing the exact chunk schedule the generated kernels use:
//! the MatMul produces output chunks in the order the ring sends them
//! (rank *n* starting from its own send position), and every ring step
//! asserts — like the spin-lock would block — that the chunk it is
//! about to touch has already been produced. If the paper's chunk
//! ordering were wrong, these runs would panic or produce different
//! results from the unoverlapped execution.
//!
//! # Completion-order independence
//!
//! An earlier version of this pipeline received with plain FIFO
//! `recv`, implicitly assuming every hop *completes* in the order it
//! was issued — true of the in-process channel, but not of a real
//! async fabric, where a later-issued send can land first. Every hop
//! is now a *tagged* message carrying the chunk index it transports
//! (reduce-scatter hops tag `chunk`, all-gather hops tag `k + chunk`),
//! and each step receives *by tag*: delivery order no longer matters,
//! only data dependences do. The regression test
//! `tolerates_chunks_delivered_out_of_issue_order` delivers a
//! later-issued hop first and the result must stay bit-identical.

use coconet_tensor::{ReduceOp, Tensor, TensorError};

use crate::collectives::{chunk_range, Group};
use crate::comm::WireMsg;
use crate::RankComm;

/// Receives the tagged hop `tag` from `src`, unwrapping the dense
/// payload (the overlap pipeline never rides the sparse wire).
fn recv_chunk(comm: &RankComm, src: usize, tag: u64) -> Tensor {
    match comm.recv_tagged(src, tag) {
        WireMsg::Tensor(t) => t,
        other => unreachable!("overlap hops are dense, got {other:?}"),
    }
}

/// A lazily produced output tensor: chunks materialize in a fixed
/// production order, and reads assert availability (the functional
/// analogue of the §5.3 spin-lock).
struct ChunkedProducer {
    out: Tensor,
    produced: Vec<bool>,
    k: usize,
}

impl ChunkedProducer {
    fn new(full: Tensor, k: usize) -> ChunkedProducer {
        ChunkedProducer {
            out: full,
            produced: vec![false; k],
            k,
        }
    }

    fn produce(&mut self, chunk: usize) {
        self.produced[chunk] = true;
    }

    /// A zero-copy view of an already-produced chunk.
    fn read_chunk(&self, chunk: usize) -> Tensor {
        assert!(
            self.produced[chunk],
            "ring step touched chunk {chunk} before the MatMul produced it \
             (the Figure 9 schedule would deadlock here)"
        );
        let (off, len) = chunk_range(self.out.numel(), self.k, chunk);
        self.out.slice_flat(off, len).expect("chunk in range")
    }
}

/// The order rank position `pos` must produce chunks so the ring
/// AllReduce never waits: the ring's send order for this position —
/// `pos-1, pos-2, …` wrapping around to `pos` (this formulation ends
/// with rank `pos` owning chunk `pos`; it is the paper's "rank n sends
/// chunks starting from chunk n" modulo the chunk relabeling).
pub fn production_order(pos: usize, k: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(k);
    for s in 0..k {
        order.push((pos + 2 * k - 1 - s) % k);
    }
    order
}

/// Executes `AllReduce(op, a @ w)` with the fine-grained overlap
/// schedule: chunk-ordered MatMul production interleaved with the ring
/// steps. Returns the replicated result.
///
/// # Errors
///
/// Propagates matmul/tensor errors.
///
/// # Panics
///
/// Panics if the chunk schedule would require a chunk that has not
/// been produced yet — i.e. if the §5.3 ordering were incorrect.
pub fn overlapped_matmul_all_reduce(
    comm: &RankComm,
    group: Group,
    a: &Tensor,
    w: &Tensor,
    op: ReduceOp,
) -> Result<Tensor, TensorError> {
    let k = group.size;
    let pos = group.position(comm.rank());
    let full = a.matmul(w)?; // the values; production order enforced below
    let out_shape = full.shape().clone();
    let out_dtype = full.dtype();
    let n = full.numel();
    let mut producer = ChunkedProducer::new(full, k);
    let order = production_order(pos, k);
    let mut next_to_produce = 0usize;

    if k == 1 {
        producer.produce(order[0]);
        return producer.read_chunk(0).reshape(out_shape);
    }

    // T=1 in Figure 9: the MatMul produces the first chunk before any
    // communication can start.
    producer.produce(order[next_to_produce]);
    next_to_produce += 1;

    // Reduce-scatter phase, chunk-granular: before each step, the
    // MatMul has produced exactly the chunks the ring needs so far.
    // Each reduced chunk starts as a view of the MatMul output and is
    // detached (one chunk-sized copy) by its single in-place fold — no
    // per-step accumulator rebuild.
    let mut reduced: Vec<Option<Tensor>> = vec![None; k];
    let j = (pos + k - 1) % k;
    for step in 0..k - 1 {
        let send_c = (j + k - step % k) % k;
        let recv_c = (j + k - step - 1) % k;
        // The chunk being sent must exist (spin_wait in the kernel).
        let outgoing = if step == 0 {
            producer.read_chunk(send_c)
        } else {
            // Forward the partially reduced chunk (a handle copy).
            reduced[send_c].clone().expect("reduced by schedule")
        };
        comm.send_tagged(
            group.next(comm.rank()),
            send_c as u64,
            0,
            WireMsg::Tensor(outgoing),
        );
        // Produce the next chunk while the wire is busy (T=2..5).
        if next_to_produce < k {
            producer.produce(order[next_to_produce]);
            next_to_produce += 1;
        }
        let incoming = recv_chunk(comm, group.prev(comm.rank()), recv_c as u64);
        // Each chunk is visited exactly once in this phase: fold the
        // incoming partial into the local contribution in place.
        let mut local = producer.read_chunk(recv_c);
        local.reduce_assign(&incoming, op)?;
        reduced[recv_c] = Some(local);
    }

    // All-gather phase over the fully reduced chunks (handle hops).
    let me_chunk = pos;
    let mut chunks: Vec<Option<Tensor>> = vec![None; k];
    chunks[me_chunk] = reduced[me_chunk].take();
    for step in 0..k - 1 {
        let send_c = (me_chunk + k - step % k) % k;
        let recv_c = (me_chunk + k - step - 1) % k;
        let outgoing = chunks[send_c].clone().expect("present by schedule");
        comm.send_tagged(
            group.next(comm.rank()),
            (k + send_c) as u64,
            0,
            WireMsg::Tensor(outgoing),
        );
        let incoming = recv_chunk(comm, group.prev(comm.rank()), (k + recv_c) as u64);
        chunks[recv_c] = Some(incoming);
    }
    let mut out = Tensor::zeros([n], out_dtype);
    let mut offset = 0usize;
    for c in chunks.into_iter().map(|c| c.expect("gathered")) {
        out.write_flat(offset, &c)?;
        offset += c.numel();
    }
    out.reshape(out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::{CounterRng, DType};
    use std::thread;

    #[test]
    fn production_order_starts_at_own_chunk() {
        assert_eq!(production_order(0, 4), vec![3, 2, 1, 0]);
        assert_eq!(production_order(2, 4), vec![1, 0, 3, 2]);
        // Covers every chunk exactly once.
        let mut o = production_order(5, 8);
        o.sort_unstable();
        assert_eq!(o, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn overlapped_equals_sequential() {
        let k = 4usize;
        let (rows, inner, cols) = (4usize, 6usize, 8usize);
        let rng = CounterRng::new(17);
        let world = RankComm::world(k);
        let results: Vec<(Tensor, Tensor)> = world
            .into_iter()
            .map(|comm| {
                let rank = comm.rank();
                thread::spawn(move || {
                    let group = Group { start: 0, size: k };
                    let a = Tensor::randn([rows, inner], DType::F32, rng, (rank * 1000) as u64);
                    let w = Tensor::randn([inner, cols], DType::F32, rng, 50_000);
                    let overlapped =
                        overlapped_matmul_all_reduce(&comm, group, &a, &w, ReduceOp::Sum).unwrap();
                    let sequential =
                        crate::ring_all_reduce(&comm, group, &a.matmul(&w).unwrap(), ReduceOp::Sum);
                    (overlapped, sequential)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        for (overlapped, sequential) in &results {
            assert_eq!(overlapped.shape(), sequential.shape());
            let diff = overlapped.max_abs_diff(sequential);
            assert!(diff < 1e-4, "diff {diff}");
        }
        // All ranks agree.
        for (o, _) in &results[1..] {
            assert_eq!(o.to_f32_vec(), results[0].0.to_f32_vec());
        }
    }

    /// Completion-order independence (the regression this module's
    /// header documents): a scripted peer delivers a later-issued hop
    /// — its all-gather chunks — *before* its reduce-scatter partials,
    /// and the pipeline still produces the exact AllReduce result,
    /// because every step receives by chunk tag instead of by arrival
    /// order. Under the old FIFO `recv` this delivery order mis-folded
    /// the chunks.
    #[test]
    fn tolerates_chunks_delivered_out_of_issue_order() {
        let k = 3usize;
        let (rows, inner, cols) = (3usize, 2usize, 3usize);
        // Integer-valued inputs: every partial sum is exact in f32, so
        // the assertion below is bitwise no matter the fold order.
        let a: Vec<Tensor> = (0..k)
            .map(|r| Tensor::from_fn([rows, inner], DType::F32, move |i| ((i + r) % 5) as f32))
            .collect();
        let w = Tensor::from_fn([inner, cols], DType::F32, |i| ((i % 3) + 1) as f32);
        let p: Vec<Vec<f32>> = a
            .iter()
            .map(|ar| ar.matmul(&w).unwrap().to_f32_vec())
            .collect();
        let n = rows * cols;
        let chunk = |v: &[f32], c: usize| -> Vec<f32> {
            let (off, len) = chunk_range(n, k, c);
            v[off..off + len].to_vec()
        };
        let add =
            |x: &[f32], y: &[f32]| -> Vec<f32> { x.iter().zip(y).map(|(a, b)| a + b).collect() };
        let total: Vec<f32> = (0..n).map(|i| p[0][i] + p[1][i] + p[2][i]).collect();

        let mut world = RankComm::world(k);
        let c2 = world.pop().unwrap(); // scripted sink (rank 1's next)
        let c1 = world.pop().unwrap(); // runs the real pipeline
        let c0 = world.pop().unwrap(); // scripted peer (rank 1's prev)

        let (a1, w1) = (a[1].clone(), w.clone());
        let handle = thread::spawn(move || {
            let group = Group { start: 0, size: k };
            overlapped_matmul_all_reduce(&c1, group, &a1, &w1, ReduceOp::Sum).unwrap()
        });

        // What the honest rank 0 sends rank 1, per the ring schedule:
        //   RS step 0 (tag 2): its own chunk 2.
        //   RS step 1 (tag 1): chunk 1 folded with rank 2's partial.
        //   AG step 0 (tag 3+0): the fully reduced chunk 0 it owns.
        //   AG step 1 (tag 3+2): the fully reduced chunk 2 it forwards.
        let msg = |vals: Vec<f32>| {
            WireMsg::Tensor(Tensor::from_f32([vals.len()], DType::F32, &vals).unwrap())
        };
        // Deliver the later-issued hops FIRST: both all-gather chunks,
        // then the reduce-scatter partials in reversed step order.
        c0.send_tagged(1, (k + 2) as u64, 0, msg(chunk(&total, 2)));
        c0.send_tagged(1, (k) as u64, 0, msg(chunk(&total, 0)));
        c0.send_tagged(1, 1, 0, msg(add(&chunk(&p[0], 1), &chunk(&p[2], 1))));
        c0.send_tagged(1, 2, 0, msg(chunk(&p[0], 2)));

        let got = handle.join().unwrap();
        assert_eq!(got.to_f32_vec(), total);
        // Keep the sink alive until the pipeline has sent its hops.
        drop(c2);
        drop(c0);
    }

    #[test]
    fn single_rank_degenerates_to_matmul() {
        let world = RankComm::world(1);
        let comm = world.into_iter().next().unwrap();
        let group = Group { start: 0, size: 1 };
        let a = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let w = Tensor::from_fn([3, 2], DType::F32, |i| (i % 3) as f32);
        let got = overlapped_matmul_all_reduce(&comm, group, &a, &w, ReduceOp::Sum).unwrap();
        assert_eq!(got.to_f32_vec(), a.matmul(&w).unwrap().to_f32_vec());
    }
}
