//! Functional execution of the fine-grained MatMul + AllReduce overlap
//! (§5.3, Figure 9).
//!
//! The simulator times the overlapped pipeline; this module *executes*
//! it, enforcing the exact chunk schedule the generated kernels use:
//! the MatMul produces output chunks in the order the ring sends them
//! (rank *n* starting from its own send position), and every ring step
//! asserts — like the spin-lock would block — that the chunk it is
//! about to touch has already been produced. If the paper's chunk
//! ordering were wrong, these runs would panic or produce different
//! results from the unoverlapped execution.

use coconet_tensor::{ReduceOp, Tensor, TensorError};

use crate::collectives::{chunk_range, Group};
use crate::RankComm;

/// A lazily produced output tensor: chunks materialize in a fixed
/// production order, and reads assert availability (the functional
/// analogue of the §5.3 spin-lock).
struct ChunkedProducer {
    out: Tensor,
    produced: Vec<bool>,
    k: usize,
}

impl ChunkedProducer {
    fn new(full: Tensor, k: usize) -> ChunkedProducer {
        ChunkedProducer {
            out: full,
            produced: vec![false; k],
            k,
        }
    }

    fn produce(&mut self, chunk: usize) {
        self.produced[chunk] = true;
    }

    /// A zero-copy view of an already-produced chunk.
    fn read_chunk(&self, chunk: usize) -> Tensor {
        assert!(
            self.produced[chunk],
            "ring step touched chunk {chunk} before the MatMul produced it \
             (the Figure 9 schedule would deadlock here)"
        );
        let (off, len) = chunk_range(self.out.numel(), self.k, chunk);
        self.out.slice_flat(off, len).expect("chunk in range")
    }
}

/// The order rank position `pos` must produce chunks so the ring
/// AllReduce never waits: the ring's send order for this position —
/// `pos-1, pos-2, …` wrapping around to `pos` (this formulation ends
/// with rank `pos` owning chunk `pos`; it is the paper's "rank n sends
/// chunks starting from chunk n" modulo the chunk relabeling).
pub fn production_order(pos: usize, k: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(k);
    for s in 0..k {
        order.push((pos + 2 * k - 1 - s) % k);
    }
    order
}

/// Executes `AllReduce(op, a @ w)` with the fine-grained overlap
/// schedule: chunk-ordered MatMul production interleaved with the ring
/// steps. Returns the replicated result.
///
/// # Errors
///
/// Propagates matmul/tensor errors.
///
/// # Panics
///
/// Panics if the chunk schedule would require a chunk that has not
/// been produced yet — i.e. if the §5.3 ordering were incorrect.
pub fn overlapped_matmul_all_reduce(
    comm: &RankComm,
    group: Group,
    a: &Tensor,
    w: &Tensor,
    op: ReduceOp,
) -> Result<Tensor, TensorError> {
    let k = group.size;
    let pos = group.position(comm.rank());
    let full = a.matmul(w)?; // the values; production order enforced below
    let out_shape = full.shape().clone();
    let out_dtype = full.dtype();
    let n = full.numel();
    let mut producer = ChunkedProducer::new(full, k);
    let order = production_order(pos, k);
    let mut next_to_produce = 0usize;

    if k == 1 {
        producer.produce(order[0]);
        return producer.read_chunk(0).reshape(out_shape);
    }

    // T=1 in Figure 9: the MatMul produces the first chunk before any
    // communication can start.
    producer.produce(order[next_to_produce]);
    next_to_produce += 1;

    // Reduce-scatter phase, chunk-granular: before each step, the
    // MatMul has produced exactly the chunks the ring needs so far.
    // Each reduced chunk starts as a view of the MatMul output and is
    // detached (one chunk-sized copy) by its single in-place fold — no
    // per-step accumulator rebuild.
    let mut reduced: Vec<Option<Tensor>> = vec![None; k];
    let j = (pos + k - 1) % k;
    for step in 0..k - 1 {
        let send_c = (j + k - step % k) % k;
        let recv_c = (j + k - step - 1) % k;
        // The chunk being sent must exist (spin_wait in the kernel).
        let outgoing = if step == 0 {
            producer.read_chunk(send_c)
        } else {
            // Forward the partially reduced chunk (a handle copy).
            reduced[send_c].clone().expect("reduced by schedule")
        };
        comm.send(group.next(comm.rank()), outgoing);
        // Produce the next chunk while the wire is busy (T=2..5).
        if next_to_produce < k {
            producer.produce(order[next_to_produce]);
            next_to_produce += 1;
        }
        let incoming = comm.recv(group.prev(comm.rank()));
        // Each chunk is visited exactly once in this phase: fold the
        // incoming partial into the local contribution in place.
        let mut local = producer.read_chunk(recv_c);
        local.reduce_assign(&incoming, op)?;
        reduced[recv_c] = Some(local);
    }

    // All-gather phase over the fully reduced chunks (handle hops).
    let me_chunk = pos;
    let mut chunks: Vec<Option<Tensor>> = vec![None; k];
    chunks[me_chunk] = reduced[me_chunk].take();
    for step in 0..k - 1 {
        let send_c = (me_chunk + k - step % k) % k;
        let recv_c = (me_chunk + k - step - 1) % k;
        let outgoing = chunks[send_c].clone().expect("present by schedule");
        comm.send(group.next(comm.rank()), outgoing);
        let incoming = comm.recv(group.prev(comm.rank()));
        chunks[recv_c] = Some(incoming);
    }
    let mut out = Tensor::zeros([n], out_dtype);
    let mut offset = 0usize;
    for c in chunks.into_iter().map(|c| c.expect("gathered")) {
        out.write_flat(offset, &c)?;
        offset += c.numel();
    }
    out.reshape(out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::{CounterRng, DType};
    use std::thread;

    #[test]
    fn production_order_starts_at_own_chunk() {
        assert_eq!(production_order(0, 4), vec![3, 2, 1, 0]);
        assert_eq!(production_order(2, 4), vec![1, 0, 3, 2]);
        // Covers every chunk exactly once.
        let mut o = production_order(5, 8);
        o.sort_unstable();
        assert_eq!(o, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn overlapped_equals_sequential() {
        let k = 4usize;
        let (rows, inner, cols) = (4usize, 6usize, 8usize);
        let rng = CounterRng::new(17);
        let world = RankComm::world(k);
        let results: Vec<(Tensor, Tensor)> = world
            .into_iter()
            .map(|comm| {
                let rank = comm.rank();
                thread::spawn(move || {
                    let group = Group { start: 0, size: k };
                    let a = Tensor::randn([rows, inner], DType::F32, rng, (rank * 1000) as u64);
                    let w = Tensor::randn([inner, cols], DType::F32, rng, 50_000);
                    let overlapped =
                        overlapped_matmul_all_reduce(&comm, group, &a, &w, ReduceOp::Sum).unwrap();
                    let sequential =
                        crate::ring_all_reduce(&comm, group, &a.matmul(&w).unwrap(), ReduceOp::Sum);
                    (overlapped, sequential)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        for (overlapped, sequential) in &results {
            assert_eq!(overlapped.shape(), sequential.shape());
            let diff = overlapped.max_abs_diff(sequential);
            assert!(diff < 1e-4, "diff {diff}");
        }
        // All ranks agree.
        for (o, _) in &results[1..] {
            assert_eq!(o.to_f32_vec(), results[0].0.to_f32_vec());
        }
    }

    #[test]
    fn single_rank_degenerates_to_matmul() {
        let world = RankComm::world(1);
        let comm = world.into_iter().next().unwrap();
        let group = Group { start: 0, size: 1 };
        let a = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let w = Tensor::from_fn([3, 2], DType::F32, |i| (i % 3) as f32);
        let got = overlapped_matmul_all_reduce(&comm, group, &a, &w, ReduceOp::Sum).unwrap();
        assert_eq!(got.to_f32_vec(), a.matmul(&w).unwrap().to_f32_vec());
    }
}
