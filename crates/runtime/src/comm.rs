//! Point-to-point message fabric between rank threads.
//!
//! Each simulated rank runs on its own OS thread; every ordered pair of
//! ranks gets an unbounded crossbeam channel. This is the substrate the
//! ring collectives move real tensor data over — the reproduction's
//! stand-in for NVLink/InfiniBand transports.
//!
//! The fabric is format-agnostic: a message is either a dense tensor
//! (possibly FP16-encoded by a compressed collective) or a
//! [`SparseChunk`] of a top-k sparsified stream, and the embedded
//! [`BytesLedger`] accounts each at its *wire* size — which is exactly
//! how the compression subsystem's volume claims become assertable.

use coconet_tensor::{SparseChunk, Tensor};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::ledger::{BytesLedger, LedgerState};

/// One message on the wire: a dense tensor payload or a sparse
/// `(index, value)` chunk.
#[derive(Clone, Debug)]
pub enum WireMsg {
    /// A dense tensor (a copy-on-write buffer handle).
    Tensor(Tensor),
    /// A top-k sparsified chunk.
    Sparse(SparseChunk),
}

impl WireMsg {
    /// The bytes this message occupies on the modeled interconnect —
    /// what the [`BytesLedger`] records.
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Tensor(t) => t.size_bytes(),
            WireMsg::Sparse(c) => c.wire_bytes(),
        }
    }
}

/// One rank's endpoints into the world: senders to every rank and
/// receivers from every rank.
///
/// Sending a tensor transfers its copy-on-write buffer handle through
/// the channel — no element data is copied — while the embedded
/// [`BytesLedger`] accounts the logical payload as wire traffic, so
/// data movement stays measurable even though nothing is duplicated.
#[derive(Debug)]
pub struct RankComm {
    rank: usize,
    world: usize,
    to: Vec<Sender<WireMsg>>,
    from: Vec<Receiver<WireMsg>>,
    ledger: LedgerState,
}

impl RankComm {
    /// Creates the full communication world for `world` ranks,
    /// returning one endpoint per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    #[allow(clippy::needless_range_loop)] // (src, dst) matrix wiring
    pub fn world(world: usize) -> Vec<RankComm> {
        assert!(world > 0, "world must have at least one rank");
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<WireMsg>>> = Vec::with_capacity(world);
        let mut receivers: Vec<Vec<Option<Receiver<WireMsg>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            let mut row = Vec::with_capacity(world);
            for dst in 0..world {
                let (tx, rx) = unbounded();
                row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            senders.push(row);
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to, from))| RankComm {
                rank,
                world,
                to,
                from: from.into_iter().map(|r| r.expect("filled above")).collect(),
                ledger: LedgerState::new(),
            })
            .collect()
    }

    /// This endpoint's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Sends a tensor to `dst` — a buffer-handle transfer, accounted
    /// in this rank's [`BytesLedger`] at the tensor's payload size.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped (a peer thread panicked).
    pub fn send(&self, dst: usize, tensor: Tensor) {
        self.send_msg(dst, WireMsg::Tensor(tensor));
    }

    /// Sends a sparse chunk to `dst`, accounted at its
    /// [`wire_bytes`](SparseChunk::wire_bytes) — the compressed size is
    /// what the modeled interconnect carries.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_sparse(&self, dst: usize, chunk: SparseChunk) {
        self.send_msg(dst, WireMsg::Sparse(chunk));
    }

    /// Sends a raw wire message to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_msg(&self, dst: usize, msg: WireMsg) {
        self.ledger.record_send(msg.wire_bytes());
        self.to[dst]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Receives the next tensor sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, the source endpoint was
    /// dropped without sending, or the next message is a sparse chunk
    /// (a collective protocol mismatch).
    pub fn recv(&self, src: usize) -> Tensor {
        match self.recv_msg(src) {
            WireMsg::Tensor(t) => t,
            WireMsg::Sparse(_) => {
                panic!("rank {src} sent a sparse chunk where a tensor was expected")
            }
        }
    }

    /// Receives the next sparse chunk sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, the source endpoint was
    /// dropped, or the next message is a dense tensor.
    pub fn recv_sparse(&self, src: usize) -> SparseChunk {
        match self.recv_msg(src) {
            WireMsg::Sparse(c) => c,
            WireMsg::Tensor(_) => {
                panic!("rank {src} sent a tensor where a sparse chunk was expected")
            }
        }
    }

    /// Receives the next wire message sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or the source endpoint was
    /// dropped without sending.
    pub fn recv_msg(&self, src: usize) -> WireMsg {
        let msg = self.from[src]
            .recv()
            .unwrap_or_else(|_| panic!("rank {src} hung up"));
        self.ledger.record_recv(msg.wire_bytes());
        msg
    }

    /// Zeroes this rank's [`BytesLedger`] and re-baselines the
    /// allocation counters against the *calling thread* — call it on
    /// the rank's own thread at the start of the region to meter.
    pub fn reset_ledger(&self) {
        self.ledger.reset();
    }

    /// This rank's data-movement measurements since the last
    /// [`reset_ledger`](RankComm::reset_ledger) (or construction, for
    /// the wire counters).
    pub fn ledger(&self) -> BytesLedger {
        self.ledger.snapshot()
    }
}

/// Runs `f` on `k` rank threads over a fresh communication world and
/// returns the per-rank results in rank order — the harness the
/// collective test suites (unit and integration) drive the message
/// fabric with.
///
/// # Panics
///
/// Panics if any rank thread panics.
pub fn run_ranks<T: Send + 'static>(
    k: usize,
    f: impl Fn(RankComm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = RankComm::world(k);
    let handles: Vec<_> = world
        .into_iter()
        .map(|comm| {
            let f = f.clone();
            std::thread::spawn(move || f(comm))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::DType;
    use std::thread;

    #[test]
    fn pairwise_messaging() {
        let mut world = RankComm::world(3);
        let c2 = world.pop().unwrap();
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        assert_eq!(c0.rank(), 0);
        assert_eq!(c2.world_size(), 3);

        let t = thread::spawn(move || {
            c1.send(2, Tensor::full([2], DType::F32, 1.0));
            c1.send(0, Tensor::full([2], DType::F32, 5.0));
            let from0 = c1.recv(0);
            assert_eq!(from0.get(0), 9.0);
        });
        c0.send(1, Tensor::full([2], DType::F32, 9.0));
        let from1 = c0.recv(1);
        assert_eq!(from1.get(0), 5.0);
        let from1_at_2 = c2.recv(1);
        assert_eq!(from1_at_2.get(0), 1.0);
        t.join().unwrap();
    }

    #[test]
    fn messages_from_same_source_are_ordered() {
        let mut world = RankComm::world(2);
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        for i in 0..10 {
            c0.send(1, Tensor::full([1], DType::F32, i as f32));
        }
        for i in 0..10 {
            assert_eq!(c1.recv(0).get(0), i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_panics() {
        RankComm::world(0);
    }
}
