//! Point-to-point message fabric between rank threads.
//!
//! Each simulated rank runs on its own OS thread; every ordered pair of
//! ranks gets an unbounded crossbeam channel. This is the substrate the
//! ring collectives move real tensor data over — the reproduction's
//! stand-in for NVLink/InfiniBand transports.

use coconet_tensor::Tensor;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::ledger::{BytesLedger, LedgerState};

/// One rank's endpoints into the world: senders to every rank and
/// receivers from every rank.
///
/// Sending a tensor transfers its copy-on-write buffer handle through
/// the channel — no element data is copied — while the embedded
/// [`BytesLedger`] accounts the logical payload as wire traffic, so
/// data movement stays measurable even though nothing is duplicated.
#[derive(Debug)]
pub struct RankComm {
    rank: usize,
    world: usize,
    to: Vec<Sender<Tensor>>,
    from: Vec<Receiver<Tensor>>,
    ledger: LedgerState,
}

impl RankComm {
    /// Creates the full communication world for `world` ranks,
    /// returning one endpoint per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    #[allow(clippy::needless_range_loop)] // (src, dst) matrix wiring
    pub fn world(world: usize) -> Vec<RankComm> {
        assert!(world > 0, "world must have at least one rank");
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<Tensor>>> = Vec::with_capacity(world);
        let mut receivers: Vec<Vec<Option<Receiver<Tensor>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            let mut row = Vec::with_capacity(world);
            for dst in 0..world {
                let (tx, rx) = unbounded();
                row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            senders.push(row);
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to, from))| RankComm {
                rank,
                world,
                to,
                from: from.into_iter().map(|r| r.expect("filled above")).collect(),
                ledger: LedgerState::new(),
            })
            .collect()
    }

    /// This endpoint's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Sends a tensor to `dst` — a buffer-handle transfer, accounted
    /// in this rank's [`BytesLedger`] at the tensor's payload size.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped (a peer thread panicked).
    pub fn send(&self, dst: usize, tensor: Tensor) {
        self.ledger.record_send(tensor.size_bytes());
        self.to[dst]
            .send(tensor)
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Receives the next tensor sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or the source endpoint was
    /// dropped without sending.
    pub fn recv(&self, src: usize) -> Tensor {
        let tensor = self.from[src]
            .recv()
            .unwrap_or_else(|_| panic!("rank {src} hung up"));
        self.ledger.record_recv(tensor.size_bytes());
        tensor
    }

    /// Zeroes this rank's [`BytesLedger`] and re-baselines the
    /// allocation counters against the *calling thread* — call it on
    /// the rank's own thread at the start of the region to meter.
    pub fn reset_ledger(&self) {
        self.ledger.reset();
    }

    /// This rank's data-movement measurements since the last
    /// [`reset_ledger`](RankComm::reset_ledger) (or construction, for
    /// the wire counters).
    pub fn ledger(&self) -> BytesLedger {
        self.ledger.snapshot()
    }
}

/// Runs `f` on `k` rank threads over a fresh communication world and
/// returns the per-rank results in rank order — the harness the
/// collective test suites (unit and integration) drive the message
/// fabric with.
///
/// # Panics
///
/// Panics if any rank thread panics.
pub fn run_ranks<T: Send + 'static>(
    k: usize,
    f: impl Fn(RankComm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = RankComm::world(k);
    let handles: Vec<_> = world
        .into_iter()
        .map(|comm| {
            let f = f.clone();
            std::thread::spawn(move || f(comm))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::DType;
    use std::thread;

    #[test]
    fn pairwise_messaging() {
        let mut world = RankComm::world(3);
        let c2 = world.pop().unwrap();
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        assert_eq!(c0.rank(), 0);
        assert_eq!(c2.world_size(), 3);

        let t = thread::spawn(move || {
            c1.send(2, Tensor::full([2], DType::F32, 1.0));
            c1.send(0, Tensor::full([2], DType::F32, 5.0));
            let from0 = c1.recv(0);
            assert_eq!(from0.get(0), 9.0);
        });
        c0.send(1, Tensor::full([2], DType::F32, 9.0));
        let from1 = c0.recv(1);
        assert_eq!(from1.get(0), 5.0);
        let from1_at_2 = c2.recv(1);
        assert_eq!(from1_at_2.get(0), 1.0);
        t.join().unwrap();
    }

    #[test]
    fn messages_from_same_source_are_ordered() {
        let mut world = RankComm::world(2);
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        for i in 0..10 {
            c0.send(1, Tensor::full([1], DType::F32, i as f32));
        }
        for i in 0..10 {
            assert_eq!(c1.recv(0).get(0), i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_panics() {
        RankComm::world(0);
    }
}
