//! Point-to-point message fabric between rank threads.
//!
//! Each simulated rank runs on its own OS thread; every ordered pair of
//! ranks gets an unbounded crossbeam channel. This is the substrate the
//! ring collectives move real tensor data over — the reproduction's
//! stand-in for NVLink/InfiniBand transports.
//!
//! The fabric is format-agnostic: a message is either a dense tensor
//! (possibly FP16-encoded by a compressed collective) or a
//! [`SparseChunk`] of a top-k sparsified stream, and the embedded
//! [`BytesLedger`] accounts each at its *wire* size — which is exactly
//! how the compression subsystem's volume claims become assertable.

use std::cell::RefCell;
use std::collections::VecDeque;

use coconet_compress::QuantChunk;
use coconet_tensor::{SparseChunk, Tensor};
use coconet_trace as trace;
use coconet_trace::metrics::Counter;
use coconet_trace::EventKind;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::ledger::{BytesLedger, LedgerState};

/// One message on the wire: a dense tensor payload, a sparse
/// `(index, value)` chunk, or a fixed-point quantized chunk bound for
/// (or folded by) the emulated aggregation switch.
#[derive(Clone, Debug)]
pub enum WireMsg {
    /// A dense tensor (a copy-on-write buffer handle).
    Tensor(Tensor),
    /// A top-k sparsified chunk.
    Sparse(SparseChunk),
    /// A fixed-point quantized chunk of the in-network switch
    /// AllReduce — `i32` words on the wire regardless of payload dtype.
    Quantized(QuantChunk),
}

impl WireMsg {
    /// The bytes this message occupies on the modeled interconnect —
    /// what the [`BytesLedger`] records.
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Tensor(t) => t.size_bytes(),
            WireMsg::Sparse(c) => c.wire_bytes(),
            WireMsg::Quantized(c) => c.wire_bytes() as usize,
        }
    }
}

/// What actually travels through a channel: either a plain message of
/// the classic blocking protocol, or a *tagged* message belonging to an
/// asynchronous job multiplexed over the same fabric by the priority
/// scheduler. Tags let a receiver pull messages for one job without
/// disturbing the FIFO stream of another — the substrate of
/// completion-order independence.
#[derive(Clone, Debug)]
enum Packet {
    /// An untagged message of a blocking collective.
    Plain(WireMsg),
    /// One chunk of job `job` (the class it was sent at is recorded in
    /// the sender's ledger; the receiver routes by job alone).
    Tagged { job: u64, msg: WireMsg },
}

/// One rank's endpoints into the world: senders to every rank and
/// receivers from every rank.
///
/// Sending a tensor transfers its copy-on-write buffer handle through
/// the channel — no element data is copied — while the embedded
/// [`BytesLedger`] accounts the logical payload as wire traffic, so
/// data movement stays measurable even though nothing is duplicated.
#[derive(Debug)]
pub struct RankComm {
    rank: usize,
    world: usize,
    to: Vec<Sender<Packet>>,
    from: Vec<Receiver<Packet>>,
    /// Per-source stash of plain messages pulled off the channel while
    /// looking for a tagged one (and vice versa). Within one source the
    /// channel is FIFO, so stashing preserves each protocol's order.
    plain_stash: Vec<RefCell<VecDeque<WireMsg>>>,
    tagged_stash: Vec<RefCell<VecDeque<(u64, WireMsg)>>>,
    ledger: LedgerState,
}

impl RankComm {
    /// Creates the full communication world for `world` ranks,
    /// returning one endpoint per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    #[allow(clippy::needless_range_loop)] // (src, dst) matrix wiring
    pub fn world(world: usize) -> Vec<RankComm> {
        assert!(world > 0, "world must have at least one rank");
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<Packet>>> = Vec::with_capacity(world);
        let mut receivers: Vec<Vec<Option<Receiver<Packet>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            let mut row = Vec::with_capacity(world);
            for dst in 0..world {
                let (tx, rx) = unbounded();
                row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            senders.push(row);
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to, from))| RankComm {
                rank,
                world,
                to,
                from: from.into_iter().map(|r| r.expect("filled above")).collect(),
                plain_stash: (0..world).map(|_| RefCell::new(VecDeque::new())).collect(),
                tagged_stash: (0..world).map(|_| RefCell::new(VecDeque::new())).collect(),
                ledger: LedgerState::new(),
            })
            .collect()
    }

    /// This endpoint's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Sends a tensor to `dst` — a buffer-handle transfer, accounted
    /// in this rank's [`BytesLedger`] at the tensor's payload size.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped (a peer thread panicked).
    pub fn send(&self, dst: usize, tensor: Tensor) {
        self.send_msg(dst, WireMsg::Tensor(tensor));
    }

    /// Sends a sparse chunk to `dst`, accounted at its
    /// [`wire_bytes`](SparseChunk::wire_bytes) — the compressed size is
    /// what the modeled interconnect carries.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_sparse(&self, dst: usize, chunk: SparseChunk) {
        self.send_msg(dst, WireMsg::Sparse(chunk));
    }

    /// Sends a raw wire message to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_msg(&self, dst: usize, msg: WireMsg) {
        let bytes = msg.wire_bytes() as u64;
        // Blocking-path hops carry no job id ([`coconet_trace::JOB_NONE`]):
        // their wall time is covered by the enclosing collective-phase span.
        trace::instant(EventKind::Hop, "send", trace::JOB_NONE, bytes);
        trace::metrics::add_counter(Counter::WireBytes, bytes);
        self.ledger.record_send(msg.wire_bytes());
        self.to[dst]
            .send(Packet::Plain(msg))
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Sends one chunk of asynchronous job `job` to `dst` at priority
    /// `class` (0 = most urgent). The bytes are accounted both in the
    /// aggregate wire counters and in the per-class bucket, so the
    /// ledger can later prove in which order the scheduler drained its
    /// queues.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_tagged(&self, dst: usize, job: u64, class: u8, msg: WireMsg) {
        // The per-hop trace instant (with lane attribution) is emitted
        // by the job state machines in [`crate::stream`]; only the
        // volume counter lives here.
        trace::metrics::add_counter(Counter::WireBytes, msg.wire_bytes() as u64);
        self.ledger.record_send_class(class, msg.wire_bytes());
        self.to[dst]
            .send(Packet::Tagged { job, msg })
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Sends a message *as the emulated aggregation switch* — the
    /// multicast leg of `CollAlgo::Switch`. Accounted in the
    /// switch-attributed ledger counters
    /// ([`BytesLedger::switch_bytes_sent`]), not the worker-side ones:
    /// a real switch is not a worker, so the rank hosting the emulation
    /// must still satisfy the per-worker `2·n` volume invariant.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_switch(&self, dst: usize, msg: WireMsg) {
        let bytes = msg.wire_bytes() as u64;
        trace::instant(EventKind::Hop, "switch:send", trace::JOB_NONE, bytes);
        trace::metrics::add_counter(Counter::SwitchBytes, bytes);
        self.ledger.record_switch_send(msg.wire_bytes());
        self.to[dst]
            .send(Packet::Plain(msg))
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Tagged variant of [`send_switch`](RankComm::send_switch) for the
    /// streamed scheduler: the switch's multicast of job `job`'s folded
    /// chunk. No priority class is recorded — dataplane traffic is not
    /// a worker send — but the job tag keeps streams separable.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination endpoint was
    /// dropped.
    pub fn send_tagged_switch(&self, dst: usize, job: u64, msg: WireMsg) {
        trace::metrics::add_counter(Counter::SwitchBytes, msg.wire_bytes() as u64);
        self.ledger.record_switch_send(msg.wire_bytes());
        self.to[dst]
            .send(Packet::Tagged { job, msg })
            .unwrap_or_else(|_| panic!("rank {dst} hung up"));
    }

    /// Receives the next tensor sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, the source endpoint was
    /// dropped without sending, or the next message is a sparse chunk
    /// (a collective protocol mismatch).
    pub fn recv(&self, src: usize) -> Tensor {
        match self.recv_msg(src) {
            WireMsg::Tensor(t) => t,
            other => panic!("rank {src} sent {other:?} where a tensor was expected"),
        }
    }

    /// Receives the next sparse chunk sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, the source endpoint was
    /// dropped, or the next message is a dense tensor.
    pub fn recv_sparse(&self, src: usize) -> SparseChunk {
        match self.recv_msg(src) {
            WireMsg::Sparse(c) => c,
            other => panic!("rank {src} sent {other:?} where a sparse chunk was expected"),
        }
    }

    /// Receives the next wire message sent by `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or the source endpoint was
    /// dropped without sending.
    pub fn recv_msg(&self, src: usize) -> WireMsg {
        self.recv_msg_attr(src, false)
    }

    /// Receives the next message from `src` *as the emulated
    /// aggregation switch* — the gather leg of `CollAlgo::Switch`. The
    /// bytes land in [`BytesLedger::switch_bytes_recv`] instead of the
    /// worker-side counters. Attribution happens at pull time: a
    /// message stashed while the dataplane was draining keeps its
    /// switch attribution even if a worker-side call later consumes it.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or the source endpoint was
    /// dropped without sending.
    pub fn recv_switch(&self, src: usize) -> WireMsg {
        self.recv_msg_attr(src, true)
    }

    fn recv_msg_attr(&self, src: usize, switch_side: bool) -> WireMsg {
        if let Some(msg) = self.plain_stash[src].borrow_mut().pop_front() {
            return msg;
        }
        loop {
            match self.pull(src, switch_side) {
                Packet::Plain(msg) => return msg,
                Packet::Tagged { job, msg, .. } => {
                    self.tagged_stash[src].borrow_mut().push_back((job, msg));
                }
            }
        }
    }

    /// Receives the next chunk of asynchronous job `job` from `src`
    /// (blocking). Plain messages and other jobs' chunks encountered on
    /// the way are stashed, preserving their per-source FIFO order — a
    /// later-issued job can therefore complete before an earlier one
    /// without corrupting either stream.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or the source endpoint was
    /// dropped without sending.
    pub fn recv_tagged(&self, src: usize, job: u64) -> WireMsg {
        if let Some(msg) = self.take_stashed_tagged(src, job) {
            return msg;
        }
        loop {
            match self.pull(src, false) {
                Packet::Plain(msg) => self.plain_stash[src].borrow_mut().push_back(msg),
                Packet::Tagged { job: j, msg, .. } => {
                    if j == job {
                        return msg;
                    }
                    self.tagged_stash[src].borrow_mut().push_back((j, msg));
                }
            }
        }
    }

    /// Non-blocking [`recv_tagged`](RankComm::recv_tagged): drains
    /// whatever has already arrived from `src` and returns `job`'s next
    /// chunk if it is among it.
    pub fn try_recv_tagged(&self, src: usize, job: u64) -> Option<WireMsg> {
        self.try_recv_tagged_attr(src, job, false)
    }

    /// Non-blocking tagged receive *as the emulated aggregation
    /// switch* — the gather leg of a streamed `SwitchJob`. Bytes land
    /// in [`BytesLedger::switch_bytes_recv`]; attribution is at pull
    /// time, as for [`recv_switch`](RankComm::recv_switch).
    pub fn try_recv_tagged_switch(&self, src: usize, job: u64) -> Option<WireMsg> {
        self.try_recv_tagged_attr(src, job, true)
    }

    fn try_recv_tagged_attr(&self, src: usize, job: u64, switch_side: bool) -> Option<WireMsg> {
        if let Some(msg) = self.take_stashed_tagged(src, job) {
            return Some(msg);
        }
        while let Ok(packet) = self.from[src].try_recv() {
            self.record_pulled(&packet, switch_side);
            match packet {
                Packet::Plain(msg) => self.plain_stash[src].borrow_mut().push_back(msg),
                Packet::Tagged { job: j, msg, .. } => {
                    if j == job {
                        return Some(msg);
                    }
                    self.tagged_stash[src].borrow_mut().push_back((j, msg));
                }
            }
        }
        None
    }

    /// Pulls the next packet off `src`'s channel, recording its wire
    /// bytes as received — on the worker-side or switch-side counters
    /// per `switch_side`.
    fn pull(&self, src: usize, switch_side: bool) -> Packet {
        let packet = self.from[src]
            .recv()
            .unwrap_or_else(|_| panic!("rank {src} hung up"));
        self.record_pulled(&packet, switch_side);
        packet
    }

    fn record_pulled(&self, packet: &Packet, switch_side: bool) {
        let bytes = match packet {
            Packet::Plain(m) | Packet::Tagged { msg: m, .. } => m.wire_bytes(),
        };
        if switch_side {
            self.ledger.record_switch_recv(bytes);
        } else {
            self.ledger.record_recv(bytes);
        }
    }

    /// Removes and returns `job`'s first stashed chunk from `src`.
    fn take_stashed_tagged(&self, src: usize, job: u64) -> Option<WireMsg> {
        let mut stash = self.tagged_stash[src].borrow_mut();
        let pos = stash.iter().position(|(j, _)| *j == job)?;
        Some(stash.remove(pos).expect("position just found").1)
    }

    /// Zeroes this rank's [`BytesLedger`] and re-baselines the
    /// allocation counters against the *calling thread* — call it on
    /// the rank's own thread at the start of the region to meter.
    pub fn reset_ledger(&self) {
        self.ledger.reset();
    }

    /// This rank's data-movement measurements since the last
    /// [`reset_ledger`](RankComm::reset_ledger) (or construction, for
    /// the wire counters).
    pub fn ledger(&self) -> BytesLedger {
        self.ledger.snapshot()
    }
}

/// Runs `f` on `k` rank threads over a fresh communication world and
/// returns the per-rank results in rank order — the harness the
/// collective test suites (unit and integration) drive the message
/// fabric with.
///
/// # Panics
///
/// Panics if any rank thread panics.
pub fn run_ranks<T: Send + 'static>(
    k: usize,
    f: impl Fn(RankComm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = RankComm::world(k);
    let handles: Vec<_> = world
        .into_iter()
        .map(|comm| {
            let f = f.clone();
            std::thread::spawn(move || {
                // Attribute this thread's trace events to its rank so
                // the exporter renders one process per rank.
                trace::set_thread_rank(comm.rank() as u32);
                f(comm)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::DType;
    use std::thread;

    #[test]
    fn pairwise_messaging() {
        let mut world = RankComm::world(3);
        let c2 = world.pop().unwrap();
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        assert_eq!(c0.rank(), 0);
        assert_eq!(c2.world_size(), 3);

        let t = thread::spawn(move || {
            c1.send(2, Tensor::full([2], DType::F32, 1.0));
            c1.send(0, Tensor::full([2], DType::F32, 5.0));
            let from0 = c1.recv(0);
            assert_eq!(from0.get(0), 9.0);
        });
        c0.send(1, Tensor::full([2], DType::F32, 9.0));
        let from1 = c0.recv(1);
        assert_eq!(from1.get(0), 5.0);
        let from1_at_2 = c2.recv(1);
        assert_eq!(from1_at_2.get(0), 1.0);
        t.join().unwrap();
    }

    #[test]
    fn messages_from_same_source_are_ordered() {
        let mut world = RankComm::world(2);
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        for i in 0..10 {
            c0.send(1, Tensor::full([1], DType::F32, i as f32));
        }
        for i in 0..10 {
            assert_eq!(c1.recv(0).get(0), i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_panics() {
        RankComm::world(0);
    }

    /// Tagged jobs and the plain blocking protocol share one channel
    /// without disturbing each other: a receiver may consume them in
    /// any interleaving, each stream staying FIFO.
    #[test]
    fn tagged_and_plain_streams_are_independent() {
        let mut world = RankComm::world(2);
        let c1 = world.pop().unwrap();
        let c0 = world.pop().unwrap();
        c0.send_tagged(
            1,
            7,
            0,
            WireMsg::Tensor(Tensor::full([1], DType::F32, 70.0)),
        );
        c0.send(1, Tensor::full([1], DType::F32, 1.0));
        c0.send_tagged(
            1,
            9,
            3,
            WireMsg::Tensor(Tensor::full([1], DType::F32, 90.0)),
        );
        c0.send_tagged(
            1,
            7,
            0,
            WireMsg::Tensor(Tensor::full([1], DType::F32, 71.0)),
        );
        c0.send(1, Tensor::full([1], DType::F32, 2.0));

        // Pull the later-issued job first: earlier traffic is stashed.
        match c1.recv_tagged(0, 9) {
            WireMsg::Tensor(t) => assert_eq!(t.get(0), 90.0),
            other => panic!("unexpected {other:?}"),
        }
        // The plain stream still arrives in order.
        assert_eq!(c1.recv(0).get(0), 1.0);
        // Job 7's chunks kept their own order.
        match c1.recv_tagged(0, 7) {
            WireMsg::Tensor(t) => assert_eq!(t.get(0), 70.0),
            other => panic!("unexpected {other:?}"),
        }
        match c1.try_recv_tagged(0, 7) {
            Some(WireMsg::Tensor(t)) => assert_eq!(t.get(0), 71.0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c1.recv(0).get(0), 2.0);
        // Nothing left of either job.
        assert!(c1.try_recv_tagged(0, 7).is_none());
        assert!(c1.try_recv_tagged(0, 9).is_none());

        // The sender's ledger split the traffic by class: job 7 (class
        // 0) sent 8 bytes, job 9 (class 3) sent 4, plain sent 8 more.
        let l = c0.ledger();
        assert_eq!(l.class_bytes_sent[0], 8);
        assert_eq!(l.class_bytes_sent[3], 4);
        assert_eq!(l.bytes_sent, 20);
        // The receiver counted every byte exactly once.
        assert_eq!(c1.ledger().bytes_received, 20);
    }
}
